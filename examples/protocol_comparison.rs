//! Protocol comparison without recompilation.
//!
//! ```text
//! cargo run --example protocol_comparison --release
//! ```
//!
//! The paper's protocol-independence requirement (Section IV.A.1): "To
//! select the optimal combination of protocols, users may install each
//! protocol sequentially, and measure the protocol performance.
//! Therefore, it is desired that the ping and traceroute commands
//! should support multiple protocols without the need for
//! re-compilation." Here three protocols coexist on different ports and
//! the same ping command measures each just by changing `port=`.

use liteview_repro::liteview::{CommandRequest, CommandResult};
use liteview_repro::lv_net::packet::Port;
use liteview_repro::lv_testbed::scenario::{Protocols, Scenario, ScenarioConfig};
use liteview_repro::lv_testbed::Topology;

fn main() {
    let cfg = ScenarioConfig {
        protocols: Protocols {
            geographic: true,
            flooding: true,
            tree: true, // node 0 is the collection root
        },
        // The operator stands at the far end of the corridor, so the
        // workstation bridges through node 4 (management is one-hop).
        bridge: 4,
        ..ScenarioConfig::new(
            Topology::Corridor {
                n: 5,
                spacing: 5.0,
                wall_loss_db: 40.0,
            },
            33,
        )
    };
    let mut s = Scenario::build(cfg);

    // The operator sits at the far end and measures the path back to
    // the root over each protocol (collection trees only route toward
    // the root, so we ping from node 4 toward node 0).
    s.ws.cd(&s.net, "192.168.0.5").unwrap();
    println!("three protocols on node 192.168.0.5:");
    for (port, name) in s.net.node(4).stack.router_list() {
        println!("  port {:>2}: {name}", port.0);
    }
    println!();
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "protocol (port)", "RTT [ms]", "data pkts", "delivered"
    );

    for (port, label) in [
        (Port::GEOGRAPHIC, "geographic forwarding (10)"),
        (Port::FLOODING, "flooding (11)"),
        (Port::TREE, "collection tree (12)"),
    ] {
        s.net.counters.reset();
        let exec =
            s.ws.exec(&mut s.net, CommandRequest::ping(0, 1, 32, Some(port)))
                .unwrap();
        let pkts = s.net.counters.get("tx.data");
        match &exec.result {
            CommandResult::Ping(p) if p.received > 0 => {
                let rtt = p.rounds[0].rtt_us as f64 / 1000.0;
                println!("{label:<28} {rtt:>10.1} {pkts:>12} {:>10}", "yes");
            }
            _ => {
                println!("{label:<28} {:>10} {pkts:>12} {:>10}", "-", "no");
            }
        }
    }

    println!();
    println!("geographic forwarding walks the corridor hop by hop; flooding");
    println!("pays a broadcast storm per probe; the collection tree carries");
    println!("probes to the root but cannot route the reply back down — a");
    println!("protocol property the unmodified ping command just exposed.");
}
