//! Quickstart: two motes, one ping.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Builds the smallest possible deployment (two MicaZ-class nodes five
//! meters apart), installs the LiteView suite, logs into the first node
//! and pings the second — reproducing the paper's Section III.B.3
//! sample session.

use liteview_repro::liteview::{install_suite, CommandRequest, Workstation};
use liteview_repro::lv_kernel::Network;
use liteview_repro::lv_radio::{Medium, Position, PropagationConfig};
use liteview_repro::lv_sim::SimDuration;

fn main() {
    // Two motes, five meters apart.
    let medium = Medium::new(
        vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
        PropagationConfig::default(),
        42,
    );
    let mut net = Network::new(medium, 42);

    // Flash the LiteView-enabled image onto every node.
    install_suite(&mut net);

    // Let neighbor beacons populate the kernel tables.
    net.run_for(SimDuration::from_secs(10));

    // Attach the workstation to node 0 and log in.
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").expect("node exists");
    println!("$pwd");
    println!("{}", ws.pwd(&net).unwrap());

    // ping 192.168.0.2 round=1 length=32
    println!("$ping 192.168.0.2 round=1 length=32");
    let exec = ws
        .exec(&mut net, CommandRequest::ping(1, 1, 32, None))
        .expect("logged in");
    for line in ws.transcript() {
        println!("{line}");
    }
    println!(
        "\n(total response delay: {} — the fixed 500 ms command window)",
        exec.response_delay
    );
}
