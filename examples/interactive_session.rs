//! A scripted interactive shell session, paper-style.
//!
//! ```text
//! cargo run --example interactive_session --release
//! ```
//!
//! Replays the shell interactions Section III.B demonstrates — `pwd`,
//! one-hop `ping`, multi-hop `traceroute … port=10`, the neighborhood
//! management commands (`list`, `blacklist`, `update`), and the radio
//! configuration utilities — printing output in the paper's format.

use liteview_repro::liteview::{Command, CommandRequest};
use liteview_repro::lv_net::packet::Port;
use liteview_repro::lv_sim::SimDuration;
use liteview_repro::lv_testbed::{Scenario, ScenarioConfig, Topology};

fn main() {
    let mut s = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), 42));
    let ws = &mut s.ws;
    let net = &mut s.net;

    ws.cd(net, "192.168.0.1").unwrap();
    println!("$pwd");
    println!("{}", ws.pwd(net).unwrap());

    println!("\n$ping 192.168.0.2 round=1 length=32");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::ping(1, 1, 32, None)).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$traceroute 192.168.0.4 round=1 length=32 port=10");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC))
        .unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$neighborsetup");
    println!("$list quality");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::neighbor_list(true)).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$blacklist add 192.168.0.2");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::blacklist(1, true)).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }
    println!("$blacklist remove 192.168.0.2");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::blacklist(1, false)).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$update beaconperiod=1000ms");
    ws.clear_transcript();
    ws.exec(
        net,
        CommandRequest::update_beacon(SimDuration::from_millis(1000)),
    )
    .unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$getpower");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::get_power()).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }
    println!("$setpower 25");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::set_power(25)).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }
    println!("$getchannel");
    ws.clear_transcript();
    ws.exec(net, CommandRequest::get_channel()).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }

    println!("\n$status");
    ws.clear_transcript();
    ws.exec(net, Command::Status).unwrap();
    for l in ws.transcript() {
        println!("{l}");
    }
}
