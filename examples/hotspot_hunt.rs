//! Hotspot hunting: find where queueing delay accumulates.
//!
//! ```text
//! cargo run --example hotspot_hunt --release
//! ```
//!
//! "It also allows users to identify traffic hotspots by collecting
//! round-trip delays of arbitrary pairs of nodes" (abstract) — and the
//! conclusion reports the authors "can quickly identify traffic
//! hotspots". This example reproduces that workflow: a deployed
//! application funnels periodic reports through a relay node; the
//! operator pings pairs along the path and reads RTTs and queue
//! occupancies to locate the congested relay.

use liteview_repro::liteview::{CommandRequest, CommandResult};
use liteview_repro::lv_kernel::{Process, RxMeta, SysCtx};
use liteview_repro::lv_net::packet::{NetPacket, Port};
use liteview_repro::lv_sim::SimDuration;
use liteview_repro::lv_testbed::{Scenario, ScenarioConfig, Topology};

/// The deployed application: every node streams readings to node 0
/// (think EnviroMic's acoustic reports) over geographic forwarding.
struct ReportGenerator {
    sink: u16,
    period: SimDuration,
}

impl Process for ReportGenerator {
    fn name(&self) -> &str {
        "report-generator"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        // Stagger the start.
        let jitter = SimDuration::from_nanos(ctx.rng.below(self.period.as_nanos()));
        ctx.set_timer(1, jitter);
    }
    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, _token: u32) {
        ctx.send(self.sink, Port::GEOGRAPHIC, Port(70), vec![0xAB; 24], false);
        ctx.set_timer(1, self.period);
    }
}

/// The sink application (drops payloads, which is all we need).
struct Sink;
impl Process for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        ctx.subscribe(Port(70));
    }
    fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, _p: &NetPacket, _m: RxMeta) {}
}

fn main() {
    // A corridor where everything must pass node 1 to reach the sink.
    let topo = Topology::Corridor {
        n: 6,
        spacing: 5.0,
        wall_loss_db: 40.0,
    };
    let mut s = Scenario::build(ScenarioConfig::new(topo, 21));

    // Deploy the application: nodes 2..=5 stream to node 0 every 60 ms —
    // aggressively, so the funnel node's queue visibly builds.
    s.net.spawn_process(0, Box::new(Sink), vec![]).unwrap();
    for i in 2..6u16 {
        s.net
            .spawn_process(
                i,
                Box::new(ReportGenerator {
                    sink: 0,
                    period: SimDuration::from_millis(60),
                }),
                vec![],
            )
            .unwrap();
    }
    s.net.run_for(SimDuration::from_secs(5));
    println!("application running: 4 sources stream reports through the corridor\n");

    // The operator pings each node pair along the path and compares.
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    println!("{:<24} {:>10} {:>14}", "pair", "RTT [ms]", "queue (f/b)");
    let mut worst: Option<(u16, f64)> = None;
    for hop in 1..6u16 {
        let exec =
            s.ws.exec(
                &mut s.net,
                CommandRequest::ping(hop, 1, 32, Some(Port::GEOGRAPHIC)),
            )
            .unwrap();
        if let CommandResult::Ping(p) = &exec.result {
            if let Some(r) = p.rounds.first() {
                let rtt = r.rtt_us as f64 / 1000.0;
                println!(
                    "0 -> {:<18} {:>10.1} {:>10}/{}",
                    format!("192.168.0.{}", hop + 1),
                    rtt,
                    r.queue_fwd,
                    r.queue_bwd
                );
                if worst.is_none_or(|(_, w)| rtt / (hop as f64) > w) {
                    worst = Some((hop, rtt / hop as f64));
                }
            } else {
                println!("0 -> 192.168.0.{:<12} lost", hop + 1);
            }
        }
    }

    // Per-hop view of the busiest path.
    println!("\n$traceroute 192.168.0.6 round=1 length=32 port=10");
    s.ws.clear_transcript();
    s.ws.exec(
        &mut s.net,
        CommandRequest::traceroute(5, 32, Port::GEOGRAPHIC),
    )
    .unwrap();
    for l in s.ws.transcript() {
        println!("{l}");
    }

    if let Some((hop, per_hop)) = worst {
        println!(
            "\n=> highest per-hop RTT toward 192.168.0.{} ({per_hop:.1} ms/hop):",
            hop + 1
        );
        println!("   the early corridor nodes relay every source's reports —");
        println!("   that funnel is the hotspot the RTT profile exposes.");
    }
}
