//! The LiteView shell — an actual interactive REPL over a simulated
//! deployment.
//!
//! ```text
//! cargo run --example shell --release            # interactive
//! echo "ping 192.168.0.2 round=1 length=32" | \
//!   cargo run --example shell --release          # scripted
//! ```
//!
//! Boots the paper's testbed shape (an 8-hop corridor with geographic
//! forwarding on port 10 and the LiteView suite on every node), drops
//! you at `/sn01/192.168.0.1`, and accepts the paper's command syntax.
//! Type `help` for the verb list; `run <s>` advances virtual time so
//! you can watch neighbor tables converge or links recover.
//!
//! Diagnosis verbs (`cd`, `pwd`, `ping`, `traceroute`, …) go through
//! the same [`SessionHost`] protocol the `lv-serve` daemon speaks —
//! this REPL is literally a one-session, no-socket lv-serve. Only the
//! simulator-introspection verbs (`map`, `stats`, `tracedump`) reach
//! into the simulated deployment directly.

use liteview_repro::liteview::session::{
    Request, RequestBody, ResponseBody, SessionHost, PROTOCOL_VERSION,
};
use liteview_repro::liteview::shell::{parse_line, ShellInput, HELP};
use liteview_repro::lv_testbed::{Scenario, ScenarioConfig, Topology};
use std::io::{BufRead, Write};

/// The REPL's single local session.
struct LocalSession {
    host: SessionHost,
    seq: u32,
}

/// Arbitrary; any stable (peer, session) pair works for a lone local
/// session.
const PEER: u64 = 0;
const SESSION: u32 = 1;

impl LocalSession {
    fn call(&mut self, s: &mut Scenario, body: RequestBody) -> ResponseBody {
        self.seq += 1;
        let req = Request {
            session: SESSION,
            seq: self.seq,
            body,
        };
        self.host.apply(&mut s.net, &mut s.ws, PEER, &req).body
    }
}

fn main() {
    println!("booting 9-node corridor testbed (this is simulated time)…");
    let mut s = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), 42));
    let mut session = LocalSession {
        host: SessionHost::new(),
        seq: 0,
    };
    let ResponseBody::Welcome { nodes, .. } = session.call(
        &mut s,
        RequestBody::Hello {
            version: PROTOCOL_VERSION,
        },
    ) else {
        panic!("local session handshake failed");
    };
    let mut prompt = match session.call(
        &mut s,
        RequestBody::Cd {
            node: "192.168.0.1".into(),
        },
    ) {
        ResponseBody::Cwd { path, .. } => path,
        other => panic!("cd into the bridge failed: {other:?}"),
    };
    println!("LiteView shell — {nodes} nodes up, geographic forwarding on port 10.");
    println!("type `help` for commands.\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("{prompt}$ ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!();
            break;
        };
        match parse_line(&line) {
            Err(e) => println!("{e}"),
            Ok(ShellInput::Nothing) => {}
            Ok(ShellInput::Help) => println!("{HELP}"),
            Ok(ShellInput::Quit) => break,
            Ok(ShellInput::Pwd) => match session.call(&mut s, RequestBody::Pwd) {
                ResponseBody::Cwd { path, .. } => println!("{path}"),
                ResponseBody::Error { message } => println!("{message}"),
                other => println!("unexpected response: {other:?}"),
            },
            Ok(ShellInput::Cd(name)) => {
                match session.call(&mut s, RequestBody::Cd { node: name }) {
                    ResponseBody::Cwd { path, .. } => prompt = path,
                    ResponseBody::Error { message } => println!("{message}"),
                    other => println!("unexpected response: {other:?}"),
                }
            }
            Ok(ShellInput::Map) => {
                print!(
                    "{}",
                    liteview_repro::lv_testbed::map::render_map(&s.net, 64, 12)
                );
            }
            Ok(ShellInput::Stats { node }) => {
                let filter = match node.as_deref().map(|n| s.net.resolve(n)) {
                    Some(None) => {
                        println!("no such node: {}", node.unwrap());
                        continue;
                    }
                    Some(Some(id)) => Some(id),
                    None => None,
                };
                for st in s.net.node_stats() {
                    if filter.is_some_and(|id| id != st.id) {
                        continue;
                    }
                    println!(
                        "{} ({}): {}  queue={} neighbors={} procs={} energy={:.2} mJ",
                        st.name,
                        st.id,
                        if st.alive { "up" } else { "DOWN" },
                        st.queue_len,
                        st.neighbor_count,
                        st.process_count,
                        st.energy_mj,
                    );
                    if filter.is_some() {
                        for (k, v) in st.counters.iter() {
                            println!("  {k} = {v}");
                        }
                    }
                }
            }
            Ok(ShellInput::TraceDump { node }) => {
                let filter = match node.as_deref().map(|n| s.net.resolve(n)) {
                    Some(None) => {
                        println!("no such node: {}", node.unwrap());
                        continue;
                    }
                    Some(Some(id)) => Some(id),
                    None => None,
                };
                let mut shown = 0usize;
                for ev in s.net.trace.events() {
                    if filter.is_some_and(|id| id != ev.node) {
                        continue;
                    }
                    println!("{ev}");
                    shown += 1;
                }
                let dropped = s.net.trace.dropped();
                println!("({shown} events retained, {dropped} dropped)");
            }
            Ok(ShellInput::Report) => match session.call(&mut s, RequestBody::Report) {
                ResponseBody::Report { json } => println!("{json}"),
                other => println!("unexpected response: {other:?}"),
            },
            Ok(ShellInput::ReportDiagnosis) => {
                match session.call(&mut s, RequestBody::ReportDiagnosis) {
                    ResponseBody::Report { json } => println!("{json}"),
                    other => println!("unexpected response: {other:?}"),
                }
            }
            Ok(ShellInput::Run { secs }) => {
                let nanos = (secs * 1e9) as u64;
                match session.call(&mut s, RequestBody::Run { nanos }) {
                    ResponseBody::Ran { now_ns } => {
                        println!("(advanced {secs} s; now t = {now_ns} ns)")
                    }
                    other => println!("unexpected response: {other:?}"),
                }
            }
            Ok(ShellInput::Command(cmd)) => {
                match session.call(&mut s, RequestBody::Exec { command: cmd }) {
                    ResponseBody::Done { lines, .. } => {
                        for l in lines {
                            println!("{l}");
                        }
                    }
                    ResponseBody::Error { message } => println!("{message}"),
                    other => println!("unexpected response: {other:?}"),
                }
            }
        }
    }
}
