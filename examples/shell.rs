//! The LiteView shell — an actual interactive REPL over a simulated
//! deployment.
//!
//! ```text
//! cargo run --example shell --release            # interactive
//! echo "ping 192.168.0.2 round=1 length=32" | \
//!   cargo run --example shell --release          # scripted
//! ```
//!
//! Boots the paper's testbed shape (an 8-hop corridor with geographic
//! forwarding on port 10 and the LiteView suite on every node), drops
//! you at `/sn01/192.168.0.1`, and accepts the paper's command syntax.
//! Type `help` for the verb list; `run <s>` advances virtual time so
//! you can watch neighbor tables converge or links recover.

use liteview_repro::liteview::shell::{parse_line, ShellInput, HELP};
use liteview_repro::liteview::{Command, CommandRequest};
use liteview_repro::lv_sim::SimDuration;
use liteview_repro::lv_testbed::{Scenario, ScenarioConfig, Topology};
use std::io::{BufRead, Write};

fn main() {
    println!("booting 9-node corridor testbed (this is simulated time)…");
    let mut s = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), 42));
    s.ws.cd(&s.net, "192.168.0.1").expect("node exists");
    println!(
        "LiteView shell — {} nodes up, geographic forwarding on port 10.",
        s.net.node_count()
    );
    println!("type `help` for commands.\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("{}$ ", s.ws.pwd(&s.net).unwrap_or_else(|_| "/sn01".into()));
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!();
            break;
        };
        match parse_line(&line) {
            Err(e) => println!("{e}"),
            Ok(ShellInput::Nothing) => {}
            Ok(ShellInput::Help) => println!("{HELP}"),
            Ok(ShellInput::Quit) => break,
            Ok(ShellInput::Pwd) => match s.ws.pwd(&s.net) {
                Ok(p) => println!("{p}"),
                Err(e) => println!("{e:?}"),
            },
            Ok(ShellInput::Cd(name)) => match s.ws.cd(&s.net, &name) {
                Ok(_) => {}
                Err(e) => println!("{e:?}"),
            },
            Ok(ShellInput::Map) => {
                print!(
                    "{}",
                    liteview_repro::lv_testbed::map::render_map(&s.net, 64, 12)
                );
            }
            Ok(ShellInput::Stats { node }) => {
                let filter = match node.as_deref().map(|n| s.net.resolve(n)) {
                    Some(None) => {
                        println!("no such node: {}", node.unwrap());
                        continue;
                    }
                    Some(Some(id)) => Some(id),
                    None => None,
                };
                for st in s.net.node_stats() {
                    if filter.is_some_and(|id| id != st.id) {
                        continue;
                    }
                    println!(
                        "{} ({}): {}  queue={} neighbors={} procs={} energy={:.2} mJ",
                        st.name,
                        st.id,
                        if st.alive { "up" } else { "DOWN" },
                        st.queue_len,
                        st.neighbor_count,
                        st.process_count,
                        st.energy_mj,
                    );
                    if filter.is_some() {
                        for (k, v) in st.counters.iter() {
                            println!("  {k} = {v}");
                        }
                    }
                }
            }
            Ok(ShellInput::TraceDump { node }) => {
                let filter = match node.as_deref().map(|n| s.net.resolve(n)) {
                    Some(None) => {
                        println!("no such node: {}", node.unwrap());
                        continue;
                    }
                    Some(Some(id)) => Some(id),
                    None => None,
                };
                let mut shown = 0usize;
                for ev in s.net.trace.events() {
                    if filter.is_some_and(|id| id != ev.node) {
                        continue;
                    }
                    println!("{ev}");
                    shown += 1;
                }
                let dropped = s.net.trace.dropped();
                println!("({shown} events retained, {dropped} dropped)");
            }
            Ok(ShellInput::Report) => {
                println!("{}", s.ws.report(&s.net).to_json());
            }
            Ok(ShellInput::Run { secs }) => {
                s.net.run_for(SimDuration::from_nanos((secs * 1e9) as u64));
                println!("(advanced {secs} s; now t = {})", s.net.now());
            }
            Ok(ShellInput::Command(cmd)) => match cmd.resolve(&s.net) {
                Err(e) => println!("{e}"),
                Ok(command) => {
                    // `survey` is the one verb aimed at the broadcast
                    // group rather than the cd-ed node.
                    let request = match command {
                        Command::GroupStatus => CommandRequest::survey(),
                        c => CommandRequest::new(c),
                    };
                    s.ws.clear_transcript();
                    match s.ws.exec(&mut s.net, request) {
                        Err(e) => println!("{e:?}"),
                        Ok(_) => {
                            for l in s.ws.transcript() {
                                println!("{l}");
                            }
                        }
                    }
                }
            },
        }
    }
}
