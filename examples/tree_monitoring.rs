//! Watching a collection tree build itself — and fixing it.
//!
//! ```text
//! cargo run --example tree_monitoring --release
//! ```
//!
//! The paper's motivation names MintRoute-style collection as the
//! workload whose "routing tree construction" operators need visibility
//! into. Here an EnviroMic-like sensing application streams readings to
//! a root over the collection-tree protocol while the operator uses
//! LiteView to *watch the tree form* (every neighbor-table row carries
//! the neighbor's advertised gradient), then breaks a link and watches
//! the tree re-converge — without instrumenting the application at all.

use liteview_repro::liteview::{CommandRequest, CommandResult};
use liteview_repro::lv_kernel::{Network, Process, RxMeta, SysCtx};
use liteview_repro::lv_net::packet::{NetPacket, Port};
use liteview_repro::lv_sim::SimDuration;
use liteview_repro::lv_testbed::scenario::{Protocols, Scenario, ScenarioConfig};
use liteview_repro::lv_testbed::{failures, Topology};
use std::cell::RefCell;
use std::rc::Rc;

/// The deployed application: periodic readings to the collection root.
struct Sensor;
impl Process for Sensor {
    fn name(&self) -> &str {
        "enviromic-sensor"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        let jitter = SimDuration::from_nanos(ctx.rng.below(1_000_000_000));
        ctx.set_timer(1, jitter);
    }
    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, _t: u32) {
        // Address the root (node 0); the tree routes it downhill.
        ctx.send(0, Port::TREE, Port(71), vec![0xDA; 20], false);
        ctx.set_timer(1, SimDuration::from_secs(1));
    }
}

/// The root's data sink, counting arrivals per origin.
struct RootSink {
    arrivals: Rc<RefCell<Vec<u32>>>,
}
impl Process for RootSink {
    fn name(&self) -> &str {
        "root-sink"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        ctx.subscribe(Port(71));
    }
    fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, packet: &NetPacket, _m: RxMeta) {
        let mut a = self.arrivals.borrow_mut();
        let origin = packet.header.origin as usize;
        if origin < a.len() {
            a[origin] += 1;
        }
    }
}

fn print_tree(net: &Network) {
    // The operator reads each reachable node's neighbor table; the
    // advertised gradients sketch the tree.
    println!("  node          gradient of its best parent candidates");
    for node in 0..net.node_count() as u16 {
        let name = net.names().name(node).unwrap().to_owned();
        let entries: Vec<String> = net
            .node(node)
            .stack
            .neighbors
            .entries()
            .iter()
            .map(|e| format!("{}@{}", e.name, e.tree_hops))
            .collect();
        println!("  {name:<13} {}", entries.join("  "));
    }
}

fn main() {
    let cfg = ScenarioConfig {
        protocols: Protocols {
            geographic: false,
            flooding: false,
            tree: true, // node 0 is the root
        },
        ..ScenarioConfig::new(
            Topology::Corridor {
                n: 5,
                spacing: 5.0,
                wall_loss_db: 40.0,
            },
            27,
        )
    };
    let mut s = Scenario::build(cfg);
    let arrivals = Rc::new(RefCell::new(vec![0u32; 5]));
    s.net
        .spawn_process(
            0,
            Box::new(RootSink {
                arrivals: arrivals.clone(),
            }),
            vec![],
        )
        .unwrap();
    for i in 1..5u16 {
        s.net.spawn_process(i, Box::new(Sensor), vec![]).unwrap();
    }
    s.net.run_for(SimDuration::from_secs(20));

    println!("collection tree after 20 s (gradients from neighbor beacons):");
    print_tree(&s.net);
    println!("\nroot arrivals per origin: {:?}", arrivals.borrow());

    // Interactive check from the operator's seat: the neighbor table of
    // the root's child shows gradient 0 at the root.
    s.ws.cd(&s.net, "192.168.0.2").unwrap();
    s.ws.clear_transcript();
    s.ws.exec(&mut s.net, CommandRequest::neighbor_list(true))
        .unwrap();
    println!("\n$cd /sn01/192.168.0.2 && list quality");
    for l in s.ws.transcript() {
        println!("{l}");
    }

    // Break the first corridor link: the tree below the break is orphaned
    // (a corridor has no alternate path) — and LiteView shows exactly that.
    println!("\n(link 1↔2 breaks — a cabinet moved into the corridor)");
    failures::break_link(&mut s.net, 1, 2);
    let before: Vec<u32> = arrivals.borrow().clone();
    s.net.run_for(SimDuration::from_secs(20));
    let after: Vec<u32> = arrivals.borrow().clone();
    println!(
        "arrivals in the next 20 s: {:?}",
        after
            .iter()
            .zip(&before)
            .map(|(a, b)| a - b)
            .collect::<Vec<_>>()
    );
    println!("\ntree after the break — the orphaned subtree's gradients count");
    println!("up toward the 16-hop ceiling and then advertise unreachable (the");
    println!("bounded version of distance-vector count-to-infinity):");
    print_tree(&s.net);

    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::new(liteview_repro::liteview::Command::Status).on(1),
        )
        .unwrap();
    if let CommandResult::Status { neighbors, .. } = exec.result {
        println!("\nnode 192.168.0.2 now reports {neighbors} neighbor(s): its");
        println!("downstream child vanished from the table — the operator sees");
        println!("the orphaned subtree without touching the sensing application.");
    }
}
