//! Deployment diagnosis: find a dead node and an asymmetric link.
//!
//! ```text
//! cargo run --example deployment_diagnosis --release
//! ```
//!
//! The scenario the paper's introduction motivates: a freshly deployed
//! network misbehaves — traffic toward the far end vanishes. The
//! operator walks the corridor with LiteView, pings, traceroutes and
//! lists neighborhoods from both sides of the break, pins the failure
//! on a dead node plus an *asymmetric* link, fixes the antenna, and
//! verifies the repair — all without touching the deployed application.

use liteview_repro::liteview::{CommandRequest, CommandResult, Workstation};
use liteview_repro::lv_net::packet::Port;
use liteview_repro::lv_sim::SimDuration;
use liteview_repro::lv_testbed::failures;
use liteview_repro::lv_testbed::{Scenario, ScenarioConfig, Topology};

fn main() {
    // A 6-node corridor; the operator starts near node 0.
    let topo = Topology::Corridor {
        n: 6,
        spacing: 5.0,
        wall_loss_db: 40.0,
    };
    let mut s = Scenario::build(ScenarioConfig::new(topo, 7));
    println!("deployment up: 6 nodes, geographic forwarding on port 10\n");

    // --- Sabotage (unknown to the operator) -------------------------
    // Node 4's antenna got bent: it still receives everything, but its
    // own transmissions toward node 3 die — an asymmetric break.
    failures::break_link_oneway(&mut s.net, 4, 3);
    // And node 5's batteries are dead.
    failures::kill_node(&mut s.net, 5);
    // Let estimators and neighbor tables notice.
    s.net.run_for(SimDuration::from_secs(30));

    // --- Diagnosis session ------------------------------------------
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    println!("$pwd\n{}", s.ws.pwd(&s.net).unwrap());

    // Step 1: is the far end alive at all?
    println!("\n$ping 192.168.0.6 round=1 length=32 port=10");
    s.ws.clear_transcript();
    s.ws.exec(
        &mut s.net,
        CommandRequest::ping(5, 1, 32, Some(Port::GEOGRAPHIC)),
    )
    .unwrap();
    for l in s.ws.transcript() {
        println!("{l}");
    }
    println!("=> all packets lost: dead node or broken path. Which?");

    // Step 2: trace the path hop by hop.
    println!("\n$traceroute 192.168.0.5 round=1 length=32 port=10");
    s.ws.clear_transcript();
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(4, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    for l in s.ws.transcript() {
        println!("{l}");
    }
    if let CommandResult::Traceroute(t) = &exec.result {
        if !t.reached {
            println!("=> the path dies after 192.168.0.4: the break is local to");
            println!("   the .4 ↔ .5 link (or .5 itself).");
        }
    }

    // Step 3: the management protocol is one-hop, so the operator walks
    // to the last responsive node and inspects its neighborhood.
    println!("\n(operator walks to node 192.168.0.4 and reattaches)");
    let mut ws2 = Workstation::install(&mut s.net, 3);
    ws2.cd(&s.net, "192.168.0.4").unwrap();
    println!("$list quality");
    ws2.exec(&mut s.net, CommandRequest::neighbor_list(true))
        .unwrap();
    for l in ws2.transcript() {
        println!("{l}");
    }
    println!("=> 192.168.0.5 is MISSING from .4's table although it is");
    println!("   deployed five meters away — .4 hears nothing from it.");

    // Step 4: cross-check from the other side of the suspect link.
    println!("\n(operator walks on to node 192.168.0.5)");
    let mut ws3 = Workstation::install(&mut s.net, 4);
    ws3.cd(&s.net, "192.168.0.5").unwrap();
    println!("$list quality");
    ws3.exec(&mut s.net, CommandRequest::neighbor_list(true))
        .unwrap();
    for l in ws3.transcript() {
        println!("{l}");
    }
    println!("\n$ping 192.168.0.4 round=1 length=32");
    ws3.clear_transcript();
    ws3.exec(&mut s.net, CommandRequest::ping(3, 1, 32, None))
        .unwrap();
    for l in ws3.transcript() {
        println!("{l}");
    }
    println!("=> .5 hears .4's beacons perfectly (inbound ≈ 1.0) yet its own");
    println!("   probes all die: a textbook ASYMMETRIC link, .5 → .4 broken.");
    println!("   (And .6 is absent from every table: that node is simply dead.)");

    // Step 5: fix the antenna and verify interactively.
    println!("\n(operator straightens node .5's antenna)");
    failures::repair_link(&mut s.net, 4, 3);
    s.net.run_for(SimDuration::from_secs(20)); // estimators recover
    println!("$traceroute 192.168.0.5 round=1 length=32 port=10   (from node .1)");
    s.ws.clear_transcript();
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(4, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    for l in s.ws.transcript() {
        println!("{l}");
    }
    if let CommandResult::Traceroute(t) = &exec.result {
        println!(
            "\n=> path to 192.168.0.5 {} — repair verified in seconds,",
            if t.reached {
                "restored"
            } else {
                "still broken"
            }
        );
        println!("   the immediate-feedback loop the toolkit was built for.");
    }
}
