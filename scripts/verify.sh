#!/usr/bin/env bash
# Full verification gate: every test in the workspace, then clippy with
# warnings promoted to errors. Run before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test --all =="
cargo test -q --all

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== lv-lint (determinism & invariant gate, incl. graph rules) =="
cargo run -q -p lv-lint -- --max-seconds 10

echo "== scaling smoke (100 nodes, cached vs brute) =="
cargo run --release -q -p lv-bench --bin figures -- --scale --sizes 100

echo "== determinism digest gate (goldens/figure_digests.json) =="
cargo run --release -q -p lv-bench --bin figures -- --check-digests goldens/figure_digests.json

echo "== diagnosis sweep gate (precision/recall + detect-before-fail) =="
cargo run --release -q -p lv-bench --bin figures -- --diagnosis

echo "verify: OK"
