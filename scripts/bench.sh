#!/usr/bin/env bash
# Benchmark artifacts, one JSON file per committed trajectory point.
#
#   scripts/bench.sh          full nightly run: every artifact below
#   scripts/bench.sh --quick  PR-time run: BENCH_PR9.json only
#
# PR-9 raw-speed trajectory: single-threaded event throughput at 200
# and 1000 nodes, cached and brute arms (the sweep hard-asserts both
# arms produce identical counter digests). This is the per-PR
# machine-readable perf point; the nightly events-rate gate
# (`figures --check-events-rate`) reads the *committed* BENCH_PR3.json
# baseline before this script regenerates anything.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p lv-bench

cargo run --release -q -p lv-bench --bin figures -- --scale --sizes 200,1000 --json > BENCH_PR9.json
cat BENCH_PR9.json
echo "bench: wrote BENCH_PR9.json"

if [[ "${1:-}" == "--quick" ]]; then
    exit 0
fi

# PR-3 scaling benchmark: runs the beacon + traceroute workload at
# 100→1000 nodes with the medium's reachability cache on and off, and
# checks the JSON rows into BENCH_PR3.json at the repo root. The sweep
# asserts that both arms produce identical counter digests — the cache
# must change wall time, never physics.
cargo run --release -q -p lv-bench --bin figures -- --scale --json > BENCH_PR3.json
cargo run --release -q -p lv-bench --bin figures -- --scale

echo "bench: wrote BENCH_PR3.json"

# PR-6 concurrent-session throughput: a real lv-serve instance on
# loopback UDP under 32 scripted sessions; the JSON row reports
# commands/sec plus the server's rate-limit/duplicate/drop counters.
cargo build --release -q -p lv-serve
cargo run --release -q -p lv-serve -- --bench-sessions 32 --cmds 8 > BENCH_SERVE.json
cat BENCH_SERVE.json

echo "bench: wrote BENCH_SERVE.json"

# PR-7 closed-loop diagnosis: replays the seeded fault corpus with the
# engine armed and records per-scenario precision/recall plus
# detection-latency statistics. The run itself gates (precision >= 0.9,
# recall >= 0.8, detect-before-fail on every ramp), so a regression
# fails the script before the artifact is refreshed.
cargo run --release -q -p lv-bench --bin figures -- --diagnosis --json > BENCH_DIAGNOSIS.json
cat BENCH_DIAGNOSIS.json

echo "bench: wrote BENCH_DIAGNOSIS.json"
