#!/usr/bin/env bash
# PR-3 scaling benchmark: runs the beacon + traceroute workload at
# 100→1000 nodes with the medium's reachability cache on and off, and
# checks the JSON rows into BENCH_PR3.json at the repo root. The sweep
# asserts that both arms produce identical counter digests — the cache
# must change wall time, never physics.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p lv-bench
cargo run --release -q -p lv-bench --bin figures -- --scale --json > BENCH_PR3.json
cargo run --release -q -p lv-bench --bin figures -- --scale

echo "bench: wrote BENCH_PR3.json"

# PR-6 concurrent-session throughput: a real lv-serve instance on
# loopback UDP under 32 scripted sessions; the JSON row reports
# commands/sec plus the server's rate-limit/duplicate/drop counters.
cargo build --release -q -p lv-serve
cargo run --release -q -p lv-serve -- --bench-sessions 32 --cmds 8 > BENCH_SERVE.json
cat BENCH_SERVE.json

echo "bench: wrote BENCH_SERVE.json"

# PR-7 closed-loop diagnosis: replays the seeded fault corpus with the
# engine armed and records per-scenario precision/recall plus
# detection-latency statistics. The run itself gates (precision >= 0.9,
# recall >= 0.8, detect-before-fail on every ramp), so a regression
# fails the script before the artifact is refreshed.
cargo run --release -q -p lv-bench --bin figures -- --diagnosis --json > BENCH_DIAGNOSIS.json
cat BENCH_DIAGNOSIS.json

echo "bench: wrote BENCH_DIAGNOSIS.json"
