//! Sim/live parity: the same command script replayed through three
//! stacks must produce field-identical [`Execution`] records.
//!
//! 1. **direct** — `Workstation::exec` against a fresh deployment,
//!    aiming commands exactly the way `SessionHost` does;
//! 2. **sim transport** — the real `Client`/`Server` pair over the
//!    deterministic in-process [`SimTransport`];
//! 3. **live transport** — the same pair over loopback UDP
//!    ([`UdpTransport`]), server on its own thread.
//!
//! Because the hosted deployment is the deterministic simulator and the
//! transport seam carries *parsed commands*, nothing about the backend
//! may leak into diagnosis results: timelines, counter deltas and
//! response delays must match to the nanosecond.

use liteview::shell::ShellCommand;
use liteview::transport::{SimTransport, SIM_PEER};
use liteview::{Command, CommandRequest, Execution};
use lv_serve::{Client, Server, ServerConfig, UdpConfig, UdpTransport};
use lv_testbed::{Scenario, ScenarioConfig, Topology};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 42;
const CWD: &str = "192.168.0.2";

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), SEED))
}

/// Generous limits so the policy layer cannot perturb the replay.
fn server_cfg() -> ServerConfig {
    ServerConfig {
        rate_limit: 10_000.0,
        burst: 10_000.0,
        idle_timeout: Duration::from_secs(300),
        max_sessions: 8,
    }
}

/// One representative script: cheap status verbs, a multi-round ping,
/// a neighbor listing, an eight-hop traceroute and a broadcast survey.
fn script() -> Vec<ShellCommand> {
    vec![
        ShellCommand::Status,
        ShellCommand::GetPower,
        ShellCommand::Ping {
            dst: "192.168.0.5".into(),
            rounds: 2,
            length: 32,
            port: None,
        },
        ShellCommand::List { quality: true },
        ShellCommand::Traceroute {
            dst: "192.168.0.7".into(),
            length: 32,
            port: 10,
        },
        ShellCommand::Survey,
        ShellCommand::GetChannel,
    ]
}

/// Reference replay: the workstation API directly, no transport.
fn run_direct() -> Vec<Execution> {
    let s = scenario();
    let mut net = s.net;
    let mut ws = s.ws;
    let cwd = net.resolve(CWD).expect("cwd resolves");
    script()
        .iter()
        .map(|cmd| {
            let resolved = cmd.resolve(&net).expect("script resolves");
            let request = match resolved {
                Command::GroupStatus => CommandRequest::survey(),
                c => CommandRequest::new(c).on(cwd),
            };
            ws.exec(&mut net, request).expect("direct exec")
        })
        .collect()
}

/// Replay through a real `Client` against a `Server<T>`; the server
/// loop runs on the calling thread (the workstation is not `Send`),
/// the client on its own.
fn run_served<T, C>(server_end: T, client_end: C) -> Vec<Execution>
where
    T: liteview::Transport + 'static,
    C: liteview::Transport + Send + 'static,
{
    let s = scenario();
    let mut server = Server::new(s.net, s.ws, server_end, server_cfg());
    let done = Arc::new(AtomicBool::new(false));
    let client_thread = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::new(client_end, SIM_PEER, 1);
            client.timeout = Duration::from_secs(10);
            client.hello().expect("hello");
            client.cd(CWD).expect("cd");
            let execs: Vec<Execution> = script()
                .into_iter()
                .map(|cmd| client.exec(cmd).expect("served exec").0)
                .collect();
            client.bye().expect("bye");
            done.store(true, Ordering::Relaxed);
            execs
        })
    };
    server.run_until(|| done.load(Ordering::Relaxed));
    client_thread.join().expect("client thread")
}

fn run_sim_transport() -> Vec<Execution> {
    let (server_end, client_end) = SimTransport::pair(64);
    run_served(server_end, client_end)
}

fn run_udp_transport() -> Vec<Execution> {
    // Bind the server socket first so the client knows where to aim;
    // both transports live on loopback with ephemeral ports.
    let server_end = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).expect("bind server");
    let addr = server_end.local_addr().expect("server addr");
    let client_end = UdpTransport::connect(addr, UdpConfig::default()).expect("connect");
    run_served(server_end, client_end)
}

fn assert_replays_match(label: &str, reference: &[Execution], got: &[Execution]) {
    assert_eq!(
        reference.len(),
        got.len(),
        "{label}: execution count diverged"
    );
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        assert_eq!(a.command, b.command, "{label}: step {i} command");
        assert_eq!(a.target, b.target, "{label}: step {i} target");
        assert_eq!(a.issued_at, b.issued_at, "{label}: step {i} issue time");
        assert_eq!(
            a.response_delay, b.response_delay,
            "{label}: step {i} response delay"
        );
        assert_eq!(a.result, b.result, "{label}: step {i} result");
        assert_eq!(a.timeline, b.timeline, "{label}: step {i} timeline");
        assert_eq!(
            a.counter_delta, b.counter_delta,
            "{label}: step {i} counter delta"
        );
        assert_eq!(
            a.node_deltas, b.node_deltas,
            "{label}: step {i} node deltas"
        );
        // Belt and braces: the whole record at once.
        assert_eq!(a, b, "{label}: step {i} full record");
    }
}

#[test]
fn sim_backend_matches_direct_execution() {
    let reference = run_direct();
    let sim = run_sim_transport();
    assert_replays_match("sim transport", &reference, &sim);
}

#[test]
fn udp_backend_matches_direct_execution() {
    let reference = run_direct();
    let udp = run_udp_transport();
    assert_replays_match("udp transport", &reference, &udp);
}

#[test]
fn udp_and_sim_backends_agree_with_each_other() {
    let sim = run_sim_transport();
    let udp = run_udp_transport();
    assert_replays_match("udp vs sim", &sim, &udp);
}

/// The parity property holds per session even when the live server is
/// juggling other traffic: a second session hammering cheap commands
/// concurrently must not perturb the first session's executions...
/// except through virtual time, which any interleaved execution
/// legitimately advances. So here the noise session only issues verbs
/// that do not touch virtual time (`Pwd`), proving the transport and
/// policy layers add no nondeterminism of their own.
#[test]
fn udp_parity_survives_concurrent_pwd_noise() {
    let reference = run_direct();

    let s = scenario();
    let server_end = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).expect("bind server");
    let addr = server_end.local_addr().expect("server addr");
    let mut server = Server::new(s.net, s.ws, server_end, server_cfg());

    // The main session signals the noise session to wind down before
    // either declares itself done, so the server stays up until both
    // have said Bye.
    let stop_noise = Arc::new(AtomicBool::new(false));
    let main_done = Arc::new(AtomicBool::new(false));
    let noise_done = Arc::new(AtomicBool::new(false));

    let main_session = {
        let stop_noise = Arc::clone(&stop_noise);
        let main_done = Arc::clone(&main_done);
        std::thread::spawn(move || {
            let transport = UdpTransport::connect(addr, UdpConfig::default()).expect("connect");
            let mut client = Client::new(transport, 0, 1);
            client.timeout = Duration::from_secs(10);
            client.hello().expect("hello");
            client.cd(CWD).expect("cd");
            let execs: Vec<Execution> = script()
                .into_iter()
                .map(|cmd| client.exec(cmd).expect("exec").0)
                .collect();
            client.bye().expect("bye");
            stop_noise.store(true, Ordering::Relaxed);
            main_done.store(true, Ordering::Relaxed);
            execs
        })
    };
    let noise_session = {
        let stop_noise = Arc::clone(&stop_noise);
        let noise_done = Arc::clone(&noise_done);
        std::thread::spawn(move || {
            let transport = UdpTransport::connect(addr, UdpConfig::default()).expect("connect");
            let mut client = Client::new(transport, 0, 2);
            client.timeout = Duration::from_secs(10);
            client.hello().expect("noise hello");
            client.cd("192.168.0.1").expect("noise cd");
            while !stop_noise.load(Ordering::Relaxed) {
                client.pwd().expect("noise pwd");
                // Stay comfortably inside the session rate limit.
                std::thread::sleep(Duration::from_millis(1));
            }
            client.bye().expect("noise bye");
            noise_done.store(true, Ordering::Relaxed);
        })
    };

    server.run_until(|| main_done.load(Ordering::Relaxed) && noise_done.load(Ordering::Relaxed));
    let execs = main_session.join().expect("main session");
    noise_session.join().expect("noise session");

    assert_replays_match("udp with noise", &reference, &execs);
}
