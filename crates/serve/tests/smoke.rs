//! In-process version of the CI `serve-smoke` job: a real loopback
//! lv-serve instance under ≥16 concurrent scripted sessions, verified
//! to complete cleanly and shut down gracefully.

use lv_serve::{run_fleet, FleetConfig};

#[test]
fn sixteen_concurrent_sessions_complete_cleanly() {
    let cfg = FleetConfig {
        sessions: 16,
        commands_per_session: 3,
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg).expect("fleet boots");
    assert!(
        report.failures.is_empty(),
        "session failures: {:?}",
        report.failures
    );
    assert_eq!(report.commands_ok, 16 * 3, "every scripted command ran");
    // Graceful shutdown: the server drained and reported its counters.
    assert!(report.server_stats.requests >= report.commands_ok);
    assert_eq!(report.server_stats.send_failures, 0);
}

#[test]
fn fleet_report_json_is_one_line() {
    let cfg = FleetConfig {
        sessions: 4,
        commands_per_session: 1,
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg).expect("fleet boots");
    let json = report.to_json();
    assert!(!json.contains('\n'), "bench output must be one line");
    assert!(json.contains("\"commands_per_sec\""), "{json}");
}
