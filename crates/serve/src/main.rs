//! The `lv-serve` binary: daemon, thin client REPL, and the CI fleet
//! modes.
//!
//! ```text
//! lv-serve [--bind 127.0.0.1:7171] [--seed 42] [--rate 64] [--idle-ms 30000]
//!     Host an eight-hop-corridor deployment and serve diagnosis
//!     sessions until stdin closes (or a `quit` line).
//!
//! lv-serve --client 127.0.0.1:7171
//!     Interactive thin client: LiteView shell syntax over UDP.
//!
//! lv-serve --smoke N [--cmds M] [--seed S]
//!     Boot a loopback server, run N concurrent scripted sessions,
//!     verify clean completion + shutdown. Exit 0 on success.
//!
//! lv-serve --bench-sessions N [--cmds M] [--seed S]
//!     Same fleet, reported as a throughput measurement (JSON line).
//! ```

use liteview::shell::{parse_line, ShellInput, HELP};
use lv_serve::{run_fleet, Client, FleetConfig, Server, ServerConfig, UdpConfig, UdpTransport};
use lv_testbed::{Scenario, ScenarioConfig, Topology};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", USAGE);
        0
    } else if args.iter().any(|a| a == "--smoke") {
        smoke_mode(&args)
    } else if args.iter().any(|a| a == "--bench-sessions") {
        bench_mode(&args)
    } else if let Some(addr) = flag_value(&args, "--client") {
        client_mode(&addr)
    } else {
        serve_mode(&args)
    };
    std::process::exit(code);
}

const USAGE: &str = "\
lv-serve — host LiteView diagnosis sessions over UDP

  lv-serve [--bind A] [--seed N] [--rate N] [--idle-ms N]   serve (stdin closes => shutdown)
  lv-serve --client ADDR                                    interactive thin client
  lv-serve --smoke N [--cmds M] [--seed S]                  N concurrent sessions, exit 0 if clean
  lv-serve --bench-sessions N [--cmds M] [--seed S]         throughput fleet, JSON line";

fn fleet_config(args: &[String], sessions: usize) -> FleetConfig {
    FleetConfig {
        sessions,
        commands_per_session: parse_flag(args, "--cmds", 3usize),
        seed: parse_flag(args, "--seed", 42u64),
        ..FleetConfig::default()
    }
}

fn smoke_mode(args: &[String]) -> i32 {
    let sessions = parse_flag(args, "--smoke", 16usize);
    let cfg = fleet_config(args, sessions);
    eprintln!(
        "serve-smoke: {} concurrent sessions x {} commands over loopback UDP…",
        cfg.sessions, cfg.commands_per_session
    );
    match run_fleet(&cfg) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.failures.is_empty()
                && report.commands_ok == (cfg.sessions * cfg.commands_per_session) as u64
            {
                eprintln!("serve-smoke: clean ({} commands)", report.commands_ok);
                0
            } else {
                for f in &report.failures {
                    eprintln!("serve-smoke: FAIL {f}");
                }
                eprintln!(
                    "serve-smoke: {} ok of {} expected",
                    report.commands_ok,
                    cfg.sessions * cfg.commands_per_session
                );
                1
            }
        }
        Err(e) => {
            eprintln!("serve-smoke: {e}");
            1
        }
    }
}

fn bench_mode(args: &[String]) -> i32 {
    let sessions = parse_flag(args, "--bench-sessions", 32usize);
    let cfg = fleet_config(args, sessions);
    match run_fleet(&cfg) {
        Ok(report) => {
            println!("{}", report.to_json());
            i32::from(!report.failures.is_empty())
        }
        Err(e) => {
            eprintln!("bench-sessions: {e}");
            1
        }
    }
}

fn serve_mode(args: &[String]) -> i32 {
    let bind = flag_value(args, "--bind").unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let seed = parse_flag(args, "--seed", 42u64);
    let rate = parse_flag(args, "--rate", 64.0f64);
    let idle_ms = parse_flag(args, "--idle-ms", 30_000u64);

    let transport = match UdpTransport::bind(&bind, UdpConfig::default()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lv-serve: cannot bind {bind}: {e}");
            return 1;
        }
    };
    let addr = match transport.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lv-serve: {e}");
            return 1;
        }
    };

    eprintln!("lv-serve: booting eight-hop corridor (seed {seed})…");
    let scenario = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), seed));
    let cfg = ServerConfig {
        rate_limit: rate,
        burst: rate,
        idle_timeout: Duration::from_millis(idle_ms),
        ..ServerConfig::default()
    };
    let mut server = Server::new(scenario.net, scenario.ws, transport, cfg);
    eprintln!("lv-serve: listening on {addr} — press Enter / close stdin to stop");

    // Stdin watcher flips the stop flag; the serving loop lives here
    // because the workstation state is not Send.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" || l.trim().is_empty() => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
    let stats = server.run_until(|| stop.load(Ordering::Relaxed));
    eprintln!(
        "lv-serve: shut down cleanly ({} requests, {} executions, {} rate-limited, {} idle-evicted)",
        stats.requests, stats.executions, stats.rate_limited, stats.idle_evicted
    );
    0
}

fn client_mode(addr: &str) -> i32 {
    let transport = match UdpTransport::connect(addr, UdpConfig::default()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lv-serve --client: cannot reach {addr}: {e}");
            return 1;
        }
    };
    let session = std::process::id(); // distinct per client process
    let mut client = Client::new(transport, 0, session);
    let welcome = match client.hello() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("lv-serve --client: handshake failed: {e}");
            return 1;
        }
    };
    println!(
        "connected to {addr} — {} nodes, bridge {}, t = {} ns",
        welcome.nodes, welcome.bridge, welcome.now_ns
    );
    println!("type `help` for commands; `quit` to leave.\n");

    let mut prompt = String::from("/sn01");
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("{prompt}$ ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!();
            break;
        };
        match parse_line(&line) {
            Err(e) => println!("{e}"),
            Ok(ShellInput::Nothing) => {}
            Ok(ShellInput::Help) => println!("{HELP}"),
            Ok(ShellInput::Quit) => break,
            Ok(ShellInput::Cd(name)) => match client.cd(&name) {
                Ok((_, path)) => prompt = path,
                Err(e) => println!("{e}"),
            },
            Ok(ShellInput::Pwd) => match client.pwd() {
                Ok((_, path)) => println!("{path}"),
                Err(e) => println!("{e}"),
            },
            Ok(ShellInput::Run { secs }) => match client.run_nanos((secs * 1e9) as u64) {
                Ok(now) => println!("(advanced {secs} s; now t = {now} ns)"),
                Err(e) => println!("{e}"),
            },
            Ok(ShellInput::Report) => match client.report() {
                Ok(json) => println!("{json}"),
                Err(e) => println!("{e}"),
            },
            Ok(ShellInput::ReportDiagnosis) => match client.report_diagnosis() {
                Ok(json) => println!("{json}"),
                Err(e) => println!("{e}"),
            },
            Ok(ShellInput::Map)
            | Ok(ShellInput::Stats { .. })
            | Ok(ShellInput::TraceDump { .. }) => {
                println!("(that verb reads simulator state directly and is REPL-only; not available over the wire)");
            }
            Ok(ShellInput::Command(cmd)) => match client.exec(cmd) {
                Ok((_, lines)) => {
                    for l in lines {
                        println!("{l}");
                    }
                }
                Err(e) => println!("{e}"),
            },
        }
    }
    let _ = client.bye();
    0
}
