#![warn(missing_docs)]

//! # lv-serve — diagnosis sessions over a real socket backend
//!
//! The LiteView workstation as a long-running service: this crate
//! hosts a deployment (today the deterministic simulator; the seam is
//! transport-agnostic) behind a real `UdpSocket` and multiplexes many
//! concurrent end-user diagnosis sessions over the session wire
//! protocol defined in [`liteview::session`].
//!
//! Three pieces:
//!
//! * [`UdpTransport`] — the live backend of the
//!   [`liteview::transport::Transport`] seam: a threaded receive loop,
//!   bounded queues with backpressure accounting, chunked frames, and
//!   per-peer send pacing.
//! * [`Server`] — owns the hosted network + workstation and applies
//!   the shared [`liteview::SessionHost`] dispatcher, adding the
//!   live-operations policy: per-session rate limits, idle timeouts,
//!   duplicate suppression and graceful shutdown.
//! * [`Client`] — the thin typed client; one instance is one session.
//!
//! This crate is the one place in the workspace allowed to read the
//! wall clock and talk to the OS network stack; lv-lint enforces that
//! the sim-path crates stay deterministic (see `DESIGN.md` §13).
//!
//! ## Quickstart
//!
//! ```no_run
//! use lv_serve::{Client, UdpConfig, UdpTransport};
//! use liteview::shell::ShellCommand;
//!
//! let t = UdpTransport::connect("127.0.0.1:7171", UdpConfig::default()).unwrap();
//! let mut c = Client::new(t, 0, 1);
//! c.hello().unwrap();
//! c.cd("192.168.0.1").unwrap();
//! let (_execution, lines) = c
//!     .exec(ShellCommand::Ping {
//!         dst: "192.168.0.2".into(),
//!         rounds: 1,
//!         length: 32,
//!         port: None,
//!     })
//!     .unwrap();
//! for l in lines {
//!     println!("{l}");
//! }
//! ```

pub mod client;
pub mod server;
pub mod smoke;
pub mod udp;

pub use client::{Client, ClientError, Welcome};
pub use server::{Server, ServerConfig, ServerStats};
pub use smoke::{run_fleet, FleetConfig, FleetReport};
pub use udp::{UdpConfig, UdpTransport};
