//! Concurrent-session fleet harness.
//!
//! Boots a real `lv-serve` instance on an ephemeral loopback port,
//! launches N concurrent scripted client sessions against it over UDP,
//! and verifies every session completes and the server shuts down
//! cleanly. The CI `serve-smoke` job runs this via `lv-serve --smoke`;
//! `scripts/bench.sh` reuses it with larger numbers to measure
//! concurrent-session throughput.

use crate::client::Client;
use crate::server::{Server, ServerConfig, ServerStats};
use crate::udp::{UdpConfig, UdpTransport};
use liteview::shell::ShellCommand;
use lv_testbed::{Scenario, ScenarioConfig, Topology};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Fleet shape.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Diagnosis commands each session executes.
    pub commands_per_session: usize,
    /// Deployment seed.
    pub seed: u64,
    /// Server policy (rate limits, idle timeout, session cap).
    pub server: ServerConfig,
    /// Per-attempt client response timeout.
    pub client_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sessions: 16,
            commands_per_session: 3,
            seed: 42,
            server: ServerConfig {
                max_sessions: 256,
                rate_limit: 256.0,
                burst: 256.0,
                ..ServerConfig::default()
            },
            client_timeout: Duration::from_secs(10),
        }
    }
}

/// What the fleet run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Sessions launched.
    pub sessions: usize,
    /// Commands that completed with a full execution record.
    pub commands_ok: u64,
    /// Per-session failure messages (empty on a clean run).
    pub failures: Vec<String>,
    /// Wall-clock duration of the whole fleet.
    pub wall: Duration,
    /// Server-side counters at shutdown.
    pub server_stats: ServerStats,
    /// Datagrams dropped at the server's bounded receive queue.
    pub rx_dropped: u64,
}

impl FleetReport {
    /// Commands per wall-clock second across the whole fleet.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.commands_ok as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line JSON summary for benches and CI logs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\": {}, \"commands_ok\": {}, \"failures\": {}, \"wall_ms\": {}, \
             \"commands_per_sec\": {:.1}, \"executions\": {}, \"rate_limited\": {}, \
             \"duplicates\": {}, \"rx_dropped\": {}}}",
            self.sessions,
            self.commands_ok,
            self.failures.len(),
            self.wall.as_millis(),
            self.throughput(),
            self.server_stats.executions,
            self.server_stats.rate_limited,
            self.server_stats.duplicates,
            self.rx_dropped,
        )
    }
}

/// The command script one session replays (cycled to the requested
/// length). Cheap fixed-window commands so the fleet exercises
/// concurrency, not traceroute windows.
fn script_command(i: usize) -> ShellCommand {
    match i % 3 {
        0 => ShellCommand::Status,
        1 => ShellCommand::GetPower,
        _ => ShellCommand::GetChannel,
    }
}

/// Run a fleet of concurrent scripted sessions against a freshly
/// booted loopback server. Errors describe what went wrong; a clean
/// run returns a report with no failures.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, String> {
    let stop = Arc::new(AtomicBool::new(false));
    let (addr_tx, addr_rx) = mpsc::channel();
    let server_cfg = cfg.server.clone();
    let seed = cfg.seed;
    let server_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<(ServerStats, u64), String> {
            // The deployment (and its !Send workstation) live entirely
            // on this thread.
            let scenario =
                Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), seed));
            let transport = UdpTransport::bind("127.0.0.1:0", UdpConfig::default())
                .map_err(|e| format!("bind: {e}"))?;
            let addr = transport.local_addr().map_err(|e| format!("addr: {e}"))?;
            let mut server = Server::new(scenario.net, scenario.ws, transport, server_cfg);
            addr_tx.send(addr).map_err(|e| format!("addr send: {e}"))?;
            let stats = server.run_until(|| stop.load(Ordering::Relaxed));
            let dropped = server.transport().rx_dropped();
            Ok((stats, dropped))
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(30))
        .map_err(|e| format!("server did not come up: {e}"))?;

    let start = Instant::now();
    let commands = cfg.commands_per_session;
    let timeout = cfg.client_timeout;
    let node_count = Topology::eight_hop_corridor().node_count();
    let mut client_threads = Vec::new();
    for s in 0..cfg.sessions {
        client_threads.push(std::thread::spawn(move || -> Result<u64, String> {
            let transport = UdpTransport::connect(addr, UdpConfig::default())
                .map_err(|e| format!("session {s}: connect: {e}"))?;
            let mut client = Client::new(transport, 0, s as u32 + 1);
            client.timeout = timeout;
            let err =
                |stage: &str, e: crate::client::ClientError| format!("session {s}: {stage}: {e}");
            client.hello().map_err(|e| err("hello", e))?;
            // Sessions spread over the corridor's nodes.
            let node = format!("192.168.0.{}", 1 + (s % node_count));
            client.cd(&node).map_err(|e| err("cd", e))?;
            let mut ok = 0u64;
            for i in 0..commands {
                let (execution, lines) =
                    client.exec(script_command(i)).map_err(|e| err("exec", e))?;
                if lines.is_empty() {
                    return Err(format!("session {s}: empty transcript"));
                }
                let _ = execution.response_delay;
                ok += 1;
            }
            client.bye().map_err(|e| err("bye", e))?;
            Ok(ok)
        }));
    }

    let mut commands_ok = 0u64;
    let mut failures = Vec::new();
    for t in client_threads {
        match t.join() {
            Ok(Ok(n)) => commands_ok += n,
            Ok(Err(msg)) => failures.push(msg),
            Err(_) => failures.push("client thread panicked".to_owned()),
        }
    }
    let wall = start.elapsed();

    stop.store(true, Ordering::Relaxed);
    let (server_stats, rx_dropped) = server_thread
        .join()
        .map_err(|_| "server thread panicked".to_owned())??;

    Ok(FleetReport {
        sessions: cfg.sessions,
        commands_ok,
        failures,
        wall,
        server_stats,
        rx_dropped,
    })
}
