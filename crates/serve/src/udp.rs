//! The live transport backend: a real `UdpSocket` behind the
//! [`Transport`] seam.
//!
//! A background receive thread pulls datagrams off the socket and feeds
//! a **bounded** channel; when the consumer falls behind, datagrams are
//! dropped at the channel mouth and counted (backpressure — exactly
//! what a congested serial bridge would do). Sends are paced per peer
//! with a configurable minimum inter-datagram gap so a chatty
//! workstation cannot saturate the bridge link.
//!
//! Frames larger than one datagram are split into chunks with a small
//! 9-byte header and reassembled on the receive side, so the session
//! layer above sees whole frames regardless of size:
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0x4C, 'L')
//! 1       4     frame id (per-sender, wrapping, big-endian)
//! 5       2     chunk index (big-endian)
//! 7       2     chunk count (big-endian)
//! 9       n     chunk payload
//! ```
//!
//! UDP semantics are inherited deliberately: chunks can be lost, so a
//! partially reassembled frame is abandoned once its slot is recycled,
//! and the request/response layer above retries whole requests.

use liteview::transport::{PeerId, Transport, TransportError};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Chunk header length.
const CHUNK_HEADER: usize = 9;

/// Chunk header magic byte.
const MAGIC: u8 = 0x4C;

/// Most partially reassembled frames retained at once.
const MAX_PARTIALS: usize = 64;

/// Tuning knobs for [`UdpTransport`].
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Bounded receive-queue depth, in datagrams; the rx thread drops
    /// (and counts) datagrams when the queue is full.
    pub recv_queue: usize,
    /// Chunk payload bytes per datagram (header excluded).
    pub chunk_bytes: usize,
    /// Minimum gap between consecutive datagrams to the same peer
    /// (`None` = unpaced).
    pub pace: Option<Duration>,
    /// Socket read timeout of the rx thread — bounds shutdown latency.
    pub read_timeout: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            recv_queue: 256,
            chunk_bytes: 32 * 1024,
            pace: None,
            read_timeout: Duration::from_millis(25),
        }
    }
}

struct PartialFrame {
    chunks: Vec<Option<Vec<u8>>>,
    have: usize,
}

/// A threaded UDP backend for the [`Transport`] seam.
///
/// One instance is one endpoint: a server binds a well-known address
/// and hears from many peers (each interned to a [`PeerId`] on first
/// contact); a client connects to one peer (always peer 0).
pub struct UdpTransport {
    socket: UdpSocket,
    cfg: UdpConfig,
    rx: Receiver<(SocketAddr, Vec<u8>)>,
    stop: Arc<AtomicBool>,
    rx_thread: Option<JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
    peers: Vec<SocketAddr>,
    peer_ids: HashMap<SocketAddr, PeerId>,
    last_send: Vec<Option<Instant>>,
    next_frame_id: u32,
    partials: HashMap<(PeerId, u32), PartialFrame>,
    partial_order: VecDeque<(PeerId, u32)>,
    closed: bool,
}

impl UdpTransport {
    /// Bind a serving endpoint on `addr` (e.g. `"127.0.0.1:7171"`, or
    /// port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: UdpConfig) -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind(addr)?;
        Self::from_socket(socket, cfg)
    }

    /// Bind an ephemeral client endpoint and intern `remote` as peer 0.
    pub fn connect<A: ToSocketAddrs>(remote: A, cfg: UdpConfig) -> io::Result<UdpTransport> {
        let remote = remote
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let bind_on = if remote.is_ipv4() {
            "0.0.0.0:0"
        } else {
            "[::]:0"
        };
        let socket = UdpSocket::bind(bind_on)?;
        let mut t = Self::from_socket(socket, cfg)?;
        t.intern(remote);
        Ok(t)
    }

    fn from_socket(socket: UdpSocket, cfg: UdpConfig) -> io::Result<UdpTransport> {
        let rx_socket = socket.try_clone()?;
        rx_socket.set_read_timeout(Some(cfg.read_timeout))?;
        let (tx, rx) = std::sync::mpsc::sync_channel(cfg.recv_queue.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let dropped = Arc::new(AtomicU64::new(0));
        let datagram_cap = CHUNK_HEADER + cfg.chunk_bytes;
        let rx_thread = {
            let stop = Arc::clone(&stop);
            let dropped = Arc::clone(&dropped);
            std::thread::spawn(move || rx_loop(rx_socket, tx, stop, dropped, datagram_cap))
        };
        Ok(UdpTransport {
            socket,
            cfg,
            rx,
            stop,
            rx_thread: Some(rx_thread),
            dropped,
            peers: Vec::new(),
            peer_ids: HashMap::new(),
            last_send: Vec::new(),
            next_frame_id: 0,
            partials: HashMap::new(),
            partial_order: VecDeque::new(),
            closed: false,
        })
    }

    /// The endpoint's bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Datagrams dropped at the bounded receive queue since creation —
    /// the backpressure signal.
    pub fn rx_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The socket address behind a [`PeerId`], if known.
    pub fn peer_addr(&self, peer: PeerId) -> Option<SocketAddr> {
        self.peers.get(peer as usize).copied()
    }

    /// Intern `addr`, minting a fresh [`PeerId`] on first sight.
    pub fn intern(&mut self, addr: SocketAddr) -> PeerId {
        if let Some(&id) = self.peer_ids.get(&addr) {
            return id;
        }
        let id = self.peers.len() as PeerId;
        self.peers.push(addr);
        self.last_send.push(None);
        self.peer_ids.insert(addr, id);
        id
    }

    fn pace_for(&mut self, peer: PeerId) {
        let Some(gap) = self.cfg.pace else { return };
        if let Some(Some(last)) = self.last_send.get(peer as usize) {
            let elapsed = last.elapsed();
            if elapsed < gap {
                std::thread::sleep(gap - elapsed);
            }
        }
        if let Some(slot) = self.last_send.get_mut(peer as usize) {
            *slot = Some(Instant::now());
        }
    }

    fn deliver_chunk(&mut self, peer: PeerId, datagram: &[u8]) -> Option<Vec<u8>> {
        if datagram.len() < CHUNK_HEADER || datagram[0] != MAGIC {
            return None;
        }
        let frame_id = u32::from_be_bytes([datagram[1], datagram[2], datagram[3], datagram[4]]);
        let idx = u16::from_be_bytes([datagram[5], datagram[6]]) as usize;
        let total = u16::from_be_bytes([datagram[7], datagram[8]]) as usize;
        let chunk = &datagram[CHUNK_HEADER..];
        if total == 0 || idx >= total {
            return None;
        }
        if total == 1 {
            return Some(chunk.to_vec());
        }
        let key = (peer, frame_id);
        if !self.partials.contains_key(&key) {
            self.partial_order.push_back(key);
            self.partials.insert(
                key,
                PartialFrame {
                    chunks: (0..total).map(|_| None).collect(),
                    have: 0,
                },
            );
        }
        let partial = self.partials.get_mut(&key)?;
        if partial.chunks.len() != total {
            // Header disagreement — drop the whole frame.
            self.forget_partial(&key);
            return None;
        }
        if partial.chunks[idx].is_none() {
            partial.chunks[idx] = Some(chunk.to_vec());
            partial.have += 1;
        }
        if partial.have == total {
            let done = self.forget_partial(&key)?;
            let mut frame = Vec::new();
            for c in done.chunks {
                frame.extend_from_slice(&c?);
            }
            return Some(frame);
        }
        // Bound the reassembly table: recycle the oldest slots. Because
        // completed/aborted frames are pruned from `partial_order` too,
        // every queued key here is a live partial and popping the front
        // recycles the genuinely oldest one.
        while self.partials.len() > MAX_PARTIALS {
            if let Some(old) = self.partial_order.pop_front() {
                self.partials.remove(&old);
            } else {
                break;
            }
        }
        None
    }

    /// Remove a partial frame from both the table and the age queue so
    /// `partial_order` stays in lockstep with `partials` (it would
    /// otherwise grow without bound on a long-lived transport).
    fn forget_partial(&mut self, key: &(PeerId, u32)) -> Option<PartialFrame> {
        let dropped = self.partials.remove(key);
        if dropped.is_some() {
            if let Some(pos) = self.partial_order.iter().position(|k| k == key) {
                self.partial_order.remove(pos);
            }
        }
        dropped
    }
}

fn rx_loop(
    socket: UdpSocket,
    tx: SyncSender<(SocketAddr, Vec<u8>)>,
    stop: Arc<AtomicBool>,
    dropped: Arc<AtomicU64>,
    datagram_cap: usize,
) {
    let mut buf = vec![0u8; datagram_cap.max(2048)];
    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => match tx.try_send((from, buf[..n].to_vec())) {
                Ok(()) => {}
                // Full queue: drop the datagram and record the
                // backpressure.
                Err(TrySendError::Full(_)) => {
                    dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, peer: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let Some(addr) = self.peer_addr(peer) else {
            return Err(TransportError::Io(format!("unknown peer {peer}")));
        };
        let max = self.max_frame();
        if frame.len() > max {
            return Err(TransportError::TooBig {
                len: frame.len(),
                max,
            });
        }
        let chunk_bytes = self.cfg.chunk_bytes.max(1);
        let total = frame.len().div_ceil(chunk_bytes).max(1);
        let frame_id = self.next_frame_id;
        self.next_frame_id = self.next_frame_id.wrapping_add(1);
        for (idx, chunk) in frame.chunks(chunk_bytes).enumerate().take(total) {
            self.pace_for(peer);
            let mut datagram = Vec::with_capacity(CHUNK_HEADER + chunk.len());
            datagram.push(MAGIC);
            datagram.extend_from_slice(&frame_id.to_be_bytes());
            datagram.extend_from_slice(&(idx as u16).to_be_bytes());
            datagram.extend_from_slice(&(total as u16).to_be_bytes());
            datagram.extend_from_slice(chunk);
            self.socket
                .send_to(&datagram, addr)
                .map_err(|e| TransportError::Io(e.to_string()))?;
        }
        if frame.is_empty() {
            // Zero-length frames still travel as one header-only datagram.
            self.pace_for(peer);
            let mut datagram = Vec::with_capacity(CHUNK_HEADER);
            datagram.push(MAGIC);
            datagram.extend_from_slice(&frame_id.to_be_bytes());
            datagram.extend_from_slice(&0u16.to_be_bytes());
            datagram.extend_from_slice(&1u16.to_be_bytes());
            self.socket
                .send_to(&datagram, addr)
                .map_err(|e| TransportError::Io(e.to_string()))?;
        }
        Ok(())
    }

    fn recv(
        &mut self,
        wait: Option<Duration>,
    ) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let deadline = wait.map(|d| Instant::now() + d);
        loop {
            let next = match deadline {
                None => match self.rx.try_recv() {
                    Ok(x) => Some(x),
                    Err(TryRecvError::Empty) => None,
                    // The rx thread is gone: surface it instead of
                    // letting pollers spin on a dead transport forever.
                    Err(TryRecvError::Disconnected) => return Err(TransportError::Closed),
                },
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(left) {
                        Ok(x) => Some(x),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
                    }
                }
            };
            let Some((from, datagram)) = next else {
                return Ok(None);
            };
            let peer = self.intern(from);
            if let Some(frame) = self.deliver_chunk(peer, &datagram) {
                return Ok(Some((peer, frame)));
            }
            // Incomplete or malformed — keep draining until the queue
            // is empty (poll) or the wait budget runs out (block).
        }
    }

    fn shutdown(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.rx_thread.take() {
            let _ = h.join();
        }
    }

    fn max_frame(&self) -> usize {
        self.cfg.chunk_bytes.max(1) * usize::from(u16::MAX)
    }
}

impl Drop for UdpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpTransport, UdpTransport) {
        let server = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let client = UdpTransport::connect(addr, UdpConfig::default()).unwrap();
        (server, client)
    }

    #[test]
    fn loopback_roundtrip() {
        let (mut server, mut client) = pair();
        client.send(0, b"hello server").unwrap();
        let (peer, frame) = server
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("frame arrives");
        assert_eq!(frame, b"hello server");
        server.send(peer, b"hello client").unwrap();
        let (_, back) = client
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("reply arrives");
        assert_eq!(back, b"hello client");
    }

    #[test]
    fn large_frames_chunk_and_reassemble() {
        let cfg = UdpConfig {
            chunk_bytes: 128,
            ..UdpConfig::default()
        };
        let mut server = UdpTransport::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = UdpTransport::connect(addr, cfg).unwrap();

        let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        client.send(0, &big).unwrap();
        let (_, frame) = server
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("reassembled");
        assert_eq!(frame, big);
    }

    #[test]
    fn oversized_frame_is_refused() {
        let cfg = UdpConfig {
            chunk_bytes: 16,
            ..UdpConfig::default()
        };
        let mut t = UdpTransport::bind("127.0.0.1:0", cfg).unwrap();
        let addr = t.local_addr().unwrap();
        let peer = t.intern(addr);
        let too_big = vec![0u8; 16 * usize::from(u16::MAX) + 1];
        assert!(matches!(
            t.send(peer, &too_big),
            Err(TransportError::TooBig { .. })
        ));
    }

    #[test]
    fn shutdown_then_send_fails() {
        let (mut server, mut client) = pair();
        client.shutdown();
        assert_eq!(client.send(0, b"x"), Err(TransportError::Closed));
        server.shutdown();
    }

    /// Craft a raw chunk datagram as `send` would emit it.
    fn datagram(frame_id: u32, idx: u16, total: u16, payload: &[u8]) -> Vec<u8> {
        let mut d = Vec::with_capacity(CHUNK_HEADER + payload.len());
        d.push(MAGIC);
        d.extend_from_slice(&frame_id.to_be_bytes());
        d.extend_from_slice(&idx.to_be_bytes());
        d.extend_from_slice(&total.to_be_bytes());
        d.extend_from_slice(payload);
        d
    }

    #[test]
    fn completed_frames_drain_the_reassembly_queue() {
        // Soak: many completed multi-chunk frames must not leave keys
        // behind in `partial_order` (it used to grow one entry per
        // completed frame, unbounded).
        let mut t = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        let peer: PeerId = 0;
        for id in 0..1000u32 {
            assert!(t
                .deliver_chunk(peer, &datagram(id, 0, 2, b"first|"))
                .is_none());
            let frame = t
                .deliver_chunk(peer, &datagram(id, 1, 2, b"second"))
                .expect("frame completes");
            assert_eq!(frame, b"first|second");
            assert!(t.partials.is_empty(), "no live partials after completion");
            assert!(
                t.partial_order.is_empty(),
                "partial_order leaked {} keys by frame {id}",
                t.partial_order.len()
            );
        }
    }

    #[test]
    fn header_disagreement_drains_both_tables() {
        let mut t = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        let peer: PeerId = 0;
        assert!(t.deliver_chunk(peer, &datagram(9, 0, 3, b"a")).is_none());
        assert_eq!(t.partial_order.len(), 1);
        // Same frame id, contradictory chunk count: abort the frame.
        assert!(t.deliver_chunk(peer, &datagram(9, 1, 5, b"b")).is_none());
        assert!(t.partials.is_empty());
        assert!(
            t.partial_order.is_empty(),
            "aborted frame left its key queued"
        );
    }

    #[test]
    fn lossy_partials_recycle_and_wrapped_frame_ids_do_not_splice() {
        let mut t = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        let peer: PeerId = 0;
        // A frame loses its second chunk and lingers as a partial.
        assert!(t
            .deliver_chunk(peer, &datagram(7, 0, 2, b"STALE!"))
            .is_none());
        // Enough later incomplete frames cycle the MAX_PARTIALS slots…
        for id in 0..MAX_PARTIALS as u32 {
            assert!(t
                .deliver_chunk(peer, &datagram(1000 + id, 0, 2, b"x"))
                .is_none());
            assert!(t.partials.len() <= MAX_PARTIALS);
            assert_eq!(
                t.partials.len(),
                t.partial_order.len(),
                "tables in lockstep"
            );
        }
        // …which must have recycled the stale frame, oldest first.
        assert!(
            !t.partials.contains_key(&(peer, 7)),
            "stale partial survived {MAX_PARTIALS} newer slots"
        );
        // A later frame reusing the wrapped id 7 reassembles cleanly
        // from its own chunks only.
        assert!(t
            .deliver_chunk(peer, &datagram(7, 0, 2, b"fresh-"))
            .is_none());
        let frame = t
            .deliver_chunk(peer, &datagram(7, 1, 2, b"frame"))
            .expect("reused id completes");
        assert_eq!(
            frame, b"fresh-frame",
            "stale chunks spliced into reused frame id"
        );
    }

    #[test]
    fn poll_recv_reports_closed_when_rx_thread_dies() {
        let mut t = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        // Kill the rx thread without marking the transport closed — as
        // if the thread panicked or its socket died.
        t.stop.store(true, Ordering::Relaxed);
        if let Some(h) = t.rx_thread.take() {
            h.join().unwrap();
        }
        // Poll mode must surface Closed, not report an idle transport.
        assert_eq!(t.recv(None), Err(TransportError::Closed));
        // And the blocking path agrees.
        assert_eq!(
            t.recv(Some(Duration::from_millis(5))),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn pacing_spaces_datagrams() {
        let cfg = UdpConfig {
            pace: Some(Duration::from_millis(5)),
            chunk_bytes: 8,
            ..UdpConfig::default()
        };
        let mut server = UdpTransport::bind("127.0.0.1:0", UdpConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = UdpTransport::connect(addr, cfg).unwrap();

        // 4 chunks with a 5 ms gap → at least ~15 ms of pacing.
        let start = Instant::now();
        client.send(0, &[7u8; 32]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
        let (_, frame) = server
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("paced frame arrives");
        assert_eq!(frame, [7u8; 32]);
    }
}
