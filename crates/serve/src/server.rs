//! The lv-serve session multiplexer.
//!
//! One [`Server`] owns a hosted deployment (network + workstation) and
//! a [`Transport`], and drives the shared [`SessionHost`] dispatcher
//! for every session that talks to it. On top of the deterministic
//! protocol core it layers the live-operations policy:
//!
//! * **per-session rate limits** — a token bucket per session; over-
//!   limit requests get an `Error` response without touching the
//!   deployment;
//! * **idle timeout** — sessions that go quiet are evicted;
//! * **duplicate suppression** — the last response per session is
//!   cached by sequence number, so a client retransmitting a lost
//!   request gets the original answer instead of a re-execution. Only
//!   successful/terminal responses are cached; transient refusals
//!   (rate limiting) are not, so a backed-off retry of the same seq
//!   executes normally;
//! * **graceful shutdown** — pending requests are drained, every open
//!   session is sent a `Bye`, and the transport is torn down.
//!
//! The server is generic over its transport: `Server<UdpTransport>` is
//! the daemon, `Server<SimTransport>` is the deterministic in-process
//! backend the parity harness replays against.

use liteview::session::{Request, RequestBody, Response, ResponseBody, SessionHost};
use liteview::transport::{PeerId, Transport, TransportError};
use liteview::Workstation;
use lv_kernel::Network;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Live-operations policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sustained requests per second one session may issue.
    pub rate_limit: f64,
    /// Token-bucket depth (burst allowance).
    pub burst: f64,
    /// Sessions quiet for longer than this are evicted.
    pub idle_timeout: Duration,
    /// Hard cap on concurrently open sessions.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rate_limit: 64.0,
            burst: 64.0,
            idle_timeout: Duration::from_secs(30),
            max_sessions: 64,
        }
    }
}

/// Operational counters, reported at shutdown and by the smoke harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Frames received that decoded as protocol requests.
    pub requests: u64,
    /// Commands executed against the deployment.
    pub executions: u64,
    /// Requests refused by the per-session rate limiter.
    pub rate_limited: u64,
    /// Cached responses replayed for retransmitted requests.
    pub duplicates: u64,
    /// Sessions evicted by the idle timeout.
    pub idle_evicted: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Responses that could not be sent (transport errors or
    /// backpressure).
    pub send_failures: u64,
    /// Sessions refused because the server was full.
    pub refused_full: u64,
}

struct SessionMeta {
    last_seen: Instant,
    tokens: f64,
    refilled: Instant,
    last_reply: Option<(u32, Vec<u8>)>,
}

/// A diagnosis-session server over any [`Transport`] backend.
pub struct Server<T: Transport> {
    transport: T,
    host: SessionHost,
    net: Network,
    ws: Workstation,
    cfg: ServerConfig,
    meta: BTreeMap<(PeerId, u32), SessionMeta>,
    stats: ServerStats,
}

impl<T: Transport> Server<T> {
    /// Host `net`/`ws` behind `transport`.
    pub fn new(net: Network, ws: Workstation, transport: T, cfg: ServerConfig) -> Server<T> {
        Server {
            transport,
            host: SessionHost::new(),
            net,
            ws,
            cfg,
            meta: BTreeMap::new(),
            stats: ServerStats::default(),
        }
    }

    /// Operational counters so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Sessions currently open.
    pub fn session_count(&self) -> usize {
        self.host.session_count()
    }

    /// The transport (e.g. to read its bound address or drop counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Process at most one incoming frame, waiting up to `wait` for it.
    /// Returns whether a frame was processed.
    pub fn poll(&mut self, wait: Option<Duration>) -> Result<bool, TransportError> {
        let Some((peer, frame)) = self.transport.recv(wait)? else {
            return Ok(false);
        };
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(_) => {
                self.stats.malformed += 1;
                return Ok(true);
            }
        };
        self.stats.requests += 1;
        let key = (peer, req.session);
        let now = Instant::now();

        // Retransmit? Replay the cached response without re-executing.
        if let Some(m) = self.meta.get_mut(&key) {
            m.last_seen = now;
            if let Some((seq, bytes)) = &m.last_reply {
                if *seq == req.seq {
                    self.stats.duplicates += 1;
                    let bytes = bytes.clone();
                    self.send_raw(peer, &bytes);
                    return Ok(true);
                }
            }
        }

        // Admission control for new sessions.
        if let RequestBody::Hello { .. } = req.body {
            if !self.meta.contains_key(&key) && self.meta.len() >= self.cfg.max_sessions {
                self.stats.refused_full += 1;
                let resp = Response {
                    session: req.session,
                    seq: req.seq,
                    body: ResponseBody::Error {
                        message: format!(
                            "server full ({} sessions); try again later",
                            self.cfg.max_sessions
                        ),
                    },
                };
                self.send_response(key, &resp, false);
                return Ok(true);
            }
            self.meta.entry(key).or_insert(SessionMeta {
                last_seen: now,
                tokens: self.cfg.burst,
                refilled: now,
                last_reply: None,
            });
        }

        // Token-bucket rate limiting (sessions only; stray requests
        // fall through to the host, which rejects them).
        if let Some(m) = self.meta.get_mut(&key) {
            let elapsed = now.duration_since(m.refilled).as_secs_f64();
            m.tokens = (m.tokens + elapsed * self.cfg.rate_limit).min(self.cfg.burst);
            m.refilled = now;
            if m.tokens < 1.0 {
                self.stats.rate_limited += 1;
                let resp = Response {
                    session: req.session,
                    seq: req.seq,
                    body: ResponseBody::Error {
                        message: "rate limited; slow down".to_owned(),
                    },
                };
                // Transient refusal: do NOT cache it as last_reply, or a
                // client that backs off and retries the same seq would
                // replay the stale error forever instead of executing.
                self.send_response(key, &resp, false);
                return Ok(true);
            }
            m.tokens -= 1.0;
        }

        let resp = self.host.apply(&mut self.net, &mut self.ws, peer, &req);
        if matches!(resp.body, ResponseBody::Done { .. }) {
            self.stats.executions += 1;
        }
        let closing = matches!(req.body, RequestBody::Bye);
        self.send_response(key, &resp, !closing);
        if closing {
            self.meta.remove(&key);
        }
        Ok(true)
    }

    /// Evict sessions idle for longer than the configured timeout.
    /// Returns how many were evicted.
    pub fn sweep_idle(&mut self) -> usize {
        let now = Instant::now();
        let timeout = self.cfg.idle_timeout;
        let dead: Vec<(PeerId, u32)> = self
            .meta
            .iter()
            .filter(|(_, m)| now.duration_since(m.last_seen) > timeout)
            .map(|(k, _)| *k)
            .collect();
        for key in &dead {
            self.meta.remove(key);
            self.host.evict(key.0, key.1);
            self.stats.idle_evicted += 1;
        }
        dead.len()
    }

    /// Serve until `stop()` returns true, then shut down gracefully.
    pub fn run_until(&mut self, mut stop: impl FnMut() -> bool) -> ServerStats {
        while !stop() {
            match self.poll(Some(Duration::from_millis(20))) {
                Ok(_) => {}
                Err(TransportError::Closed) => break,
                Err(_) => {}
            }
            self.sweep_idle();
        }
        self.finish()
    }

    /// Graceful shutdown: drain pending requests, notify every open
    /// session, tear the transport down, and report final stats.
    pub fn finish(&mut self) -> ServerStats {
        // Drain whatever is already queued (bounded, in case a client
        // keeps talking).
        for _ in 0..1024 {
            match self.poll(None) {
                Ok(true) => {}
                _ => break,
            }
        }
        for (peer, session) in self.host.session_keys() {
            let bye = Response {
                session,
                seq: 0,
                body: ResponseBody::Bye,
            };
            self.send_raw(peer, &bye.encode());
            self.host.evict(peer, session);
        }
        self.meta.clear();
        self.transport.shutdown();
        self.stats
    }

    fn send_response(&mut self, key: (PeerId, u32), resp: &Response, cache: bool) {
        let bytes = resp.encode();
        if cache {
            if let Some(m) = self.meta.get_mut(&key) {
                m.last_reply = Some((resp.seq, bytes.clone()));
            }
        }
        self.send_raw(key.0, &bytes);
    }

    fn send_raw(&mut self, peer: PeerId, bytes: &[u8]) {
        if self.transport.send(peer, bytes).is_err() {
            self.stats.send_failures += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteview::session::PROTOCOL_VERSION;
    use liteview::shell::ShellCommand;
    use liteview::transport::{SimTransport, SIM_PEER};
    use lv_testbed::{Scenario, ScenarioConfig, Topology};

    fn sim_server(cfg: ServerConfig) -> (Server<SimTransport>, SimTransport) {
        let scenario = Scenario::build(ScenarioConfig::new(
            Topology::Line { n: 2, spacing: 5.0 },
            11,
        ));
        let (server_end, client_end) = SimTransport::pair(64);
        (
            Server::new(scenario.net, scenario.ws, server_end, cfg),
            client_end,
        )
    }

    fn call(
        client: &mut SimTransport,
        server: &mut Server<SimTransport>,
        req: &Request,
    ) -> Response {
        client.send(SIM_PEER, &req.encode()).unwrap();
        while server.poll(None).unwrap() {}
        let (_, bytes) = client.recv(None).unwrap().expect("response queued");
        Response::decode(&bytes).unwrap()
    }

    fn hello(session: u32) -> Request {
        Request {
            session,
            seq: 1,
            body: RequestBody::Hello {
                version: PROTOCOL_VERSION,
            },
        }
    }

    #[test]
    fn serves_a_session_over_sim_transport() {
        let (mut server, mut client) = sim_server(ServerConfig::default());
        let r = call(&mut client, &mut server, &hello(1));
        assert!(matches!(r.body, ResponseBody::Welcome { .. }));

        let r = call(
            &mut client,
            &mut server,
            &Request {
                session: 1,
                seq: 2,
                body: RequestBody::Cd {
                    node: "192.168.0.1".into(),
                },
            },
        );
        assert!(matches!(r.body, ResponseBody::Cwd { node: 0, .. }));

        let r = call(
            &mut client,
            &mut server,
            &Request {
                session: 1,
                seq: 3,
                body: RequestBody::Exec {
                    command: ShellCommand::Status,
                },
            },
        );
        assert!(matches!(r.body, ResponseBody::Done { .. }), "{r:?}");
        assert_eq!(server.stats().executions, 1);
    }

    #[test]
    fn duplicate_requests_replay_cached_response() {
        let (mut server, mut client) = sim_server(ServerConfig::default());
        call(&mut client, &mut server, &hello(1));
        let exec = Request {
            session: 1,
            seq: 2,
            body: RequestBody::Exec {
                command: ShellCommand::GetPower,
            },
        };
        // cd first.
        call(
            &mut client,
            &mut server,
            &Request {
                session: 1,
                seq: 5,
                body: RequestBody::Cd {
                    node: "192.168.0.1".into(),
                },
            },
        );
        let first = call(&mut client, &mut server, &exec);
        let replay = call(&mut client, &mut server, &exec);
        assert_eq!(first, replay);
        assert_eq!(server.stats().executions, 1, "no re-execution");
        assert_eq!(server.stats().duplicates, 1);
    }

    #[test]
    fn rate_limiter_refuses_a_burst() {
        let (mut server, mut client) = sim_server(ServerConfig {
            rate_limit: 1.0,
            burst: 2.0,
            ..ServerConfig::default()
        });
        call(&mut client, &mut server, &hello(1));
        let mut limited = 0;
        for seq in 2..8 {
            let r = call(
                &mut client,
                &mut server,
                &Request {
                    session: 1,
                    seq,
                    body: RequestBody::Pwd,
                },
            );
            if matches!(&r.body, ResponseBody::Error { message } if message.contains("rate")) {
                limited += 1;
            }
        }
        assert!(limited >= 4, "only {limited} of 6 were limited");
        assert_eq!(server.stats().rate_limited, limited);
    }

    #[test]
    fn rate_limit_error_is_not_cached_for_same_seq_retry() {
        let (mut server, mut client) = sim_server(ServerConfig {
            rate_limit: 20.0,
            burst: 1.0,
            ..ServerConfig::default()
        });
        // Hello consumes the only token in the bucket.
        call(&mut client, &mut server, &hello(1));
        let cd = Request {
            session: 1,
            seq: 2,
            body: RequestBody::Cd {
                node: "192.168.0.1".into(),
            },
        };
        let r = call(&mut client, &mut server, &cd);
        assert!(
            matches!(&r.body, ResponseBody::Error { message } if message.contains("rate")),
            "bucket should be exhausted: {r:?}"
        );
        // The well-behaved client backs off past a refill interval and
        // retries the SAME seq — it must execute, not replay the error.
        std::thread::sleep(Duration::from_millis(150));
        let r = call(&mut client, &mut server, &cd);
        assert!(matches!(r.body, ResponseBody::Cwd { .. }), "{r:?}");
        assert_eq!(
            server.stats().duplicates,
            0,
            "stale rate-limit error was replayed from the dup cache"
        );
    }

    #[test]
    fn max_sessions_is_enforced() {
        let (mut server, mut client) = sim_server(ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        });
        assert!(matches!(
            call(&mut client, &mut server, &hello(1)).body,
            ResponseBody::Welcome { .. }
        ));
        assert!(matches!(
            call(&mut client, &mut server, &hello(2)).body,
            ResponseBody::Welcome { .. }
        ));
        let r = call(&mut client, &mut server, &hello(3));
        assert!(
            matches!(&r.body, ResponseBody::Error { message } if message.contains("full")),
            "{r:?}"
        );
        assert_eq!(server.stats().refused_full, 1);
    }

    #[test]
    fn idle_sessions_are_swept() {
        let (mut server, mut client) = sim_server(ServerConfig {
            idle_timeout: Duration::from_millis(1),
            ..ServerConfig::default()
        });
        call(&mut client, &mut server, &hello(1));
        assert_eq!(server.session_count(), 1);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(server.sweep_idle(), 1);
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.stats().idle_evicted, 1);
    }

    #[test]
    fn sweep_idle_evicts_sessions_holding_cached_replies() {
        let (mut server, mut client) = sim_server(ServerConfig {
            idle_timeout: Duration::from_millis(1),
            ..ServerConfig::default()
        });
        // Hello's Welcome is cached as the session's last_reply.
        call(&mut client, &mut server, &hello(1));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(server.sweep_idle(), 1);
        assert_eq!(server.session_count(), 0);
        // A same-seq retransmit after eviction must be served fresh —
        // the cached reply died with the session, not as a ghost dup.
        let again = call(&mut client, &mut server, &hello(1));
        assert!(matches!(again.body, ResponseBody::Welcome { .. }));
        assert_eq!(server.stats().duplicates, 0);
    }

    #[test]
    fn finish_notifies_open_sessions() {
        let (mut server, mut client) = sim_server(ServerConfig::default());
        call(&mut client, &mut server, &hello(1));
        server.finish();
        let (_, bytes) = client.recv(None).unwrap().expect("bye notice");
        let bye = Response::decode(&bytes).unwrap();
        assert!(matches!(bye.body, ResponseBody::Bye));
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let (mut server, mut client) = sim_server(ServerConfig::default());
        client.send(SIM_PEER, b"not a frame").unwrap();
        assert!(server.poll(None).unwrap());
        assert_eq!(server.stats().malformed, 1);
        // The server still serves afterwards.
        let r = call(&mut client, &mut server, &hello(1));
        assert!(matches!(r.body, ResponseBody::Welcome { .. }));
    }
}
