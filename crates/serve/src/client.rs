//! The thin diagnosis client: a typed request/response wrapper over
//! any [`Transport`] backend.
//!
//! One [`Client`] is one session. Requests carry increasing sequence
//! numbers; a lost datagram is handled by retransmitting the whole
//! request after a timeout, and the server's duplicate suppression
//! guarantees the command is not executed twice.

use liteview::session::{
    ProtoError, Request, RequestBody, Response, ResponseBody, PROTOCOL_VERSION,
};
use liteview::shell::ShellCommand;
use liteview::transport::{PeerId, Transport, TransportError};
use liteview::Execution;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed outright.
    Transport(TransportError),
    /// A response arrived but did not parse.
    Proto(ProtoError),
    /// No matching response within the timeout budget (all retries
    /// spent).
    TimedOut,
    /// The server answered with an error message.
    Server(String),
    /// The server answered with a well-formed but unexpected body.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What [`Client::hello`] learns about the hosted deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// Nodes in the deployment.
    pub nodes: u64,
    /// The workstation's bridge mote.
    pub bridge: u16,
    /// Virtual time at session open, nanoseconds.
    pub now_ns: u64,
}

/// One diagnosis session over a [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
    peer: PeerId,
    session: u32,
    next_seq: u32,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Retransmissions after the first attempt.
    pub retries: u32,
}

impl<T: Transport> Client<T> {
    /// A session over `transport`, talking to `peer`, with a
    /// client-chosen session id.
    pub fn new(transport: T, peer: PeerId, session: u32) -> Client<T> {
        Client {
            transport,
            peer,
            session,
            next_seq: 0,
            timeout: Duration::from_secs(2),
            retries: 3,
        }
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Issue one request and wait for its matching response.
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        self.next_seq += 1;
        let req = Request {
            session: self.session,
            seq: self.next_seq,
            body,
        };
        let bytes = req.encode();
        for _attempt in 0..=self.retries {
            if let Err(e) = self.transport.send(self.peer, &bytes) {
                match e {
                    // A full queue can clear; pause and retry.
                    TransportError::Backpressure => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    other => return Err(ClientError::Transport(other)),
                }
            }
            let deadline = Instant::now() + self.timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break; // retransmit
                }
                let got = self
                    .transport
                    .recv(Some(left))
                    .map_err(ClientError::Transport)?;
                let Some((_, frame)) = got else { continue };
                let resp = match Response::decode(&frame) {
                    Ok(r) => r,
                    Err(_) => continue, // stray garbage — keep waiting
                };
                if resp.session != self.session || resp.seq != self.next_seq {
                    continue; // stale or foreign response
                }
                return match resp.body {
                    ResponseBody::Error { message } => Err(ClientError::Server(message)),
                    body => Ok(body),
                };
            }
        }
        Err(ClientError::TimedOut)
    }

    /// Open the session.
    pub fn hello(&mut self) -> Result<Welcome, ClientError> {
        match self.call(RequestBody::Hello {
            version: PROTOCOL_VERSION,
        })? {
            ResponseBody::Welcome {
                nodes,
                bridge,
                now_ns,
                ..
            } => Ok(Welcome {
                nodes,
                bridge,
                now_ns,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Log into a node by name; returns `(node id, shell path)`.
    pub fn cd(&mut self, node: &str) -> Result<(u16, String), ClientError> {
        match self.call(RequestBody::Cd {
            node: node.to_owned(),
        })? {
            ResponseBody::Cwd { node, path } => Ok((node, path)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The session's current node; errors when not logged in.
    pub fn pwd(&mut self) -> Result<(u16, String), ClientError> {
        match self.call(RequestBody::Pwd)? {
            ResponseBody::Cwd { node, path } => Ok((node, path)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Execute one diagnosis command on the session's current node.
    /// Returns the full execution record and the paper-style output
    /// lines.
    pub fn exec(&mut self, command: ShellCommand) -> Result<(Execution, Vec<String>), ClientError> {
        match self.call(RequestBody::Exec { command })? {
            ResponseBody::Done { execution, lines } => Ok((execution, lines)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Advance the hosted deployment's virtual time; returns the new
    /// time in nanoseconds.
    pub fn run_nanos(&mut self, nanos: u64) -> Result<u64, ClientError> {
        match self.call(RequestBody::Run { nanos })? {
            ResponseBody::Ran { now_ns } => Ok(now_ns),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Export the network-wide observability report (JSON).
    pub fn report(&mut self) -> Result<String, ClientError> {
        match self.call(RequestBody::Report)? {
            ResponseBody::Report { json } => Ok(json),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Export the automated diagnosis engine's episode log (JSON).
    /// An empty log when the hosted deployment has no engine armed.
    pub fn report_diagnosis(&mut self) -> Result<String, ClientError> {
        match self.call(RequestBody::ReportDiagnosis)? {
            ResponseBody::Report { json } => Ok(json),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Close the session.
    pub fn bye(&mut self) -> Result<(), ClientError> {
        match self.call(RequestBody::Bye)? {
            ResponseBody::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
