//! Parallel multi-trial experiment engine.
//!
//! [`TrialRunner`] fans N deterministic trials of an experiment across
//! a pool of worker threads and returns the per-trial results **in
//! trial order**. Three properties make this safe and reproducible:
//!
//! 1. **Seed splitting** — trial `i` of a run rooted at `root_seed`
//!    always receives `trial_seed(root_seed, i)`, derived through the
//!    same SplitMix64 expansion [`lv_sim::rng::derive_seed`] the
//!    simulator uses for per-subsystem streams. Seeds depend only on
//!    `(root_seed, i)`, never on scheduling.
//! 2. **Thread confinement** — the trial closure builds its own
//!    [`crate::Scenario`]/network inside the worker, so the
//!    `Rc<RefCell<…>>` interiors of the simulated nodes never cross a
//!    thread boundary. Only the (Send) result crosses back.
//! 3. **Ordered collection** — workers pull trial indices from a
//!    shared atomic counter but results are slotted back by index, so
//!    downstream aggregation folds them in trial order and float math
//!    is bit-identical regardless of the worker count.
//!
//! The failure-injection sweep mode ([`FailurePlan`]) composes the
//! [`crate::failures`] helpers with the runner: a configurable
//! fraction of trials has a fault injected after warm-up, which turns
//! "does diagnosis still work when the deployment is broken?" into an
//! aggregate number with a confidence interval.

use crate::failures;
use lv_kernel::Network;
use lv_sim::rng::derive_seed;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Stream label namespace for trial seeds (disjoint from the
/// simulator's per-subsystem labels, which are small integers).
const TRIAL_STREAM: u64 = 0x5452_4941_4C00_0000; // "TRIAL" << 24

/// The seed trial `index` of a run rooted at `root_seed` receives.
pub fn trial_seed(root_seed: u64, index: usize) -> u64 {
    derive_seed(root_seed, TRIAL_STREAM ^ index as u64)
}

/// Per-trial context handed to the experiment closure.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Trial number, `0..trials`.
    pub index: usize,
    /// This trial's derived seed (pure function of root seed + index).
    pub seed: u64,
    /// Total trials in the run.
    pub trials: usize,
}

/// A parallel multi-trial experiment runner.
///
/// ```no_run
/// use lv_testbed::runner::TrialRunner;
///
/// let rtts: Vec<f64> = TrialRunner::new(42, 16).run(|trial| {
///     // build a Scenario from trial.seed, measure something …
///     trial.seed as f64
/// });
/// assert_eq!(rtts.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    root_seed: u64,
    trials: usize,
    workers: usize,
}

impl TrialRunner {
    /// A runner for `trials` trials rooted at `root_seed`, with one
    /// worker per available CPU (capped at the trial count).
    pub fn new(root_seed: u64, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        TrialRunner {
            root_seed,
            trials,
            workers: cpus.min(trials).max(1),
        }
    }

    /// Override the worker-thread count (clamped to `1..=trials`).
    /// Results are identical for every choice; only wall-clock changes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, self.trials);
        self
    }

    /// Root seed of the run.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The seeds the trials will receive, in trial order.
    pub fn trial_seeds(&self) -> Vec<u64> {
        (0..self.trials)
            .map(|i| trial_seed(self.root_seed, i))
            .collect()
    }

    /// Run `trial_fn` once per trial and return results in trial order.
    ///
    /// `trial_fn` must treat `TrialCtx` as its only source of
    /// randomness for the determinism guarantee to hold. Panics in a
    /// trial propagate after all workers stop.
    pub fn run<T, F>(&self, trial_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        let trials = self.trials;
        if self.workers == 1 {
            // Serial fast path: no threads, same ordering semantics.
            return (0..trials)
                .map(|index| {
                    trial_fn(TrialCtx {
                        index,
                        seed: trial_seed(self.root_seed, index),
                        trials,
                    })
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let trial_fn = &trial_fn;
        let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut produced: Vec<(usize, T)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= trials {
                                break;
                            }
                            let ctx = TrialCtx {
                                index,
                                seed: trial_seed(self.root_seed, index),
                                trials,
                            };
                            produced.push((index, trial_fn(ctx)));
                        }
                        produced
                    })
                })
                .collect();
            for h in handles {
                for (index, value) in h.join().expect("trial worker panicked") {
                    slots[index] = Some(value);
                }
            }
        })
        .expect("trial scope");
        slots
            .into_iter()
            .map(|s| s.expect("every trial produced a result"))
            .collect()
    }
}

/// What to break in a failure-injection trial.
///
/// Node and link coordinates refer to the scenario's topology node
/// ids. Composes the [`crate::failures`] helpers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureMode {
    /// Power off one node ([`failures::kill_node`]).
    KillNode {
        /// The node to power off.
        id: u16,
    },
    /// Hard-break both directions of a link ([`failures::break_link`]).
    BreakLink {
        /// One endpoint.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// Attenuate one direction of a link
    /// ([`failures::attenuate_link`]).
    AttenuateLink {
        /// Transmitting side.
        from: u16,
        /// Receiving side.
        to: u16,
        /// Extra path loss, dB.
        loss_db: f64,
    },
}

impl FailureMode {
    /// Apply the fault to a running network.
    pub fn apply(&self, net: &mut Network) {
        match *self {
            FailureMode::KillNode { id } => failures::kill_node(net, id),
            FailureMode::BreakLink { a, b } => failures::break_link(net, a, b),
            FailureMode::AttenuateLink { from, to, loss_db } => {
                failures::attenuate_link(net, from, to, loss_db)
            }
        }
    }

    /// Short human/JSON label for result rows.
    pub fn label(&self) -> String {
        match *self {
            FailureMode::KillNode { id } => format!("kill-node-{id}"),
            FailureMode::BreakLink { a, b } => format!("break-link-{a}-{b}"),
            FailureMode::AttenuateLink { from, to, loss_db } => {
                format!("attenuate-{from}-{to}-{loss_db}dB")
            }
        }
    }
}

/// A failure mode applied to a deterministic fraction of trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// What breaks.
    pub mode: FailureMode,
    /// Fraction of trials (0.0–1.0) that get the fault.
    pub fraction: f64,
}

impl FailurePlan {
    /// Fault `fraction` of trials with `mode`.
    pub fn new(mode: FailureMode, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        FailurePlan { mode, fraction }
    }

    /// How many of `trials` trials are faulted (rounded half-up so a
    /// 0.5 fraction of 8 trials faults exactly 4).
    pub fn affected_count(&self, trials: usize) -> usize {
        ((self.fraction * trials as f64) + 0.5).floor() as usize
    }

    /// Whether trial `index` (of `trials`) receives the fault.
    ///
    /// Deterministic by construction: the first `affected_count`
    /// trials are faulted. Which *seeds* those indices map to is
    /// already randomized by the seed split, so this does not bias the
    /// sample.
    pub fn applies_to(&self, index: usize, trials: usize) -> bool {
        index < self.affected_count(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let r = TrialRunner::new(42, 8);
        let seeds = r.trial_seeds();
        assert_eq!(seeds, TrialRunner::new(42, 8).trial_seeds());
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "trial seeds collided: {seeds:?}");
        // Seeds don't depend on the worker count.
        assert_eq!(seeds, TrialRunner::new(42, 8).workers(3).trial_seeds());
    }

    #[test]
    fn results_come_back_in_trial_order() {
        for workers in [1, 2, 4] {
            let out = TrialRunner::new(1, 16).workers(workers).run(|t| {
                // Stagger completion so later trials often finish first.
                std::thread::sleep(std::time::Duration::from_millis((16 - t.index as u64) % 5));
                (t.index, t.seed)
            });
            for (i, &(index, seed)) in out.iter().enumerate() {
                assert_eq!(index, i);
                assert_eq!(seed, trial_seed(1, i));
            }
        }
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let out = TrialRunner::new(9, 33).workers(5).run(|t| {
            RUNS.fetch_add(1, Ordering::Relaxed);
            t.index
        });
        assert_eq!(RUNS.load(Ordering::Relaxed), 33);
        assert_eq!(out.len(), 33);
    }

    #[test]
    fn worker_count_is_clamped() {
        let r = TrialRunner::new(0, 4).workers(64);
        assert_eq!(r.run(|t| t.index).len(), 4);
        let r = TrialRunner::new(0, 4).workers(0);
        assert_eq!(r.run(|t| t.index).len(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_trials_rejected() {
        let _ = TrialRunner::new(0, 0);
    }

    #[test]
    fn failure_plan_fraction_arithmetic() {
        let plan = FailurePlan::new(FailureMode::KillNode { id: 4 }, 0.5);
        assert_eq!(plan.affected_count(8), 4);
        assert!(plan.applies_to(0, 8));
        assert!(plan.applies_to(3, 8));
        assert!(!plan.applies_to(4, 8));
        let none = FailurePlan::new(FailureMode::KillNode { id: 4 }, 0.0);
        assert_eq!(none.affected_count(8), 0);
        let all = FailurePlan::new(FailureMode::KillNode { id: 4 }, 1.0);
        assert_eq!(all.affected_count(8), 8);
    }

    #[test]
    fn failure_mode_labels() {
        assert_eq!(FailureMode::KillNode { id: 4 }.label(), "kill-node-4");
        assert_eq!(
            FailureMode::BreakLink { a: 4, b: 5 }.label(),
            "break-link-4-5"
        );
        assert_eq!(
            FailureMode::AttenuateLink {
                from: 4,
                to: 5,
                loss_db: 20.0
            }
            .label(),
            "attenuate-4-5-20dB"
        );
    }

    #[test]
    fn failure_plan_serializes() {
        let plan = FailurePlan::new(
            FailureMode::AttenuateLink {
                from: 1,
                to: 2,
                loss_db: 25.0,
            },
            0.25,
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FailurePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
