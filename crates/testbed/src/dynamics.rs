//! Time-varying world dynamics: a seeded, schedulable timeline of
//! mid-run mutations.
//!
//! Every scenario used to be frozen at t=0, yet the paper's whole point
//! is diagnosing communication paths whose quality shifts underneath
//! the user. A [`DynamicsPlan`] is the missing half: a declarative,
//! deterministic schedule of link-attenuation ramps (RADIUS-style
//! gradual degradation), bursty interference windows (noise-floor steps
//! on a channel), node churn (death and cold reboot), and channel /
//! power / placement reconfiguration. The plan compiles down to
//! [`DynamicsAction`] primitives that [`lv_kernel::Network`] dispatches
//! through its event queue, so mutations interleave deterministically
//! with traffic and replay bit-identically for a given seed.
//!
//! An **empty plan schedules nothing** — a run with an empty plan is
//! bit-identical to a static run, which the determinism CI gate and the
//! replay proptests both enforce.

use lv_kernel::{DynamicsAction, Network};
use lv_radio::units::Position;
use lv_radio::{Channel, PowerLevel};
use lv_sim::{SimDuration, SimRng, SimTime};

/// One scheduled mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsEvent {
    /// Virtual time at which the mutation fires.
    pub at: SimTime,
    /// The mutation.
    pub action: DynamicsAction,
}

/// A deterministic timeline of world mutations (builder-style DSL).
///
/// ```
/// use lv_testbed::DynamicsPlan;
/// use lv_sim::{SimDuration, SimTime};
///
/// let plan = DynamicsPlan::new()
///     // 4 → 5 loses 5 dB every 10 s, eight times, starting at t=30 s
///     .link_ramp_symmetric(
///         4, 5,
///         SimTime::from_secs(30), SimDuration::from_secs(10), 8, 5.0,
///     )
///     // a 20 s interference burst on channel 17 at t=60 s
///     .noise_burst(
///         lv_radio::Channel::DEFAULT,
///         SimTime::from_secs(60), SimDuration::from_secs(20), 12.0,
///     )
///     // node 3 power-cycles at t=90 s, back at t=110 s
///     .node_churn(3, SimTime::from_secs(90), Some(SimTime::from_secs(110)));
/// assert_eq!(plan.len(), 2 * 8 + 2 + 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicsPlan {
    events: Vec<DynamicsEvent>,
}

impl DynamicsPlan {
    /// An empty plan (bit-identical to a static run when scheduled).
    pub fn new() -> Self {
        DynamicsPlan::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[DynamicsEvent] {
        &self.events
    }

    /// Number of scheduled mutations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule one raw action at `at`.
    pub fn at(mut self, at: SimTime, action: DynamicsAction) -> Self {
        self.events.push(DynamicsEvent { at, action });
        self
    }

    /// RADIUS-style gradual degradation of the directed link
    /// `from → to`: starting at `start`, the link's extra path loss
    /// steps to `db_per_step`, `2·db_per_step`, … every `step` until
    /// `steps` steps have been applied (the override is absolute, so
    /// each step replaces the previous one).
    pub fn link_ramp(
        mut self,
        from: u16,
        to: u16,
        start: SimTime,
        step: SimDuration,
        steps: u32,
        db_per_step: f64,
    ) -> Self {
        let mut at = start;
        for k in 1..=steps {
            self.events.push(DynamicsEvent {
                at,
                action: DynamicsAction::SetLinkLoss {
                    from,
                    to,
                    extra_loss_db: db_per_step * k as f64,
                    blocked: false,
                },
            });
            at += step;
        }
        self
    }

    /// [`DynamicsPlan::link_ramp`] applied to both directions of the
    /// link — an obstacle or enclosure degrades the path, not one
    /// antenna.
    pub fn link_ramp_symmetric(
        self,
        a: u16,
        b: u16,
        start: SimTime,
        step: SimDuration,
        steps: u32,
        db_per_step: f64,
    ) -> Self {
        self.link_ramp(a, b, start, step, steps, db_per_step)
            .link_ramp(b, a, start, step, steps, db_per_step)
    }

    /// Remove any override on both directions of the `a ↔ b` link at
    /// `at` (the obstacle is removed; quality recovers).
    pub fn link_repair(self, a: u16, b: u16, at: SimTime) -> Self {
        self.at(at, DynamicsAction::ClearLinkLoss { from: a, to: b })
            .at(at, DynamicsAction::ClearLinkLoss { from: b, to: a })
    }

    /// A bursty interference window: the noise floor on `channel` rises
    /// by `delta_db` at `start` and falls back after `duration`.
    pub fn noise_burst(
        self,
        channel: Channel,
        start: SimTime,
        duration: SimDuration,
        delta_db: f64,
    ) -> Self {
        self.at(start, DynamicsAction::SetChannelNoise { channel, delta_db })
            .at(
                start + duration,
                DynamicsAction::ClearChannelNoise { channel },
            )
    }

    /// Node churn: `id` dies at `down_at` and (optionally) cold-reboots
    /// at `up_at`.
    pub fn node_churn(self, id: u16, down_at: SimTime, up_at: Option<SimTime>) -> Self {
        let plan = self.at(down_at, DynamicsAction::NodeDown { id });
        match up_at {
            Some(at) => plan.at(at, DynamicsAction::NodeUp { id }),
            None => plan,
        }
    }

    /// Retune `id`'s radio channel at `at`.
    pub fn set_channel(self, id: u16, at: SimTime, channel: Channel) -> Self {
        self.at(at, DynamicsAction::SetNodeChannel { id, channel })
    }

    /// Change `id`'s transmit power at `at`.
    pub fn set_power(self, id: u16, at: SimTime, power: PowerLevel) -> Self {
        self.at(at, DynamicsAction::SetNodePower { id, power })
    }

    /// Move `id` to `position` at `at`.
    pub fn move_node(self, id: u16, at: SimTime, position: Position) -> Self {
        self.at(at, DynamicsAction::MoveNode { id, position })
    }

    /// Seeded random churn: `events` down/up cycles drawn from a
    /// dedicated RNG stream — node, death time inside `window`, and an
    /// outage of `[min_outage, min_outage + outage_spread)` are all
    /// derived from `seed`, so the same seed always yields the same
    /// timeline.
    pub fn random_churn(
        self,
        seed: u64,
        nodes: &[u16],
        window: (SimTime, SimTime),
        events: usize,
        min_outage: SimDuration,
        outage_spread: SimDuration,
    ) -> Self {
        let mut rng = SimRng::stream(seed, 0x4459_4E43_4855_524E); // "DYNCHURN"
        let span = window.1.saturating_since(window.0);
        let mut plan = self;
        for _ in 0..events {
            if nodes.is_empty() || span.is_zero() {
                break;
            }
            let id = nodes[rng.below(nodes.len() as u64) as usize];
            let down_at = window.0 + SimDuration::from_nanos(rng.below(span.as_nanos()));
            let outage = min_outage
                + if outage_spread.is_zero() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_nanos(rng.below(outage_spread.as_nanos()))
                };
            plan = plan.node_churn(id, down_at, Some(down_at + outage));
        }
        plan
    }

    /// Seeded random interference bursts on `channel`: `events` windows
    /// with start times inside `window` and lengths in
    /// `[min_len, min_len + len_spread)`, all derived from `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn random_noise_bursts(
        self,
        seed: u64,
        channel: Channel,
        window: (SimTime, SimTime),
        events: usize,
        delta_db: f64,
        min_len: SimDuration,
        len_spread: SimDuration,
    ) -> Self {
        let mut rng = SimRng::stream(seed, 0x4459_4E42_5552_5354); // "DYNBURST"
        let span = window.1.saturating_since(window.0);
        let mut plan = self;
        for _ in 0..events {
            if span.is_zero() {
                break;
            }
            let start = window.0 + SimDuration::from_nanos(rng.below(span.as_nanos()));
            let len = min_len
                + if len_spread.is_zero() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_nanos(rng.below(len_spread.as_nanos()))
                };
            plan = plan.noise_burst(channel, start, len, delta_db);
        }
        plan
    }

    /// Schedule every event of the plan onto `net`'s event queue.
    /// Events are scheduled in insertion order, so same-instant
    /// mutations keep their plan order (FIFO tie-breaking). An empty
    /// plan schedules nothing and leaves the run bit-identical to a
    /// static scenario.
    pub fn schedule(&self, net: &mut Network) {
        for ev in &self.events {
            net.schedule_dynamics(ev.at, ev.action.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_steps_are_cumulative_and_ordered() {
        let plan = DynamicsPlan::new().link_ramp(
            1,
            2,
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
            3,
            4.0,
        );
        assert_eq!(plan.len(), 3);
        let losses: Vec<f64> = plan
            .events()
            .iter()
            .map(|e| match e.action {
                DynamicsAction::SetLinkLoss { extra_loss_db, .. } => extra_loss_db,
                _ => panic!("unexpected action"),
            })
            .collect();
        assert_eq!(losses, vec![4.0, 8.0, 12.0]);
        assert_eq!(plan.events()[0].at, SimTime::from_secs(10));
        assert_eq!(plan.events()[2].at, SimTime::from_secs(20));
    }

    #[test]
    fn noise_burst_opens_and_closes() {
        let plan = DynamicsPlan::new().noise_burst(
            Channel::DEFAULT,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            10.0,
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[1].at, SimTime::from_secs(3));
        assert!(matches!(
            plan.events()[1].action,
            DynamicsAction::ClearChannelNoise { .. }
        ));
    }

    #[test]
    fn seeded_builders_are_reproducible() {
        let mk = || {
            DynamicsPlan::new()
                .random_churn(
                    9,
                    &[1, 2, 3],
                    (SimTime::from_secs(5), SimTime::from_secs(50)),
                    4,
                    SimDuration::from_secs(2),
                    SimDuration::from_secs(8),
                )
                .random_noise_bursts(
                    9,
                    Channel::DEFAULT,
                    (SimTime::from_secs(5), SimTime::from_secs(50)),
                    3,
                    8.0,
                    SimDuration::from_secs(1),
                    SimDuration::from_secs(4),
                )
        };
        assert_eq!(mk(), mk());
        assert_eq!(mk().len(), 4 * 2 + 3 * 2);
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = DynamicsPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.events().len(), 0);
    }
}
