//! Experiment drivers — one per table/figure (see `DESIGN.md` §4).
//!
//! Every driver is a pure function of a seed, returning serializable
//! rows. The `figures` binary in `lv-bench` prints them; criterion
//! benches call them for timing; `EXPERIMENTS.md` quotes them.

use crate::results::*;
use crate::scenario::{Scenario, ScenarioConfig};
use crate::topology::Topology;
use liteview::wire::PingReply;
use liteview::{Command, CommandRequest, CommandResult, TraceOutcome};
use lv_kernel::{Network, Process, ProcessImage, RxMeta, SysCtx};
use lv_net::packet::{NetPacket, Port, PAYLOAD_AREA};
use lv_net::padding::HopQuality;
use lv_sim::{SimDuration, SimRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Run one traceroute over the 8-hop corridor and return the outcome.
fn corridor_traceroute(seed: u64, power_level: Option<u8>) -> (Scenario, TraceOutcome) {
    let cfg = ScenarioConfig::new(Topology::eight_hop_corridor(), seed);
    let mut s = Scenario::build(cfg);
    if let Some(level) = power_level {
        let p = lv_radio::PowerLevel::new(level).expect("valid level");
        for i in 0..s.net.node_count() as u16 {
            s.net.set_node_power(i, p);
        }
        // Let estimators re-settle at the new power.
        s.net.run_for(SimDuration::from_secs(10));
    }
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(8, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    let CommandResult::Traceroute(t) = exec.result else {
        panic!("traceroute failed: {:?}", exec.result);
    };
    (s, t)
}

/// **Fig. 5** — traceroute response delay for each hop of an 8-hop path.
pub fn fig5_traceroute_delay(seed: u64) -> Vec<Fig5Row> {
    let (_, t) = corridor_traceroute(seed, None);
    t.hops
        .iter()
        .map(|h| Fig5Row {
            hop: h.record.hop_index,
            delay_ms: h.arrival.as_millis_f64(),
        })
        .collect()
}

/// **Fig. 6** — per-hop RSSI (both directions) at power levels 10 and 25.
pub fn fig6_rssi_vs_power(seed: u64) -> Vec<Fig6Row> {
    let (_, t10) = corridor_traceroute(seed, Some(10));
    let (_, t25) = corridor_traceroute(seed, Some(25));
    let pick = |t: &TraceOutcome, hop: u8| -> Option<(i8, i8)> {
        t.hops
            .iter()
            .find(|h| h.record.hop_index == hop && !h.record.probe_lost)
            .map(|h| (h.record.rssi_fwd, h.record.rssi_bwd))
    };
    (1..=8u8)
        .filter_map(|hop| {
            let (f10, b10) = pick(&t10, hop)?;
            let (f25, b25) = pick(&t25, hop)?;
            Some(Fig6Row {
                hop,
                fwd_p10: f10,
                bwd_p10: b10,
                fwd_p25: f25,
                bwd_p25: b25,
            })
        })
        .collect()
}

/// One point of the Fig. 7 sweep: overhead of one traceroute over a
/// `hops`-hop corridor.
fn fig7_point(seed: u64, hops: u8) -> Fig7Row {
    let topo = Topology::Corridor {
        n: hops as usize + 1,
        spacing: 5.0,
        wall_loss_db: 40.0,
    };
    let mut s = Scenario::build(ScenarioConfig::new(topo, seed));
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    s.reset_counters();
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(hops as u16, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    assert!(
        matches!(exec.result, CommandResult::Traceroute(_)),
        "hops={hops}: {:?}",
        exec.result
    );
    Fig7Row {
        hops,
        control_packets: s.net.counters.get("tx.data"),
        acks: s.net.counters.get("tx.ack"),
    }
}

/// **Fig. 7** — traceroute command overhead (packets) vs path length.
///
/// Path lengths are swept in parallel with `crossbeam` (each run builds
/// its own network, so runs stay deterministic and independent).
pub fn fig7_overhead(seed: u64) -> Vec<Fig7Row> {
    let mut rows: Vec<Fig7Row> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (1..=8u8)
            .map(|hops| scope.spawn(move |_| fig7_point(seed, hops)))
            .collect();
        for h in handles {
            rows.push(h.join().expect("sweep thread"));
        }
    })
    .expect("crossbeam scope");
    rows.sort_by_key(|r| r.hops);
    rows
}

/// **T-resp** — response delays of the fixed-window commands.
pub fn text_response_delays(seed: u64, trials: u32) -> Vec<TrespRow> {
    let cfg = ScenarioConfig::new(Topology::Line { n: 2, spacing: 5.0 }, seed);
    let mut s = Scenario::build(cfg);
    s.ws.cd(&s.net, "192.168.0.2").unwrap();
    let commands: Vec<(&str, Command)> = vec![
        ("get-power", Command::GetPower),
        (
            "neighbor-list",
            Command::NeighborList { with_quality: true },
        ),
        (
            "blacklist",
            Command::Blacklist {
                neighbor: 0,
                add: false,
            },
        ),
        (
            "ping (single-hop)",
            Command::Ping {
                dst: 0,
                rounds: 1,
                length: 32,
                port: None,
            },
        ),
    ];
    commands
        .into_iter()
        .map(|(name, cmd)| {
            let mut delays = Vec::new();
            let mut answered = 0;
            for _ in 0..trials {
                let exec = s.ws.exec(&mut s.net, cmd.clone()).unwrap();
                if !matches!(exec.result, CommandResult::Timeout) {
                    answered += 1;
                }
                delays.push(exec.response_delay.as_millis_f64());
            }
            let mean = delays.iter().sum::<f64>() / delays.len().max(1) as f64;
            TrespRow {
                command: name.to_owned(),
                trials,
                mean_ms: mean,
                min_ms: delays.iter().copied().fold(f64::INFINITY, f64::min),
                max_ms: delays.iter().copied().fold(0.0, f64::max),
                answered,
            }
        })
        .collect()
}

/// **T-ping** — the sample one-hop ping output (Section III.B.3).
pub fn text_ping_sample(seed: u64) -> TpingRow {
    let cfg = ScenarioConfig::new(Topology::Line { n: 2, spacing: 3.0 }, seed);
    let mut s = Scenario::build(cfg);
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    let exec =
        s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
    let CommandResult::Ping(p) = exec.result else {
        panic!("ping failed: {:?}", exec.result);
    };
    let r = &p.rounds[0];
    TpingRow {
        rtt_ms: r.rtt_us as f64 / 1000.0,
        lqi_fwd: r.lqi_fwd,
        lqi_bwd: r.lqi_bwd,
        rssi_fwd: r.rssi_fwd,
        rssi_bwd: r.rssi_bwd,
        queue_fwd: r.queue_fwd,
        queue_bwd: r.queue_bwd,
        power: p.power,
        channel: p.channel,
    }
}

/// A minimal prober used by the padding-budget experiment: sends one
/// multi-hop ping probe and records how many hop-quality entries the
/// reply actually carried (the management summary would truncate them).
struct PadProbe {
    dst: u16,
    length: u8,
    observed: Rc<RefCell<Option<usize>>>,
}

impl Process for PadProbe {
    fn name(&self) -> &str {
        "pad-probe"
    }
    fn image(&self) -> ProcessImage {
        ProcessImage::PING
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        ctx.subscribe(Port(99));
        let probe = liteview::wire::PingProbe {
            session: 0x7AD,
            seq: 0,
            reply_port: 99,
        };
        ctx.send(
            self.dst,
            Port::GEOGRAPHIC,
            Port::PING,
            probe.encode(self.length as usize),
            true,
        );
    }
    fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, packet: &NetPacket, _meta: RxMeta) {
        if let Ok(reply) = PingReply::decode(&packet.payload) {
            *self.observed.borrow_mut() = Some(reply.fwd_hops.len());
        }
    }
}

/// **T-pad** — the padding budget: a 16-byte probe can record at most
/// 24 hops (Section IV.C.3); beyond that the padding area is full.
pub fn text_padding_budget(seed: u64) -> TpadRow {
    let n = 27usize; // 26 hops > the 24-hop budget
    let topo = Topology::Corridor {
        n,
        spacing: 5.0,
        wall_loss_db: 40.0,
    };
    let cfg = ScenarioConfig {
        warmup: SimDuration::from_secs(30),
        ..ScenarioConfig::new(topo, seed)
    };
    let mut s = Scenario::build(cfg);
    let observed = Rc::new(RefCell::new(None));
    let probe_payload = 16usize;
    s.net
        .spawn_process(
            0,
            Box::new(PadProbe {
                dst: (n - 1) as u16,
                length: probe_payload as u8,
                observed: observed.clone(),
            }),
            vec![],
        )
        .unwrap();
    s.net.run_for(SimDuration::from_secs(5));
    let analytic = (PAYLOAD_AREA - probe_payload) / HopQuality::WIRE_BYTES;
    let got = observed.borrow().unwrap_or(0);
    TpadRow {
        probe_payload,
        bytes_per_hop: HopQuality::WIRE_BYTES,
        analytic_max_hops: analytic,
        path_hops: n - 1,
        observed_entries: got,
    }
}

/// **T-foot** — component footprints against the paper's numbers.
pub fn text_footprints() -> Vec<TfootRow> {
    vec![
        TfootRow {
            component: "ping".into(),
            flash_bytes: ProcessImage::PING.flash_bytes,
            ram_bytes: ProcessImage::PING.ram_bytes,
        },
        TfootRow {
            component: "traceroute".into(),
            flash_bytes: ProcessImage::TRACEROUTE.flash_bytes,
            ram_bytes: ProcessImage::TRACEROUTE.ram_bytes,
        },
        TfootRow {
            component: "runtime controller".into(),
            flash_bytes: 3600,
            ram_bytes: 320,
        },
        TfootRow {
            component: "command interpreter".into(),
            flash_bytes: 4200,
            ram_bytes: 400,
        },
    ]
}

/// **T-ovh1** — one-hop ping costs two data packets on the air.
pub fn text_onehop_overhead(seed: u64) -> TovhRow {
    let cfg = ScenarioConfig::new(Topology::Line { n: 2, spacing: 5.0 }, seed);
    let mut s = Scenario::build(cfg);
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    s.reset_counters();
    let exec =
        s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
    assert!(matches!(exec.result, CommandResult::Ping(_)));
    TovhRow {
        command: "ping (one hop)".into(),
        data_packets: s.net.counters.get("tx.data"),
        acks: s.net.counters.get("tx.ack"),
    }
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

/// Traceroute vs multi-hop ping: packets and bytes per path length.
pub fn ablation_traceroute_vs_ping(seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for hops in [2u8, 4, 6, 8] {
        let topo = Topology::Corridor {
            n: hops as usize + 1,
            spacing: 5.0,
            wall_loss_db: 40.0,
        };
        // Traceroute arm.
        let mut s = Scenario::build(ScenarioConfig::new(topo.clone(), seed));
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        s.reset_counters();
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(hops as u16, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
        rows.push(AblationRow {
            arm: format!("traceroute hops={hops}"),
            metric: "data_packets".into(),
            value: s.net.counters.get("tx.data") as f64,
        });
        rows.push(AblationRow {
            arm: format!("traceroute hops={hops}"),
            metric: "bytes".into(),
            value: s.net.counters.get("tx.bytes") as f64,
        });
        // Multi-hop ping arm.
        let mut s = Scenario::build(ScenarioConfig::new(topo, seed));
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        s.reset_counters();
        s.ws.exec(
            &mut s.net,
            CommandRequest::ping(hops as u16, 1, 16, Some(Port::GEOGRAPHIC)),
        )
        .unwrap();
        rows.push(AblationRow {
            arm: format!("multihop-ping hops={hops}"),
            metric: "data_packets".into(),
            value: s.net.counters.get("tx.data") as f64,
        });
        rows.push(AblationRow {
            arm: format!("multihop-ping hops={hops}"),
            metric: "bytes".into(),
            value: s.net.counters.get("tx.bytes") as f64,
        });
    }
    rows
}

/// Adaptive vs fixed batch sizing in the reliable command protocol,
/// under Bernoulli chunk loss (protocol-level, no radio).
pub fn ablation_batch_adaptive(seed: u64) -> Vec<AblationRow> {
    use liteview::protocol::{BatchReceiver, BatchSender, SendStep};
    use liteview::wire::BatchMsg;

    let chunks: Vec<Vec<u8>> = (0..24).map(|i| vec![i as u8; 8]).collect();
    let mut rows = Vec::new();
    for loss in [0.0f64, 0.15, 0.3] {
        for (arm, fixed) in [
            ("adaptive", None),
            ("fixed-1", Some(1)),
            ("fixed-4", Some(4)),
        ] {
            let mut rng = SimRng::stream(seed, (loss * 100.0) as u64 + fixed.unwrap_or(9) as u64);
            let mut tx = BatchSender::new(1, chunks.clone());
            if let Some(k) = fixed {
                tx.set_fixed_batch(k);
            }
            let mut rx = BatchReceiver::new(1);
            let mut transmissions = 0u64;
            let mut round_trips = 0u64;
            let mut steps = tx.start();
            let mut guard = 0;
            while !tx.is_finished() && guard < 10_000 {
                guard += 1;
                let mut ack = None;
                for step in &steps {
                    if let SendStep::Transmit(BatchMsg::Data {
                        req_id,
                        seq,
                        total,
                        ack_after,
                        payload,
                    }) = step
                    {
                        transmissions += 1;
                        if rng.chance(loss) {
                            continue;
                        }
                        if let Some(a) =
                            rx.on_data(*req_id, *seq, *total, *ack_after, payload.clone())
                        {
                            ack = Some(a);
                        }
                    }
                }
                round_trips += 1;
                // Fixed arms keep their size pinned across adaptation.
                steps = match ack {
                    Some(BatchMsg::Ack { missing, .. }) if !rng.chance(loss) => {
                        let s = tx.on_ack(&missing);
                        if let Some(k) = fixed {
                            tx.set_fixed_batch(k);
                        }
                        s
                    }
                    _ => {
                        let s = tx.on_timeout();
                        if let Some(k) = fixed {
                            tx.set_fixed_batch(k);
                        }
                        s
                    }
                };
            }
            rows.push(AblationRow {
                arm: format!("{arm} loss={loss}"),
                metric: "transmissions".into(),
                value: transmissions as f64,
            });
            rows.push(AblationRow {
                arm: format!("{arm} loss={loss}"),
                metric: "round_trips".into(),
                value: round_trips as f64,
            });
            rows.push(AblationRow {
                arm: format!("{arm} loss={loss}"),
                metric: "completed".into(),
                value: f64::from(rx.is_complete()),
            });
        }
    }
    rows
}

/// A process that fires one reply toward a collector, optionally after
/// a random backoff — the group-response collision ablation.
struct GroupResponder {
    jitter: bool,
}

impl Process for GroupResponder {
    fn name(&self) -> &str {
        "group-responder"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        let delay = if self.jitter {
            SimDuration::from_nanos(ctx.rng.below(250_000_000))
        } else {
            SimDuration::ZERO
        };
        ctx.set_timer(1, delay);
    }
    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, _token: u32) {
        ctx.send(0, Port(60), Port(60), vec![ctx.node_id as u8; 20], false);
    }
}

/// Counts arrivals at the collector.
struct Collector {
    seen: Rc<RefCell<u32>>,
}

impl Process for Collector {
    fn name(&self) -> &str {
        "collector"
    }
    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        ctx.subscribe(Port(60));
    }
    fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, _p: &NetPacket, _m: RxMeta) {
        *self.seen.borrow_mut() += 1;
    }
}

/// Random response backoff vs none when a group of nodes replies at
/// once ("these nodes wait for random backoff delays before sending
/// responses, so that their packets will not collide").
pub fn ablation_response_backoff(seed: u64, responders: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (arm, jitter) in [("no-backoff", false), ("random-backoff", true)] {
        // Star: collector at the center, responders on a circle.
        let mut positions = vec![lv_radio::Position::new(0.0, 0.0)];
        for i in 0..responders {
            let angle = i as f64 / responders as f64 * std::f64::consts::TAU;
            positions.push(lv_radio::Position::new(
                6.0 * angle.cos(),
                6.0 * angle.sin(),
            ));
        }
        let medium = lv_radio::Medium::new(positions, lv_radio::PropagationConfig::default(), seed);
        let mut net = Network::new(medium, seed ^ jitter as u64);
        let seen = Rc::new(RefCell::new(0));
        net.spawn_process(0, Box::new(Collector { seen: seen.clone() }), vec![])
            .unwrap();
        for i in 1..=responders as u16 {
            net.spawn_process(i, Box::new(GroupResponder { jitter }), vec![])
                .unwrap();
        }
        net.run_for(SimDuration::from_secs(2));
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "delivered".into(),
            value: *seen.borrow() as f64,
        });
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "data_packets".into(),
            value: net.counters.get("tx.data") as f64,
        });
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "mac_failures".into(),
            value: net.counters.sum_prefix("mac.failed") as f64,
        });
    }
    rows
}

/// Estimated embedded RAM layout of one neighbor entry (id, in/out
/// quality, last-heard, compressed position, gradient, flags, name ref).
pub const EMBEDDED_NEIGHBOR_ENTRY_BYTES: usize = 16;

/// Kernel-owned shared neighbor table vs per-protocol private tables
/// (the paper's motivation: "it is not cost-effective to allow each
/// protocol to maintain an independent version of neighbor tables").
pub fn ablation_neighbor_table() -> Vec<AblationRow> {
    let capacity = lv_net::neighbors::NeighborTable::DEFAULT_CAPACITY;
    let protocols = 3.0; // geographic + flooding + tree coexisting
    let shared = (EMBEDDED_NEIGHBOR_ENTRY_BYTES * capacity) as f64;
    vec![
        AblationRow {
            arm: "kernel shared table".into(),
            metric: "ram_bytes".into(),
            value: shared,
        },
        AblationRow {
            arm: "per-protocol tables (x3)".into(),
            metric: "ram_bytes".into(),
            value: shared * protocols,
        },
    ]
}

/// Padding on vs off: a 16-byte probe leaves 48 bytes of padding room;
/// a 64-byte probe leaves none, so no per-hop data is collected and no
/// extra bytes fly. Quantifies the padding mechanism's cost.
pub fn ablation_padding(seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (arm, length) in [
        ("16B probe (padding room)", 16u8),
        ("64B probe (no room)", 64),
    ] {
        let topo = Topology::Corridor {
            n: 5,
            spacing: 5.0,
            wall_loss_db: 40.0,
        };
        let mut s = Scenario::build(ScenarioConfig::new(topo, seed));
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        s.reset_counters();
        let exec =
            s.ws.exec(
                &mut s.net,
                CommandRequest::ping(4, 1, length, Some(Port::GEOGRAPHIC)),
            )
            .unwrap();
        // Forward-path entries only: the probe's padding space is what
        // the arm varies (the reply packet has its own, separate room).
        let entries = match &exec.result {
            CommandResult::Ping(p) => p.rounds.first().map(|r| r.fwd_hops.len()).unwrap_or(0),
            _ => 0,
        };
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "fwd_hop_entries".into(),
            value: entries as f64,
        });
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "bytes_on_air".into(),
            value: s.net.counters.get("tx.bytes") as f64,
        });
    }
    rows
}

/// Beacon exchange frequency vs neighbor-discovery latency — the trade
/// the `update` command lets operators tune in the field. Faster
/// beacons discover (and re-estimate) neighborhoods sooner at a
/// proportional energy/airtime cost.
pub fn ablation_beacon_rate(seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for period_ms in [500u64, 2_000, 8_000] {
        let topo = Topology::Corridor {
            n: 9,
            spacing: 5.0,
            wall_loss_db: 40.0,
        };
        let medium = topo.medium(lv_radio::PropagationConfig::default(), seed);
        let mut net = Network::new(medium, seed);
        for i in 0..9u16 {
            net.node_mut(i).stack.config_mut().beacon_period = SimDuration::from_millis(period_ms);
        }
        // Sample until every node's estimate of every corridor neighbor
        // has CONVERGED — inbound and outbound both confirmed > 0.9
        // (full estimator windows plus advertisement exchange), not just
        // first contact — or a 5-minute cap. Convergence time is what
        // the beacon rate controls.
        let expected = |i: u16| if i == 0 || i == 8 { 1 } else { 2 };
        let mut converged_at = None;
        for _ in 0..3000 {
            net.run_for(SimDuration::from_millis(100));
            let done = (0..9u16).all(|i| {
                net.node(i)
                    .stack
                    .neighbors
                    .entries()
                    .iter()
                    .filter(|e| e.inbound() > 0.9 && e.outbound.unwrap_or(0.0) > 0.9)
                    .count()
                    >= expected(i)
            });
            if done {
                converged_at = Some(net.now());
                break;
            }
        }
        let arm = format!("beacon period {period_ms} ms");
        rows.push(AblationRow {
            arm: arm.clone(),
            metric: "quality_convergence_ms".into(),
            value: converged_at.map_or(f64::INFINITY, |t| t.as_millis_f64()),
        });
        rows.push(AblationRow {
            arm,
            metric: "beacons_per_node_per_min".into(),
            value: 60_000.0 / period_ms as f64,
        });
    }
    rows
}

/// Radio-active energy (TX + RX joules summed over all nodes) consumed
/// by one invocation of each command — the paper's "communication
/// overhead" efficiency metric expressed in the battery's own units.
/// Also reports the deployment-wide idle-listening energy per minute,
/// which dwarfs every command (the classic WSN energy story).
pub fn ablation_energy(seed: u64) -> Vec<AblationRow> {
    let topo = Topology::eight_hop_corridor;
    let active_sum = |s: &Scenario| -> f64 {
        (0..s.net.node_count() as u16)
            .map(|i| s.net.node(i).energy.active_joules())
            .sum()
    };
    let mut rows = Vec::new();
    let run = |f: &dyn Fn(&mut Scenario)| -> f64 {
        let mut s = Scenario::build(ScenarioConfig::new(topo(), seed));
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        let before = active_sum(&s);
        f(&mut s);
        active_sum(&s) - before
    };
    let ping_1hop = run(&|s| {
        s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
    });
    let ping_8hop = run(&|s| {
        s.ws.exec(
            &mut s.net,
            CommandRequest::ping(8, 1, 16, Some(Port::GEOGRAPHIC)),
        )
        .unwrap();
    });
    let traceroute_8hop = run(&|s| {
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(8, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    });
    let beacons_per_min = {
        let mut s = Scenario::build(ScenarioConfig::new(topo(), seed));
        let before = active_sum(&s);
        s.net.run_for(SimDuration::from_secs(60));
        active_sum(&s) - before
    };
    // Idle listening for the whole 9-node deployment over one minute.
    let listen_per_min =
        9.0 * lv_radio::energy::RX_CURRENT_A * lv_radio::energy::SUPPLY_VOLTS * 60.0;
    for (arm, joules) in [
        ("ping 1-hop", ping_1hop),
        ("multihop-ping 8-hop", ping_8hop),
        ("traceroute 8-hop", traceroute_8hop),
        ("beaconing (network, 1 min)", beacons_per_min),
        ("idle listening (network, 1 min)", listen_per_min),
    ] {
        rows.push(AblationRow {
            arm: arm.into(),
            metric: "active_joules".into(),
            value: joules,
        });
    }
    rows
}

/// Substrate validation: packet reception ratio, RSSI and LQI vs
/// distance for 40-byte frames at full power — the classic
/// "transitional region" curve (Zuniga & Krishnamachari) the radio
/// model is built from. Not a paper figure; it documents that the
/// simulated links behave like the testbed links the paper measured:
/// a connected region, a disconnected region, and a noisy transitional
/// band between them where asymmetric and intermittent links live.
pub fn characterize_links(seed: u64) -> Vec<LinkCharRow> {
    use lv_radio::{Medium, Position, PowerLevel, PropagationConfig};
    let trials = 200;
    let mut rows = Vec::new();
    let mut d = 1.0f64;
    while d <= 45.0 {
        // Fresh per-distance medium: each distance gets its own frozen
        // shadowing draws, averaging over many link instances.
        let mut received = 0u32;
        let mut rssi_sum = 0f64;
        let mut lqi_sum = 0f64;
        for link in 0..20u64 {
            let medium = Medium::new(
                vec![Position::new(0.0, 0.0), Position::new(d, 0.0)],
                PropagationConfig::default(),
                seed ^ (link << 8) ^ (d as u64),
            );
            let mut rng = SimRng::stream(seed ^ link, d as u64);
            for _ in 0..trials / 20 {
                if let Some(a) = medium.assess(0, 1, PowerLevel::MAX, 40, 0.0, &mut rng) {
                    if a.delivered {
                        received += 1;
                        rssi_sum += a.rssi as f64;
                        lqi_sum += a.lqi as f64;
                    }
                }
            }
        }
        let prr = received as f64 / trials as f64;
        rows.push(LinkCharRow {
            distance_m: d,
            prr,
            mean_rssi: if received > 0 {
                rssi_sum / received as f64
            } else {
                f64::NAN
            },
            mean_lqi: if received > 0 {
                lqi_sum / received as f64
            } else {
                f64::NAN
            },
        });
        d += 2.0;
    }
    rows
}

// ---------------------------------------------------------------------
// Multi-trial aggregates (run through `runner::TrialRunner`)
// ---------------------------------------------------------------------

use crate::runner::{FailurePlan, TrialRunner};
use crate::stats::AggregateStats;
use lv_sim::Summary;

/// **Fig. 5, aggregate** — per-hop traceroute response delay across
/// `runner.trials()` independent trials (fresh network per trial).
///
/// Hops whose report was lost in a trial contribute no sample for that
/// trial, so a row's `delay_ms.n` can be below `trials`.
pub fn fig5_traceroute_delay_agg(runner: &TrialRunner) -> Vec<Fig5AggRow> {
    let per_trial = runner.run(|t| fig5_traceroute_delay(t.seed));
    let mut per_hop: Vec<Summary> = (0..8).map(|_| Summary::new()).collect();
    for rows in &per_trial {
        for r in rows {
            if (1..=8).contains(&r.hop) {
                per_hop[r.hop as usize - 1].push(r.delay_ms);
            }
        }
    }
    per_hop
        .iter()
        .enumerate()
        .filter(|(_, s)| s.count() > 0)
        .map(|(i, s)| Fig5AggRow {
            hop: i as u8 + 1,
            trials: runner.trials() as u64,
            delay_ms: AggregateStats::from_summary(s),
        })
        .collect()
}

/// **Fig. 6, aggregate** — per-hop RSSI at power levels 10 and 25
/// across trials. A hop contributes to a trial only when both power
/// levels produced a non-lost probe there (same rule as the
/// single-trial driver).
pub fn fig6_rssi_vs_power_agg(runner: &TrialRunner) -> Vec<Fig6AggRow> {
    let per_trial = runner.run(|t| fig6_rssi_vs_power(t.seed));
    let mut per_hop: Vec<[Summary; 4]> = (0..8).map(|_| Default::default()).collect();
    for rows in &per_trial {
        for r in rows {
            if (1..=8).contains(&r.hop) {
                let s = &mut per_hop[r.hop as usize - 1];
                s[0].push(r.fwd_p10 as f64);
                s[1].push(r.bwd_p10 as f64);
                s[2].push(r.fwd_p25 as f64);
                s[3].push(r.bwd_p25 as f64);
            }
        }
    }
    per_hop
        .iter()
        .enumerate()
        .filter(|(_, s)| s[0].count() > 0)
        .map(|(i, s)| Fig6AggRow {
            hop: i as u8 + 1,
            trials: runner.trials() as u64,
            fwd_p10: AggregateStats::from_summary(&s[0]),
            bwd_p10: AggregateStats::from_summary(&s[1]),
            fwd_p25: AggregateStats::from_summary(&s[2]),
            bwd_p25: AggregateStats::from_summary(&s[3]),
        })
        .collect()
}

/// **Fig. 7, aggregate** — traceroute overhead vs path length across
/// trials. Each trial sweeps all eight path lengths serially (the
/// runner already parallelizes across trials, so nesting the
/// crossbeam sweep of [`fig7_overhead`] would only oversubscribe).
pub fn fig7_overhead_agg(runner: &TrialRunner) -> Vec<Fig7AggRow> {
    let per_trial = runner.run(|t| {
        (1..=8u8)
            .map(|hops| fig7_point(t.seed, hops))
            .collect::<Vec<_>>()
    });
    (0..8usize)
        .map(|i| {
            let mut control = Summary::new();
            let mut acks = Summary::new();
            for rows in &per_trial {
                control.push(rows[i].control_packets as f64);
                acks.push(rows[i].acks as f64);
            }
            Fig7AggRow {
                hops: i as u8 + 1,
                trials: runner.trials() as u64,
                control_packets: AggregateStats::from_summary(&control),
                acks: AggregateStats::from_summary(&acks),
            }
        })
        .collect()
}

/// **Link characterization, aggregate** — PRR/RSSI/LQI vs distance
/// across trials. Trials where a distance saw no receptions contribute
/// no RSSI/LQI sample there (their per-trial mean is NaN).
pub fn characterize_links_agg(runner: &TrialRunner) -> Vec<LinkCharAggRow> {
    let per_trial = runner.run(|t| characterize_links(t.seed));
    let distances: Vec<f64> = per_trial[0].iter().map(|r| r.distance_m).collect();
    distances
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut prr = Summary::new();
            let mut rssi = Summary::new();
            let mut lqi = Summary::new();
            for rows in &per_trial {
                let r = &rows[i];
                prr.push(r.prr);
                if !r.mean_rssi.is_nan() {
                    rssi.push(r.mean_rssi);
                }
                if !r.mean_lqi.is_nan() {
                    lqi.push(r.mean_lqi);
                }
            }
            LinkCharAggRow {
                distance_m: d,
                trials: runner.trials() as u64,
                prr: AggregateStats::from_summary(&prr),
                mean_rssi: AggregateStats::from_summary(&rssi),
                mean_lqi: AggregateStats::from_summary(&lqi),
            }
        })
        .collect()
}

/// **Failure-injection sweep** — diagnosis outcome on the 8-hop
/// corridor when a fraction of trials has a fault injected after
/// warm-up, composing [`crate::failures`] with the trial runner.
///
/// For each plan, every trial builds a fresh corridor, faults it if
/// [`FailurePlan::applies_to`] says so, gives routing five simulated
/// seconds to notice, then traceroutes the far end. The row aggregates
/// whether the destination was reached (0/1 per trial), how many hops
/// the trace covered, and when the last hop report arrived.
pub fn failure_sweep(runner: &TrialRunner, plans: &[FailurePlan]) -> Vec<FailureSweepRow> {
    plans
        .iter()
        .map(|plan| {
            let samples = runner.run(|t| {
                let cfg = ScenarioConfig::new(Topology::eight_hop_corridor(), t.seed);
                let mut s = Scenario::build(cfg);
                if plan.applies_to(t.index, t.trials) {
                    plan.mode.apply(&mut s.net);
                    s.net.run_for(SimDuration::from_secs(5));
                }
                s.ws.cd(&s.net, "192.168.0.1").unwrap();
                let exec =
                    s.ws.exec(
                        &mut s.net,
                        CommandRequest::traceroute(8, 32, Port::GEOGRAPHIC),
                    )
                    .unwrap();
                match exec.result {
                    CommandResult::Traceroute(t) => {
                        let covered = t.hops.iter().map(|h| h.record.hop_index).max().unwrap_or(0);
                        let last_ms = t
                            .hops
                            .iter()
                            .map(|h| h.arrival)
                            .max()
                            .unwrap_or(exec.response_delay)
                            .as_millis_f64();
                        (t.reached, covered, last_ms)
                    }
                    // A dead first hop can leave the window empty.
                    _ => (false, 0, exec.response_delay.as_millis_f64()),
                }
            });
            let trials = runner.trials();
            FailureSweepRow {
                mode: plan.mode.label(),
                fraction: plan.fraction,
                trials: trials as u64,
                faulted: plan.affected_count(trials) as u64,
                reached: crate::stats::aggregate(samples.iter().map(|&(r, _, _)| f64::from(r))),
                hops_covered: crate::stats::aggregate(samples.iter().map(|&(_, h, _)| h as f64)),
                last_report_ms: crate::stats::aggregate(samples.iter().map(|&(_, _, ms)| ms)),
            }
        })
        .collect()
}

/// The default failure plans the `figures` harness sweeps: a dead
/// mid-path node, a hard-broken mid-path link, and a heavily
/// attenuated (but not severed) mid-path link, each in half the
/// trials so faulted and healthy aggregates are directly comparable.
pub fn default_failure_plans() -> Vec<FailurePlan> {
    use crate::runner::FailureMode;
    vec![
        FailurePlan::new(FailureMode::KillNode { id: 4 }, 0.5),
        FailurePlan::new(FailureMode::BreakLink { a: 4, b: 5 }, 0.5),
        FailurePlan::new(
            FailureMode::AttenuateLink {
                from: 4,
                to: 5,
                loss_db: 25.0,
            },
            0.5,
        ),
    ]
}

// ---------------------------------------------------------------------
// Scaling sweep (PR 3): events/sec of the O(degree) event loop vs the
// brute-force O(N) transmit path, 100 → 1000 nodes.
// ---------------------------------------------------------------------

/// Grid shape for `nodes`: the divisor pair closest to square.
fn grid_shape(nodes: usize) -> (usize, usize) {
    let mut best = (1, nodes);
    for rows in 1..=nodes {
        if rows * rows > nodes {
            break;
        }
        if nodes.is_multiple_of(rows) {
            best = (rows, nodes / rows);
        }
    }
    best
}

/// Independent trials per scale point. The medium (positions + frozen
/// link gains) is the fixed substrate; each trial runs a fresh network
/// on a clone of it with its own seed — the standard multi-trial shape
/// of the experiment engine, which also means the one-time cache build
/// is amortized exactly the way a real study amortizes it.
const SCALE_TRIALS: u64 = 3;

/// One timed arm of the scaling workload at `nodes` nodes: an 18 m
/// pitch grid beacons every 500 ms; each of `SCALE_TRIALS` (3) trials
/// warms its neighbor tables for 2 s, then the workstation fires two
/// rounds of traceroutes at eight targets spread across the grid (each
/// command occupying its fixed 500 ms response window), and the network
/// runs 2 more seconds of beacon + report traffic.
///
/// `cached` toggles the medium's reachability cache — the brute arm is
/// the pre-optimization O(N)-per-transmission path (and skips building
/// the cache entirely, so it pays nothing for a structure it never
/// reads). Returns wall time, event count, throughput, and a digest of
/// every trial's counters (the two arms must produce equal digests: the
/// cache is not allowed to change physics).
pub fn scale_point(nodes: usize, seed: u64, cached: bool) -> ScaleRow {
    use liteview::{install_suite, Workstation};
    use std::hash::{Hash, Hasher};

    let (rows, cols) = grid_shape(nodes);
    let topology = Topology::Grid {
        rows,
        cols,
        spacing: 24.0,
    };
    let started = std::time::Instant::now();
    let medium = if cached {
        topology.medium(lv_radio::PropagationConfig::default(), seed)
    } else {
        // Same A/B hook the end-to-end figure tests use: constructing
        // under LV_MEDIUM_BRUTE skips the eager cache build, so the
        // brute arm is the genuine pre-optimization cost profile.
        std::env::set_var("LV_MEDIUM_BRUTE", "1");
        let m = topology.medium(lv_radio::PropagationConfig::default(), seed);
        std::env::remove_var("LV_MEDIUM_BRUTE");
        m
    };
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let mut events = 0u64;
    for trial in 0..SCALE_TRIALS {
        let trial_seed = seed.wrapping_add(trial.wrapping_mul(0x9E37_79B9));
        let mut m = medium.clone();
        m.set_cache_enabled(cached);
        let mut net = Network::new(m, trial_seed);
        for i in 0..net.node_count() as u16 {
            net.install_router(
                i,
                Box::new(lv_net::routing::Geographic::new(Port::GEOGRAPHIC)),
            )
            .expect("port 10 free");
            net.node_mut(i).stack.config_mut().beacon_period = SimDuration::from_millis(500);
        }
        install_suite(&mut net);
        net.run_for(SimDuration::from_secs(2));
        let mut ws = Workstation::install(&mut net, 0);
        ws.cd(&net, "192.168.0.1").expect("bridge exists");
        let n = net.node_count();
        // Eight targets spread over the grid: far corner, the two other
        // corners, and interior nodes. Commands may time out on very
        // long geographic paths — they are workload, not assertions;
        // both arms see the identical outcome.
        let targets = [
            n - 1,
            (rows - 1) * cols,
            cols - 1,
            n / 2,
            n / 3,
            2 * n / 3,
            n / 4,
            3 * n / 4,
        ];
        for round in 0..2 {
            for t in targets {
                let t = (t.saturating_sub(round).min(n - 1)) as u16;
                if t == 0 {
                    continue;
                }
                let _ = ws.exec(
                    &mut net,
                    CommandRequest::traceroute(t, 32, Port::GEOGRAPHIC),
                );
            }
        }
        net.run_for(SimDuration::from_secs(2));
        for (name, value) in net.counters.iter() {
            name.hash(&mut h);
            value.hash(&mut h);
        }
        net.events_dispatched().hash(&mut h);
        events += net.events_dispatched();
    }
    let wall = started.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    ScaleRow {
        nodes,
        cached,
        wall_ms,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        digest: format!("{:016x}", h.finish()),
    }
}

/// The full sweep: cached and brute-force runs at every size, with a
/// hard equivalence check — a digest mismatch panics, because it means
/// the reachability cache changed observable behaviour.
pub fn scale_sweep(sizes: &[usize], seed: u64) -> Vec<ScaleRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let cached = scale_point(n, seed, true);
        let brute = scale_point(n, seed, false);
        assert_eq!(
            cached.digest, brute.digest,
            "cache changed outcomes at {n} nodes"
        );
        assert_eq!(cached.events, brute.events);
        out.push(cached);
        out.push(brute);
    }
    out
}

// ----------------------------------------------------------------------
// Determinism digests (the CI regression gate)
// ----------------------------------------------------------------------

/// FNV-1a 64 over `bytes`. `DefaultHasher` is only documented as stable
/// within one process; the golden digests checked into the repo must
/// survive toolchain upgrades, so the gate uses a fixed algorithm.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a digest of a network's observable outcome: every global
/// counter `(name, value)` pair plus the dispatched-event count. Two
/// runs with equal digests dispatched the same number of events and
/// moved every counter identically — the bit-identity handle the
/// dynamics replay tests and the CI gate both use.
pub fn counters_digest(net: &Network) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (name, value) in net.counters.iter() {
        step(name.as_bytes());
        step(&value.to_le_bytes());
    }
    step(&net.events_dispatched().to_le_bytes());
    format!("{h:016x}")
}

/// Golden determinism digests for the headline figures: each digest is
/// FNV-1a over the figure's serialized JSON rows, so any behavioural
/// drift — float order, RNG draw count, counter movement — changes it.
/// `figures --digests` prints these; CI compares them against
/// `goldens/figure_digests.json`.
pub fn figure_digests(seed: u64) -> Vec<DigestRow> {
    let digest_of = |json: String| format!("{:016x}", fnv1a64(json.as_bytes()));
    vec![
        DigestRow {
            figure: "fig5".to_owned(),
            digest: digest_of(to_json_lines(&fig5_traceroute_delay(seed))),
        },
        DigestRow {
            figure: "fig6".to_owned(),
            digest: digest_of(to_json_lines(&fig6_rssi_vs_power(seed))),
        },
        DigestRow {
            figure: "fig7".to_owned(),
            digest: digest_of(to_json_lines(&fig7_overhead(seed))),
        },
    ]
}

// ----------------------------------------------------------------------
// Dynamics soak (`figures --dynamics`)
// ----------------------------------------------------------------------

/// The hop the soak degrades: the corridor link between nodes 4 and 5,
/// which traceroute reports as hop index 5 (probe leg 4 → 5).
const SOAK_RAMP_A: u16 = 4;
const SOAK_RAMP_B: u16 = 5;
const SOAK_HOP: u8 = 5;

/// The degradation-ramp soak: an 8-hop corridor whose mid-path link
/// `4 ↔ 5` loses 5 dB every 10 s (RADIUS-style gradual degradation, 12
/// steps to +60 dB), with degradation blacklisting armed on every node.
/// A workstation at one end traceroutes and pings the far end in a
/// loop. The expected arc — asserted by `figures --dynamics` and the
/// regression test — is:
///
/// 1. **detect**: traceroute's per-hop LQI/RSSI on hop 5 visibly drops
///    while end-to-end ping still succeeds (the paper's §IV story:
///    path profiling localizes the weakening hop *before* failure);
/// 2. **fail**: the ramp finishes severing the link and ping dies,
///    while neighbor eviction / degradation blacklisting fire;
/// 3. **recover**: the plan repairs the link, beacons rebuild the
///    neighbor tables, and ping succeeds again.
pub fn dynamics_soak(seed: u64) -> DynamicsSoakReport {
    use crate::dynamics::DynamicsPlan;

    let cfg = ScenarioConfig::new(Topology::eight_hop_corridor(), seed);
    let mut s = Scenario::build(cfg);
    // The soak doubles as the runtime-auditor's integration run: every
    // dynamics action triggers an invariant sweep (time monotonicity,
    // stale transmissions, resource-ledger balance).
    s.net.set_audit(true);
    for i in 0..s.net.node_count() as u16 {
        s.net.node_mut(i).stack.config_mut().blacklist_below = Some(0.35);
    }
    let t0 = s.net.now();
    let ramp_start = t0 + SimDuration::from_secs(20);
    let repair_at = t0 + SimDuration::from_secs(190);
    let plan = DynamicsPlan::new()
        .link_ramp_symmetric(
            SOAK_RAMP_A,
            SOAK_RAMP_B,
            ramp_start,
            SimDuration::from_secs(10),
            12,
            5.0,
        )
        .link_repair(SOAK_RAMP_A, SOAK_RAMP_B, repair_at);
    plan.schedule(&mut s.net);

    s.ws.cd(&s.net, "192.168.0.1").expect("bridge exists");
    let horizon = t0 + SimDuration::from_secs(260);
    let mut rounds: Vec<DynamicsSoakRow> = Vec::new();
    let mut baseline_rssi: Option<i8> = None;
    let (mut detect, mut fail, mut recover) = (None, None, None);
    while s.net.now() < horizon {
        let t_ms = s.net.now().as_millis_f64();
        let trace_exec = s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(8, 32, Port::GEOGRAPHIC),
        );
        let (trace_reached, hop) = match trace_exec.map(|e| e.result) {
            Ok(CommandResult::Traceroute(t)) => {
                let hop = t
                    .hops
                    .iter()
                    .find(|h| h.record.hop_index == SOAK_HOP && !h.record.probe_lost)
                    .map(|h| (h.record.lqi_fwd, h.record.rssi_fwd));
                (t.reached, hop)
            }
            _ => (false, None),
        };
        let ping_exec = s.ws.exec(
            &mut s.net,
            CommandRequest::ping(8, 1, 32, Some(Port::GEOGRAPHIC)),
        );
        let ping_ok = matches!(
            ping_exec.map(|e| e.result),
            Ok(CommandResult::Ping(p)) if p.received > 0
        );
        let (hop_lqi, hop_rssi) = hop.unwrap_or((0, 0));
        // First round with a visible hop report sets the RSSI baseline.
        if hop.is_some() && baseline_rssi.is_none() {
            baseline_rssi = Some(hop_rssi);
        }
        let now = s.net.now();
        let degraded_visible = match (hop, baseline_rssi) {
            // The hop reported in, audibly weaker than the baseline.
            (Some((_, rssi)), Some(base)) => i16::from(rssi) <= i16::from(base) - 10,
            // The hop went silent mid-ramp while the path still exists.
            (None, Some(_)) => now >= ramp_start,
            _ => false,
        };
        if detect.is_none() && degraded_visible && ping_ok {
            detect = Some(t_ms);
        }
        if fail.is_none() && !ping_ok && now >= ramp_start {
            fail = Some(t_ms);
        }
        if recover.is_none() && ping_ok && now >= repair_at {
            recover = Some(t_ms);
        }
        // Neighbor-churn counters live in each node's stack (they are
        // mote-side events), so sum them across the deployment.
        let sum_nodes = |name: &str| -> u64 {
            (0..s.net.node_count() as u16)
                .map(|i| s.net.node(i).stack.counters().get(name))
                .sum()
        };
        rounds.push(DynamicsSoakRow {
            t_ms,
            trace_reached,
            hop_seen: hop.is_some(),
            hop_lqi,
            hop_rssi,
            ping_ok,
            evictions: sum_nodes("net.neighbor_expired"),
            blacklists: sum_nodes("net.neighbor_blacklisted"),
        });
        s.net.run_for(SimDuration::from_secs(2));
    }
    // One final sweep so end-of-run imbalances are caught even if the
    // last dynamics action fired long before the horizon.
    let _ = s.net.check_invariants();
    let sum_nodes = |name: &str| -> u64 {
        (0..s.net.node_count() as u16)
            .map(|i| s.net.node(i).stack.counters().get(name))
            .sum()
    };
    DynamicsSoakReport {
        detect_ms: detect.unwrap_or(-1.0),
        ping_fail_ms: fail.unwrap_or(-1.0),
        recover_ms: recover.unwrap_or(-1.0),
        evictions: sum_nodes("net.neighbor_expired"),
        blacklists: sum_nodes("net.neighbor_blacklisted"),
        dyn_trace_events: s.net.counters.sum_prefix("dyn."),
        digest: counters_digest(&s.net),
        audit_violations: s.net.audit_violations().len() as u64,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_paper() {
        let rows = text_footprints();
        let ping = rows.iter().find(|r| r.component == "ping").unwrap();
        assert_eq!(ping.flash_bytes, 2148);
        assert_eq!(ping.ram_bytes, 278);
        let tr = rows.iter().find(|r| r.component == "traceroute").unwrap();
        assert_eq!(tr.flash_bytes, 2820);
        assert_eq!(tr.ram_bytes, 272);
    }

    #[test]
    fn neighbor_table_ablation_shape() {
        let rows = ablation_neighbor_table();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].value > rows[0].value * 2.5);
    }

    #[test]
    fn batch_ablation_adaptive_beats_fixed_extremes() {
        let rows = ablation_batch_adaptive(7);
        let get = |arm: &str, metric: &str| {
            rows.iter()
                .find(|r| r.arm == arm && r.metric == metric)
                .map(|r| r.value)
                .unwrap()
        };
        // Lossless: adaptive needs far fewer round trips than fixed-1.
        assert!(get("adaptive loss=0", "round_trips") < get("fixed-1 loss=0", "round_trips"));
        // The adaptive arm completes the transfer at every loss level
        // (fixed arms may abort after repeated timeouts — that is the
        // point of the ablation).
        for loss in ["0", "0.15", "0.3"] {
            assert_eq!(
                get(&format!("adaptive loss={loss}"), "completed"),
                1.0,
                "adaptive did not complete at loss {loss}"
            );
            assert!(get(&format!("adaptive loss={loss}"), "transmissions") >= 24.0);
        }
    }

    #[test]
    fn ping_sample_is_paper_shaped() {
        let row = text_ping_sample(11);
        assert!((1.0..12.0).contains(&row.rtt_ms), "rtt = {}", row.rtt_ms);
        assert!(row.lqi_fwd >= 100 && row.lqi_bwd >= 100);
        assert_eq!(row.power, 31);
        assert_eq!(row.channel, 17);
        assert_eq!(row.queue_fwd, 0);
    }

    #[test]
    fn onehop_overhead_is_two_packets() {
        let row = text_onehop_overhead(13);
        assert_eq!(row.data_packets, 2);
    }
}
