//! Deterministic topology generators.

use lv_radio::medium::LinkOverride;
use lv_radio::propagation::PropagationConfig;
use lv_radio::units::Position;
use lv_radio::{Medium, PowerLevel};
use lv_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A generated deployment layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Topology {
    /// `n` nodes on a straight line, `spacing` meters apart.
    Line {
        /// Node count.
        n: usize,
        /// Inter-node spacing in meters.
        spacing: f64,
    },
    /// A corridor: a line where only *adjacent* nodes have line of
    /// sight; skip links are attenuated hard (walls / corners). This is
    /// how a fixed hop-count path is pinned regardless of TX power —
    /// the simulated analogue of the authors' 8-hop indoor deployment.
    Corridor {
        /// Node count (hops = n − 1).
        n: usize,
        /// Inter-node spacing in meters.
        spacing: f64,
        /// Extra loss applied to non-adjacent links, dB.
        wall_loss_db: f64,
    },
    /// `rows × cols` grid with `spacing` meters pitch.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Grid pitch in meters.
        spacing: f64,
    },
    /// `n` nodes uniformly random in a `side × side` square.
    RandomDisk {
        /// Node count.
        n: usize,
        /// Square side length in meters.
        side: f64,
    },
}

impl Topology {
    /// The paper's evaluation deployment: thirty MicaZ nodes.
    pub fn paper_testbed() -> Topology {
        Topology::RandomDisk { n: 30, side: 40.0 }
    }

    /// The 8-hop-diameter path used for Figs. 5–7.
    pub fn eight_hop_corridor() -> Topology {
        Topology::Corridor {
            n: 9,
            spacing: 5.0,
            wall_loss_db: 40.0,
        }
    }

    /// Number of nodes this topology yields.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Line { n, .. } | Topology::Corridor { n, .. } => n,
            Topology::Grid { rows, cols, .. } => rows * cols,
            Topology::RandomDisk { n, .. } => n,
        }
    }

    /// Generate node positions (deterministic in `seed`).
    pub fn positions(&self, seed: u64) -> Vec<Position> {
        match *self {
            Topology::Line { n, spacing } | Topology::Corridor { n, spacing, .. } => (0..n)
                .map(|i| Position::new(i as f64 * spacing, 0.0))
                .collect(),
            Topology::Grid {
                rows,
                cols,
                spacing,
            } => (0..rows * cols)
                .map(|i| Position::new((i % cols) as f64 * spacing, (i / cols) as f64 * spacing))
                .collect(),
            Topology::RandomDisk { n, side } => {
                let mut rng = SimRng::stream(seed, 0x544F_504F);
                (0..n)
                    .map(|_| Position::new(rng.unit() * side, rng.unit() * side))
                    .collect()
            }
        }
    }

    /// Build the medium: positions plus any structural link overrides.
    pub fn medium(&self, config: PropagationConfig, seed: u64) -> Medium {
        let mut medium = Medium::new(self.positions(seed), config, seed);
        if let Topology::Corridor {
            n, wall_loss_db, ..
        } = *self
        {
            for i in 0..n as u16 {
                for j in 0..n as u16 {
                    if i != j && (i as i32 - j as i32).abs() >= 2 {
                        medium.set_override(
                            i,
                            j,
                            LinkOverride {
                                extra_loss_db: wall_loss_db,
                                blocked: false,
                            },
                        );
                    }
                }
            }
        }
        medium
    }
}

/// Symmetric "can either direction be heard" adjacency at `power`.
pub fn adjacency(medium: &Medium, power: PowerLevel) -> Vec<Vec<bool>> {
    let n = medium.node_count() as u16;
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| i != j && medium.hears(i, j, power) && medium.hears(j, i, power))
                .collect()
        })
        .collect()
}

/// BFS hop distance between two nodes (`None` if disconnected).
pub fn hop_distance(adj: &[Vec<bool>], from: u16, to: u16) -> Option<usize> {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[from as usize] = 0;
    queue.push_back(from as usize);
    while let Some(u) = queue.pop_front() {
        if u == to as usize {
            return Some(dist[u]);
        }
        for v in 0..n {
            if adj[u][v] && dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    None
}

/// Network diameter in hops (`None` if disconnected).
pub fn diameter(adj: &[Vec<bool>]) -> Option<usize> {
    let n = adj.len() as u16;
    let mut best = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            best = best.max(hop_distance(adj, i, j)?);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_positions() {
        let t = Topology::Line {
            n: 4,
            spacing: 10.0,
        };
        let p = t.positions(1);
        assert_eq!(p.len(), 4);
        assert!((p[3].x - 30.0).abs() < 1e-12);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn grid_positions() {
        let t = Topology::Grid {
            rows: 2,
            cols: 3,
            spacing: 5.0,
        };
        let p = t.positions(1);
        assert_eq!(p.len(), 6);
        assert_eq!(t.node_count(), 6);
        assert!((p[5].x - 10.0).abs() < 1e-12);
        assert!((p[5].y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_disk_deterministic_and_bounded() {
        let t = Topology::RandomDisk { n: 30, side: 40.0 };
        let a = t.positions(7);
        let b = t.positions(7);
        let c = t.positions(8);
        assert_eq!(a.len(), 30);
        for p in &a {
            assert!((0.0..=40.0).contains(&p.x) && (0.0..=40.0).contains(&p.y));
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn corridor_pins_hop_count_at_any_power() {
        let t = Topology::eight_hop_corridor();
        let medium = t.medium(PropagationConfig::default(), 3);
        for power in [
            PowerLevel::MAX,
            PowerLevel::new(25).unwrap(),
            PowerLevel::new(10).unwrap(),
        ] {
            let adj = adjacency(&medium, power);
            assert_eq!(
                hop_distance(&adj, 0, 8),
                Some(8),
                "power {power} should give exactly 8 hops"
            );
        }
    }

    #[test]
    fn corridor_blocks_skip_links() {
        let t = Topology::eight_hop_corridor();
        let medium = t.medium(PropagationConfig::default(), 3);
        assert!(medium.hears(0, 1, PowerLevel::MAX));
        assert!(!medium.hears(0, 2, PowerLevel::MAX));
    }

    #[test]
    fn paper_testbed_is_connected_multihop() {
        let t = Topology::paper_testbed();
        let medium = t.medium(PropagationConfig::default(), 42);
        let adj = adjacency(&medium, PowerLevel::MAX);
        let d = diameter(&adj);
        assert!(d.is_some(), "30-node testbed must be connected");
        assert!(d.unwrap() >= 2, "must be multi-hop, got {d:?}");
    }

    #[test]
    fn hop_distance_disconnected() {
        let t = Topology::Line {
            n: 2,
            spacing: 500.0,
        };
        let medium = t.medium(PropagationConfig::default(), 3);
        let adj = adjacency(&medium, PowerLevel::MAX);
        assert_eq!(hop_distance(&adj, 0, 1), None);
        assert_eq!(diameter(&adj), None);
    }
}
