//! Serializable result rows — one type per table/figure of the paper.
//!
//! The `figures` harness (in `lv-bench`) prints these as aligned text
//! and as JSON, so `EXPERIMENTS.md` can quote regenerated numbers
//! verbatim.

use serde::Serialize;

/// Fig. 5 — traceroute response delay per hop.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// 1-based hop index along the 8-hop path.
    pub hop: u8,
    /// Time the hop's report reached the workstation, ms from issue.
    pub delay_ms: f64,
}

/// Fig. 6 — per-hop RSSI readings at two power levels, both directions.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// 1-based hop index.
    pub hop: u8,
    /// Forward-link RSSI at power level 10.
    pub fwd_p10: i8,
    /// Backward-link RSSI at power level 10.
    pub bwd_p10: i8,
    /// Forward-link RSSI at power level 25.
    pub fwd_p25: i8,
    /// Backward-link RSSI at power level 25.
    pub bwd_p25: i8,
}

/// Fig. 7 — traceroute command overhead vs path length.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Path length in hops.
    pub hops: u8,
    /// Control (data-plane) packets transmitted by the command.
    pub control_packets: u64,
    /// Link-layer acknowledgements on top.
    pub acks: u64,
}

/// T-resp — response delay of the fixed-window commands.
#[derive(Debug, Clone, Serialize)]
pub struct TrespRow {
    /// Command name.
    pub command: String,
    /// Trials run.
    pub trials: u32,
    /// Mean reported response delay, ms.
    pub mean_ms: f64,
    /// Minimum, ms.
    pub min_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
    /// Trials that produced a non-timeout result.
    pub answered: u32,
}

/// T-ping — the sample single-hop ping of Section III.B.3.
#[derive(Debug, Clone, Serialize)]
pub struct TpingRow {
    /// Round-trip time, ms.
    pub rtt_ms: f64,
    /// LQI forward/backward.
    pub lqi_fwd: u8,
    /// LQI backward.
    pub lqi_bwd: u8,
    /// RSSI forward/backward.
    pub rssi_fwd: i8,
    /// RSSI backward.
    pub rssi_bwd: i8,
    /// Queue occupancy forward/backward.
    pub queue_fwd: u8,
    /// Queue backward.
    pub queue_bwd: u8,
    /// Power level at the prober.
    pub power: u8,
    /// Channel at the prober.
    pub channel: u8,
}

/// T-pad — the link-quality padding budget.
#[derive(Debug, Clone, Serialize)]
pub struct TpadRow {
    /// Probe payload bytes.
    pub probe_payload: usize,
    /// Padding bytes per hop.
    pub bytes_per_hop: usize,
    /// Analytic maximum hops before padding exhausts.
    pub analytic_max_hops: usize,
    /// Hops the path actually had.
    pub path_hops: usize,
    /// Hop-quality entries observed at the prober.
    pub observed_entries: usize,
}

/// T-foot — command image footprints.
#[derive(Debug, Clone, Serialize)]
pub struct TfootRow {
    /// Component name.
    pub component: String,
    /// Flash bytes.
    pub flash_bytes: u32,
    /// Static RAM bytes.
    pub ram_bytes: u32,
}

/// T-ovh1 — one-hop command overhead.
#[derive(Debug, Clone, Serialize)]
pub struct TovhRow {
    /// Command name.
    pub command: String,
    /// Data packets on the air.
    pub data_packets: u64,
    /// Link-layer acks on top.
    pub acks: u64,
}

/// Generic ablation row: `(arm, metric, value)`.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which design variant.
    pub arm: String,
    /// What was measured.
    pub metric: String,
    /// The measurement.
    pub value: f64,
}

/// One figure's golden determinism digest (the CI regression gate
/// compares these against `goldens/figure_digests.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DigestRow {
    /// Which figure the digest covers (`fig5`, `fig6`, `fig7`).
    pub figure: String,
    /// FNV-1a 64 over the figure's serialized rows (stable across
    /// platforms and Rust versions, unlike `DefaultHasher`).
    pub digest: String,
}

/// One probe round of the `figures --dynamics` degradation soak.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicsSoakRow {
    /// Virtual time of the round's traceroute issue, ms.
    pub t_ms: f64,
    /// Whether the traceroute reached the far end of the corridor.
    pub trace_reached: bool,
    /// Whether the injected hop's probe report came back this round.
    pub hop_seen: bool,
    /// Forward LQI on the injected hop (0 when `hop_seen` is false).
    pub hop_lqi: u8,
    /// Forward RSSI on the injected hop (0 when `hop_seen` is false).
    pub hop_rssi: i8,
    /// Whether the end-to-end ping got at least one reply.
    pub ping_ok: bool,
    /// Cumulative `net.neighbor_expired` at the end of the round.
    pub evictions: u64,
    /// Cumulative `net.neighbor_blacklisted` at the end of the round.
    pub blacklists: u64,
}

/// Outcome of the degradation-ramp soak: the acceptance story is
/// `detect_ms < ping_fail_ms < recover_ms` — traceroute pinpoints the
/// weakening hop *before* the end-to-end path dies, and route/neighbor
/// repair brings the path back after the obstacle clears.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicsSoakReport {
    /// Per-round observations.
    pub rounds: Vec<DynamicsSoakRow>,
    /// First round (virtual ms) where the injected hop showed degraded
    /// RSSI/loss while the end-to-end ping still succeeded. -1 if never.
    pub detect_ms: f64,
    /// First round (virtual ms) where the end-to-end ping failed.
    /// -1 if never.
    pub ping_fail_ms: f64,
    /// First round after the repair where the ping succeeded again.
    /// -1 if never.
    pub recover_ms: f64,
    /// Total stale-neighbor evictions over the soak.
    pub evictions: u64,
    /// Total degradation blacklistings over the soak.
    pub blacklists: u64,
    /// `dyn.*` mutations visible in the flight-recorder trace.
    pub dyn_trace_events: u64,
    /// Counter digest of the whole run (replay determinism handle).
    pub digest: String,
    /// Runtime invariant violations observed by the kernel auditor
    /// (`lv_kernel::audit`) over the soak. Must be zero; the nightly
    /// gate fails otherwise.
    pub audit_violations: u64,
}

/// One scenario of the `figures --diagnosis` seeded-fault sweep,
/// scored against its ground-truth labels.
#[derive(Debug, Clone, Serialize)]
pub struct DiagnosisSweepRow {
    /// Scenario name (`ramp-mid`, `ramp-near`, `noise-burst`, `churn`,
    /// `quiet`).
    pub scenario: String,
    /// Ground-truth fault labels seeded into the scenario.
    pub labels: u64,
    /// Labels with at least one matching episode (recall numerator).
    pub labels_detected: u64,
    /// Diagnosis episodes the engine opened.
    pub episodes: u64,
    /// Episodes that match a seeded label in scope and window.
    pub true_positives: u64,
    /// Episodes matching no label (spurious alarms).
    pub false_positives: u64,
    /// Episodes whose ladder localized a link.
    pub localized: u64,
    /// Fraction of episodes that were true positives (1.0 when the
    /// engine stayed silent).
    pub precision: f64,
    /// Fraction of labels detected (1.0 when nothing was seeded).
    pub recall: f64,
    /// Virtual time (ms) the first matching episode opened; -1 if none.
    pub first_detect_ms: f64,
    /// Virtual time (ms) the end-to-end measurement ping first failed
    /// after fault onset; -1 if it never failed.
    pub ping_fail_ms: f64,
    /// Mean detector latency (first drift → alarm) over matching
    /// episodes, ms; -1 when there were none.
    pub mean_detect_latency_ms: f64,
}

/// Outcome of the whole seeded-fault diagnosis sweep. The nightly gate
/// requires `precision >= 0.9`, `recall >= 0.8`, and — for the link-ramp
/// scenarios — detection strictly before the end-to-end ping died.
#[derive(Debug, Clone, Serialize)]
pub struct DiagnosisSweepReport {
    /// Per-scenario scores.
    pub rows: Vec<DiagnosisSweepRow>,
    /// Micro-averaged precision across all scenarios.
    pub precision: f64,
    /// Micro-averaged recall across all scenarios.
    pub recall: f64,
    /// FNV-1a digest over the serialized rows (replay determinism
    /// handle for the CI gate).
    pub digest: String,
}

/// Pretty-print any serializable row set as indented JSON lines.
pub fn to_json_lines<T: Serialize>(rows: &[T]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("rows serialize"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize() {
        let rows = vec![
            Fig5Row {
                hop: 1,
                delay_ms: 312.0,
            },
            Fig5Row {
                hop: 2,
                delay_ms: 711.5,
            },
        ];
        let s = to_json_lines(&rows);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\"hop\":1"));
    }
}

/// Substrate validation — one distance point of the link characterization.
#[derive(Debug, Clone, Serialize)]
pub struct LinkCharRow {
    /// Transmitter–receiver distance, meters.
    pub distance_m: f64,
    /// Packet reception ratio over the trial batch.
    pub prr: f64,
    /// Mean RSSI register value of received frames.
    pub mean_rssi: f64,
    /// Mean LQI of received frames.
    pub mean_lqi: f64,
}

// ---------------------------------------------------------------------
// Multi-trial aggregate rows (produced through `runner::TrialRunner`)
// ---------------------------------------------------------------------

use crate::stats::AggregateStats;

/// Fig. 5 aggregate — per-hop traceroute response delay across trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig5AggRow {
    /// 1-based hop index along the 8-hop path.
    pub hop: u8,
    /// Trials in the run (hops missing in a trial contribute no
    /// sample, so `delay_ms.n` can be smaller).
    pub trials: u64,
    /// Response-delay statistics, ms.
    pub delay_ms: AggregateStats,
}

/// Fig. 6 aggregate — per-hop RSSI at two power levels across trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig6AggRow {
    /// 1-based hop index.
    pub hop: u8,
    /// Trials in the run.
    pub trials: u64,
    /// Forward-link RSSI at power level 10.
    pub fwd_p10: AggregateStats,
    /// Backward-link RSSI at power level 10.
    pub bwd_p10: AggregateStats,
    /// Forward-link RSSI at power level 25.
    pub fwd_p25: AggregateStats,
    /// Backward-link RSSI at power level 25.
    pub bwd_p25: AggregateStats,
}

/// Fig. 7 aggregate — traceroute overhead vs path length across trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7AggRow {
    /// Path length in hops.
    pub hops: u8,
    /// Trials in the run.
    pub trials: u64,
    /// Control (data-plane) packet count statistics.
    pub control_packets: AggregateStats,
    /// Link-layer acknowledgement count statistics.
    pub acks: AggregateStats,
}

/// Link-characterization aggregate — one distance point across trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkCharAggRow {
    /// Transmitter–receiver distance, meters.
    pub distance_m: f64,
    /// Trials in the run.
    pub trials: u64,
    /// Packet-reception-ratio statistics.
    pub prr: AggregateStats,
    /// Mean-RSSI statistics (received frames only; trials with no
    /// receptions contribute no sample).
    pub mean_rssi: AggregateStats,
    /// Mean-LQI statistics (same sampling rule as `mean_rssi`).
    pub mean_lqi: AggregateStats,
}

/// Failure-injection sweep — diagnosis outcome under one failure plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailureSweepRow {
    /// Failure mode label (see `runner::FailureMode::label`).
    pub mode: String,
    /// Fraction of trials that received the fault.
    pub fraction: f64,
    /// Trials in the run.
    pub trials: u64,
    /// Trials actually faulted.
    pub faulted: u64,
    /// Probability the traceroute reached its destination (per-trial
    /// 0/1 samples).
    pub reached: AggregateStats,
    /// Hops the trace covered before stopping.
    pub hops_covered: AggregateStats,
    /// Response delay of the last hop report that did arrive, ms.
    pub last_report_ms: AggregateStats,
}

/// Scaling sweep — one timed run of the beacon + traceroute workload.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRow {
    /// Deployment size (grid nodes).
    pub nodes: usize,
    /// Whether the medium's reachability cache was enabled.
    pub cached: bool,
    /// Wall-clock time for the whole run (build + warmup + workload).
    pub wall_ms: f64,
    /// Events the loop dispatched.
    pub events: u64,
    /// Dispatch throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Hash over the run's global counters — equal across the cached
    /// and brute-force runs of the same size, or the sweep aborts.
    pub digest: String,
}
