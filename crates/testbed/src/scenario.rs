//! One-call scenario construction.
//!
//! Wraps the boilerplate every experiment and example shares: generate
//! the topology, build the network, install routing protocols and the
//! LiteView suite, warm up the beacons, and attach a workstation.

use crate::topology::Topology;
use liteview::{install_suite, Workstation};
use lv_kernel::{Network, NetworkConfig};
use lv_net::packet::Port;
use lv_net::routing::{CollectionTree, Flooding, Geographic};
use lv_radio::propagation::PropagationConfig;
use lv_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which routing protocols to install on every node.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Protocols {
    /// Greedy geographic forwarding on port 10 (the paper's example).
    pub geographic: bool,
    /// Flooding on port 11.
    pub flooding: bool,
    /// Collection tree on port 12 (node 0 is the root).
    pub tree: bool,
}

impl Default for Protocols {
    fn default() -> Self {
        Protocols {
            geographic: true,
            flooding: false,
            tree: false,
        }
    }
}

/// Everything needed to build a scenario deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The deployment layout.
    pub topology: Topology,
    /// Root seed (drives propagation, MAC backoffs, jitters …).
    pub seed: u64,
    /// Propagation parameters.
    #[serde(default = "PropagationConfig::default")]
    pub propagation: PropagationConfig,
    /// Protocols installed on every node.
    #[serde(default)]
    pub protocols: Protocols,
    /// Beacon warm-up before the experiment starts.
    pub warmup: SimDuration,
    /// The workstation's bridge node.
    pub bridge: u16,
}

impl ScenarioConfig {
    /// A sensible default around a given topology.
    pub fn new(topology: Topology, seed: u64) -> Self {
        ScenarioConfig {
            topology,
            seed,
            propagation: PropagationConfig::default(),
            protocols: Protocols::default(),
            warmup: SimDuration::from_secs(25),
            bridge: 0,
        }
    }
}

/// A fully built scenario: network + attached workstation.
///
/// ```no_run
/// use liteview::CommandRequest;
/// use lv_testbed::{Scenario, ScenarioConfig, Topology};
/// use lv_net::packet::Port;
///
/// let mut s = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), 42));
/// s.ws.cd(&s.net, "192.168.0.1").unwrap();
/// let exec = s
///     .ws
///     .exec(&mut s.net, CommandRequest::traceroute(8, 32, Port::GEOGRAPHIC))
///     .unwrap();
/// println!("{:?}", exec.result);
/// ```
pub struct Scenario {
    /// The running deployment.
    pub net: Network,
    /// The management workstation.
    pub ws: Workstation,
    /// The config it was built from.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Build and warm up.
    pub fn build(config: ScenarioConfig) -> Scenario {
        Self::build_with_network_config(config, NetworkConfig::default())
    }

    /// Build with a custom kernel/network config.
    pub fn build_with_network_config(
        config: ScenarioConfig,
        net_config: NetworkConfig,
    ) -> Scenario {
        let medium = config.topology.medium(config.propagation, config.seed);
        let mut net = Network::with_config(medium, config.seed, net_config);
        for i in 0..net.node_count() as u16 {
            if config.protocols.geographic {
                net.install_router(i, Box::new(Geographic::new(Port::GEOGRAPHIC)))
                    .expect("port 10 free");
            }
            if config.protocols.flooding {
                net.install_router(i, Box::new(Flooding::new(Port::FLOODING)))
                    .expect("port 11 free");
            }
            if config.protocols.tree {
                net.install_router(i, Box::new(CollectionTree::new(Port::TREE, i == 0)))
                    .expect("port 12 free");
            }
        }
        install_suite(&mut net);
        net.run_for(config.warmup);
        let ws = Workstation::install(&mut net, config.bridge);
        Scenario { net, ws, config }
    }

    /// Reset the global packet counters (done before a measured phase so
    /// warm-up beacons don't pollute overhead counts).
    pub fn reset_counters(&mut self) {
        self.net.counters.reset();
    }

    /// Snapshot the network-wide flight recorder: per-node stats, the
    /// retained event timeline, and every command executed so far.
    /// (The recorder is armed automatically by [`Workstation::install`]
    /// during [`Scenario::build`].)
    pub fn report(&self) -> liteview::ObservabilityReport {
        self.ws.report(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteview::{CommandRequest, CommandResult};

    #[test]
    fn builds_and_pings() {
        let cfg = ScenarioConfig::new(Topology::Line { n: 2, spacing: 5.0 }, 5);
        let mut s = Scenario::build(cfg);
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        let exec =
            s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
                .unwrap();
        let CommandResult::Ping(p) = exec.result else {
            panic!()
        };
        assert_eq!(p.received, 1);
    }

    #[test]
    fn built_scenario_has_armed_flight_recorder() {
        use lv_sim::TraceLevel;
        let cfg = ScenarioConfig::new(Topology::Line { n: 2, spacing: 5.0 }, 6);
        let mut s = Scenario::build(cfg);
        assert!(s.net.trace.accepts(TraceLevel::Packet));
        s.ws.cd(&s.net, "192.168.0.1").unwrap();
        s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
        let report = s.report();
        assert_eq!(report.executions.len(), 1);
        assert!(!report.executions[0].timeline.is_empty());
        assert!(liteview::ObservabilityReport::from_json(&report.to_json()).is_some());
    }

    #[test]
    fn config_serializes() {
        let cfg = ScenarioConfig::new(Topology::eight_hop_corridor(), 7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.topology.node_count(), 9);
    }

    #[test]
    fn all_three_protocols_coexist() {
        let cfg = ScenarioConfig {
            protocols: Protocols {
                geographic: true,
                flooding: true,
                tree: true,
            },
            warmup: SimDuration::from_secs(5),
            ..ScenarioConfig::new(Topology::Line { n: 3, spacing: 5.0 }, 9)
        };
        let s = Scenario::build(cfg);
        let names = s.net.node(1).stack.router_list();
        assert_eq!(names.len(), 3);
    }
}
