//! ASCII deployment maps.
//!
//! A terminal sketch of the deployment — node positions scaled onto a
//! character grid, dead nodes marked, plus the symmetric connectivity
//! list at the current power settings. The shell's `map` verb prints
//! this; it is the "where physically is everything" companion to the
//! neighbor table's "who can hear whom".

use crate::topology::adjacency;
use lv_kernel::Network;

/// Render the deployment as an ASCII grid plus a link list.
pub fn render_map(net: &Network, cols: usize, rows: usize) -> String {
    let n = net.node_count() as u16;
    let cols = cols.max(16);
    let rows = rows.max(8);
    // Bounding box.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..n {
        let p = net.medium.position(i);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![b'.'; cols]; rows];
    let mut legend = Vec::new();
    for i in 0..n {
        let p = net.medium.position(i);
        let cx = (((p.x - min_x) / span_x) * (cols - 1) as f64).round() as usize;
        let cy = (((p.y - min_y) / span_y) * (rows - 1) as f64).round() as usize;
        let node = net.node(i);
        let glyph = if !node.alive || net.medium.is_dead(i) {
            b'x'
        } else if i < 10 {
            b'0' + i as u8
        } else {
            b'A' + ((i - 10) % 26) as u8
        };
        grid[rows - 1 - cy][cx] = glyph; // y grows upward
        legend.push(format!(
            "  {} = {}{} at ({:.1}, {:.1})",
            glyph as char,
            node.name,
            if node.alive { "" } else { " [DEAD]" },
            p.x,
            p.y
        ));
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&legend.join("\n"));
    out.push('\n');
    // Symmetric connectivity at each node's current power (approximate:
    // uses node 0's power for the sweep if uniform, else per-pair min).
    let adj = adjacency(&net.medium, net.node(0).power);
    let mut links = Vec::new();
    for (i, row) in adj.iter().enumerate() {
        for (j, &connected) in row.iter().enumerate().skip(i + 1) {
            if connected {
                links.push(format!("{i}-{j}"));
            }
        }
    }
    out.push_str("links: ");
    out.push_str(&if links.is_empty() {
        "(none)".to_owned()
    } else {
        links.join(" ")
    });
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use crate::topology::Topology;

    #[test]
    fn map_shows_every_node_and_links() {
        let s = Scenario::build(ScenarioConfig::new(
            Topology::Corridor {
                n: 4,
                spacing: 5.0,
                wall_loss_db: 40.0,
            },
            3,
        ));
        let map = render_map(&s.net, 40, 8);
        for i in 0..4 {
            assert!(map.contains(&format!("192.168.0.{}", i + 1)), "{map}");
        }
        // Corridor: only adjacent links.
        assert!(map.contains("links: 0-1 1-2 2-3"), "{map}");
        // Glyphs 0..3 appear on the grid.
        for g in ['0', '1', '2', '3'] {
            assert!(map.contains(g), "missing {g} in\n{map}");
        }
    }

    #[test]
    fn dead_nodes_marked() {
        let mut s = Scenario::build(ScenarioConfig::new(
            Topology::Line { n: 3, spacing: 5.0 },
            3,
        ));
        crate::failures::kill_node(&mut s.net, 1);
        let map = render_map(&s.net, 40, 8);
        assert!(map.contains('x'), "{map}");
        assert!(map.contains("[DEAD]"), "{map}");
    }

    #[test]
    fn single_point_topologies_do_not_panic() {
        let s = Scenario::build(ScenarioConfig::new(
            Topology::Line { n: 2, spacing: 0.0 },
            3,
        ));
        let map = render_map(&s.net, 16, 8);
        assert!(map.contains("192.168.0.1"));
    }
}
