//! Deployment-phase failure injection.
//!
//! LiteView exists because deployments break in characteristic ways —
//! dead nodes, broken links, asymmetric links, enclosure attenuation,
//! badly placed antennas. These helpers inject each of those into a
//! running [`Network`] so examples and tests can demonstrate the
//! diagnosis workflow.

use lv_kernel::Network;
use lv_radio::medium::LinkOverride;
use lv_radio::units::Position;

/// Power a node off (it stops transmitting, receiving, and beaconing).
pub fn kill_node(net: &mut Network, id: u16) {
    net.set_node_alive(id, false);
    net.medium.set_dead(id, true);
}

/// Power a node back on.
pub fn revive_node(net: &mut Network, id: u16) {
    net.set_node_alive(id, true);
    net.medium.set_dead(id, false);
}

/// Hard-break both directions of a link (e.g. a metal cabinet moved
/// between two nodes).
pub fn break_link(net: &mut Network, a: u16, b: u16) {
    let blocked = LinkOverride {
        blocked: true,
        ..Default::default()
    };
    net.medium.set_override(a, b, blocked);
    net.medium.set_override(b, a, blocked);
}

/// Break only the `from → to` direction — the classic asymmetric link
/// ("likely to become traffic bottlenecks", per the abstract).
pub fn break_link_oneway(net: &mut Network, from: u16, to: u16) {
    net.medium.set_override(
        from,
        to,
        LinkOverride {
            blocked: true,
            ..Default::default()
        },
    );
}

/// Attenuate a directed link by `loss_db` (antenna turned away, node
/// boxed in an enclosure).
pub fn attenuate_link(net: &mut Network, from: u16, to: u16, loss_db: f64) {
    net.medium.set_override(
        from,
        to,
        LinkOverride {
            extra_loss_db: loss_db,
            blocked: false,
        },
    );
}

/// Repair every override on the link (both directions).
pub fn repair_link(net: &mut Network, a: u16, b: u16) {
    net.medium.clear_override(a, b);
    net.medium.clear_override(b, a);
}

/// Physically move a node (the deployment-tuning action the paper's
/// introduction motivates: "adding or removing nodes, or adjusting the
/// directions of antennas").
pub fn move_node(net: &mut Network, id: u16, to: Position) {
    net.medium.set_position(id, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_radio::propagation::PropagationConfig;
    use lv_radio::{Medium, PowerLevel};
    use lv_sim::SimDuration;

    fn net2() -> Network {
        let medium = Medium::new(
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            PropagationConfig::default(),
            3,
        );
        Network::new(medium, 3)
    }

    #[test]
    fn kill_and_revive() {
        let mut net = net2();
        kill_node(&mut net, 1);
        assert!(!net.node(1).alive);
        assert!(net.medium.is_dead(1));
        revive_node(&mut net, 1);
        assert!(net.node(1).alive);
        assert!(!net.medium.is_dead(1));
    }

    #[test]
    fn break_and_repair_link() {
        let mut net = net2();
        assert!(net.medium.hears(0, 1, PowerLevel::MAX));
        break_link(&mut net, 0, 1);
        assert!(!net.medium.hears(0, 1, PowerLevel::MAX));
        assert!(!net.medium.hears(1, 0, PowerLevel::MAX));
        repair_link(&mut net, 0, 1);
        assert!(net.medium.hears(0, 1, PowerLevel::MAX));
    }

    #[test]
    fn oneway_break_is_asymmetric() {
        let mut net = net2();
        break_link_oneway(&mut net, 0, 1);
        assert!(!net.medium.hears(0, 1, PowerLevel::MAX));
        assert!(net.medium.hears(1, 0, PowerLevel::MAX));
    }

    #[test]
    fn attenuation_reduces_power() {
        let mut net = net2();
        let before = net.medium.mean_rx_power(0, 1, PowerLevel::MAX).unwrap();
        attenuate_link(&mut net, 0, 1, 15.0);
        let after = net.medium.mean_rx_power(0, 1, PowerLevel::MAX).unwrap();
        assert!((before.0 - after.0 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn dead_node_stops_beaconing() {
        let mut net = net2();
        net.run_for(SimDuration::from_secs(5));
        let before = net.counters.get("tx.beacon");
        kill_node(&mut net, 1);
        net.run_for(SimDuration::from_secs(10));
        let after = net.counters.get("tx.beacon");
        // Only node 0 beacons now: the rate roughly halves.
        let delta = after - before;
        assert!(delta <= 7, "beacons after kill: {delta}");
    }

    #[test]
    fn moved_node_changes_geometry() {
        let mut net = net2();
        move_node(&mut net, 1, Position::new(300.0, 0.0));
        assert!(!net.medium.hears(0, 1, PowerLevel::MAX));
    }
}
