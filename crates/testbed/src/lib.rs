#![warn(missing_docs)]

//! # lv-testbed — topologies, scenarios, failures, experiment drivers
//!
//! The paper's evaluation ran on "a testbed composed of thirty MicaZ
//! nodes" with "a testbed of eight hops in diameter". This crate builds
//! the simulated equivalents:
//!
//! * [`topology`] — deterministic generators: line, grid, random disk,
//!   and the *corridor* layout (adjacent line-of-sight only) that pins
//!   an exact hop count the way the authors' 8-hop corridor deployment
//!   did.
//! * [`scenario`] — one-call construction of a ready network: topology +
//!   routers + LiteView suite + workstation + beacon warm-up.
//! * [`failures`] — deployment-phase failure injection: dead nodes,
//!   broken and asymmetric links, attenuation, node moves.
//! * [`dynamics`] — the time-varying half of failure injection: seeded
//!   schedules of link-degradation ramps, interference bursts, node
//!   churn, and reconfiguration, replayed bit-identically per seed.
//! * [`experiments`] — the drivers that regenerate every figure and
//!   in-text number of Section V (see `DESIGN.md` §4 for the index).
//! * [`runner`] — the parallel multi-trial engine: deterministic seed
//!   splitting, a scoped worker pool, and failure-injection sweeps.
//! * [`stats`] — mean / stddev / 95% CI aggregation of trial results.
//! * [`results`] — serializable row types the `figures` harness prints.
//! * [`map`] — ASCII deployment maps for the interactive shell.

pub mod diagnosis;
pub mod dynamics;
pub mod experiments;
pub mod failures;
pub mod map;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use diagnosis::{diagnosis_sweep, fault_corpus, DiagnosisScenario, FaultLabel, FaultScope};
pub use dynamics::{DynamicsEvent, DynamicsPlan};
pub use runner::{FailureMode, FailurePlan, TrialCtx, TrialRunner};
pub use scenario::{Scenario, ScenarioConfig};
pub use stats::AggregateStats;
pub use topology::Topology;
