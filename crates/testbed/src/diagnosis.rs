//! The seeded-fault corpus for scoring the closed-loop diagnosis
//! engine (`figures --diagnosis`, `DESIGN.md` §14).
//!
//! Each [`DiagnosisScenario`] pairs a [`DynamicsPlan`] fault injection
//! with ground-truth [`FaultLabel`]s, so the engine's episodes can be
//! scored as true/false positives. The sweep replays every scenario on
//! the paper's 8-hop corridor with the engine armed, collects the
//! episode log, and reports per-scenario precision, recall, and
//! time-to-detect — all a pure function of the seed, so the nightly
//! gate can demand a byte-identical report across runs.

use crate::dynamics::DynamicsPlan;
use crate::experiments::fnv1a64;
use crate::results::{to_json_lines, DiagnosisSweepReport, DiagnosisSweepRow};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::topology::Topology;
use liteview::{CommandRequest, CommandResult, DiagnosisConfig, DiagnosisReport};
use lv_net::packet::Port;
use lv_radio::Channel;
use lv_sim::{SimDuration, SimTime};

/// What part of the deployment a seeded fault touches — the ground
/// truth an episode is scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// A specific undirected link (order-insensitive).
    Link(u16, u16),
    /// Any link touching this node (churn kills every adjacency).
    Node(u16),
    /// Channel-wide interference: any link counts as a correct blame.
    AnyLink,
}

impl FaultScope {
    /// Does an episode blaming `tx → rx` fall inside this scope?
    pub fn matches(&self, tx: u16, rx: u16) -> bool {
        match *self {
            FaultScope::Link(a, b) => (tx.min(rx), tx.max(rx)) == (a.min(b), a.max(b)),
            FaultScope::Node(n) => tx == n || rx == n,
            FaultScope::AnyLink => true,
        }
    }
}

/// One seeded fault: where it hits, when it starts, and (optionally)
/// when the injection clears.
#[derive(Debug, Clone)]
pub struct FaultLabel {
    /// The blamed region of the deployment.
    pub scope: FaultScope,
    /// Virtual time the first mutation fires.
    pub onset: SimTime,
    /// Virtual time the injection is removed (`None` = runs to the
    /// horizon).
    pub cleared: Option<SimTime>,
    /// Human label for the fault class (`ramp`, `noise`, `churn`).
    pub kind: &'static str,
}

/// A named fault-injection run: the plan, its ground truth, and how
/// long to watch.
#[derive(Debug, Clone)]
pub struct DiagnosisScenario {
    /// Corpus name (stable; keys the sweep rows).
    pub name: &'static str,
    /// The seeded mutations.
    pub plan: DynamicsPlan,
    /// Ground-truth labels for scoring.
    pub labels: Vec<FaultLabel>,
    /// Virtual end of the watch window.
    pub horizon: SimTime,
}

/// Episodes opening this long after a fault clears still count as
/// detections of it (silence alarms trail the injection by design).
const CLEAR_SLACK: SimDuration = SimDuration::from_secs(30);

/// The far end of the corridor (the measurement ping's target).
const FAR_NODE: u16 = 8;

/// The labeled corpus, anchored at `t0` (the scenario build's warmed-up
/// "now"): two RADIUS-style link ramps at different depths, a
/// channel-wide interference burst, a node power-cycle, and a quiet
/// control run that seeds nothing (any alarm there is a false
/// positive).
pub fn fault_corpus(t0: SimTime) -> Vec<DiagnosisScenario> {
    let onset = t0 + SimDuration::from_secs(40);
    let ramp = |a: u16, b: u16, name: &'static str| DiagnosisScenario {
        name,
        plan: DynamicsPlan::new().link_ramp_symmetric(
            a,
            b,
            onset,
            SimDuration::from_secs(6),
            12,
            5.0,
        ),
        labels: vec![FaultLabel {
            scope: FaultScope::Link(a, b),
            onset,
            cleared: None,
            kind: "ramp",
        }],
        horizon: t0 + SimDuration::from_secs(150),
    };
    vec![
        ramp(4, 5, "ramp-mid"),
        ramp(1, 2, "ramp-near"),
        DiagnosisScenario {
            name: "noise-burst",
            plan: DynamicsPlan::new().noise_burst(
                Channel::DEFAULT,
                onset,
                SimDuration::from_secs(30),
                30.0,
            ),
            labels: vec![FaultLabel {
                scope: FaultScope::AnyLink,
                onset,
                cleared: Some(onset + SimDuration::from_secs(30)),
                kind: "noise",
            }],
            horizon: t0 + SimDuration::from_secs(110),
        },
        DiagnosisScenario {
            name: "churn",
            plan: DynamicsPlan::new().node_churn(
                3,
                onset,
                Some(onset + SimDuration::from_secs(40)),
            ),
            labels: vec![FaultLabel {
                scope: FaultScope::Node(3),
                onset,
                cleared: Some(onset + SimDuration::from_secs(40)),
                kind: "churn",
            }],
            horizon: t0 + SimDuration::from_secs(110),
        },
        DiagnosisScenario {
            name: "quiet",
            plan: DynamicsPlan::new(),
            labels: Vec::new(),
            horizon: t0 + SimDuration::from_secs(80),
        },
    ]
}

/// Does `episode` credit `label` — right scope, and opened inside the
/// fault window (plus [`CLEAR_SLACK`] for trailing silence alarms)?
fn episode_matches(episode: &DiagnosisReport, label: &FaultLabel) -> bool {
    if !label.scope.matches(episode.suspect_tx, episode.suspect_rx) {
        return false;
    }
    if episode.opened_at < label.onset {
        return false;
    }
    match label.cleared {
        Some(cleared) => episode.opened_at <= cleared + CLEAR_SLACK,
        None => true,
    }
}

/// Replay one scenario with the engine armed and score its episodes.
fn run_scenario(seed: u64, sc: &DiagnosisScenario) -> DiagnosisSweepRow {
    let cfg = ScenarioConfig::new(Topology::eight_hop_corridor(), seed);
    let mut s = Scenario::build(cfg);
    s.ws.cd(&s.net, "192.168.0.1").expect("bridge exists");
    s.ws.arm_diagnosis(&mut s.net, DiagnosisConfig::default());
    sc.plan.schedule(&mut s.net);

    let first_onset = sc.labels.iter().map(|l| l.onset).min();
    let mut ping_fail: Option<f64> = None;
    while s.net.now() < sc.horizon {
        let t_ms = s.net.now().as_millis_f64();
        let ping_exec = s.ws.exec(
            &mut s.net,
            CommandRequest::ping(FAR_NODE, 1, 32, Some(Port::GEOGRAPHIC)),
        );
        let ping_ok = matches!(
            ping_exec.map(|e| e.result),
            Ok(CommandResult::Ping(p)) if p.received > 0
        );
        if ping_fail.is_none() && !ping_ok && first_onset.is_some_and(|onset| s.net.now() >= onset)
        {
            ping_fail = Some(t_ms);
        }
        s.ws.poll_diagnosis(&mut s.net);
        s.net.run_for(SimDuration::from_secs(2));
    }

    let log = s.ws.diagnosis_log();
    let mut true_positives = 0u64;
    let mut localized = 0u64;
    let mut first_detect: Option<f64> = None;
    let mut latency_sum = 0.0;
    for e in &log.episodes {
        if e.verdict == "localized" {
            localized += 1;
        }
        if sc.labels.iter().any(|l| episode_matches(e, l)) {
            true_positives += 1;
            latency_sum += e.detect_latency_ms;
            let at = e.opened_at.as_millis_f64();
            if first_detect.is_none_or(|f| at < f) {
                first_detect = Some(at);
            }
        }
    }
    let labels_detected = sc
        .labels
        .iter()
        .filter(|l| log.episodes.iter().any(|e| episode_matches(e, l)))
        .count() as u64;
    let episodes = log.episodes.len() as u64;
    DiagnosisSweepRow {
        scenario: sc.name.to_owned(),
        labels: sc.labels.len() as u64,
        labels_detected,
        episodes,
        true_positives,
        false_positives: episodes - true_positives,
        localized,
        precision: if episodes == 0 {
            1.0
        } else {
            true_positives as f64 / episodes as f64
        },
        recall: if sc.labels.is_empty() {
            1.0
        } else {
            labels_detected as f64 / sc.labels.len() as f64
        },
        first_detect_ms: first_detect.unwrap_or(-1.0),
        ping_fail_ms: ping_fail.unwrap_or(-1.0),
        mean_detect_latency_ms: if true_positives == 0 {
            -1.0
        } else {
            latency_sum / true_positives as f64
        },
    }
}

/// Run the whole corpus and score it. Pure function of the seed: two
/// calls with the same seed must serialize byte-identically, which
/// `figures --diagnosis` asserts before gating on the scores.
pub fn diagnosis_sweep(seed: u64) -> DiagnosisSweepReport {
    // Probe the warmed-up clock once so every scenario anchors its
    // timeline the same way.
    let t0 = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), seed))
        .net
        .now();
    let rows: Vec<DiagnosisSweepRow> = fault_corpus(t0)
        .iter()
        .map(|sc| run_scenario(seed, sc))
        .collect();
    let (tp, eps): (u64, u64) = rows
        .iter()
        .fold((0, 0), |(t, e), r| (t + r.true_positives, e + r.episodes));
    let (det, labels): (u64, u64) = rows
        .iter()
        .fold((0, 0), |(d, l), r| (d + r.labels_detected, l + r.labels));
    let digest = format!("{:016x}", fnv1a64(to_json_lines(&rows).as_bytes()));
    DiagnosisSweepReport {
        precision: if eps == 0 {
            1.0
        } else {
            tp as f64 / eps as f64
        },
        recall: if labels == 0 {
            1.0
        } else {
            det as f64 / labels as f64
        },
        digest,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_what_they_should() {
        assert!(FaultScope::Link(4, 5).matches(5, 4));
        assert!(!FaultScope::Link(4, 5).matches(5, 6));
        assert!(FaultScope::Node(3).matches(3, 4));
        assert!(FaultScope::Node(3).matches(2, 3));
        assert!(!FaultScope::Node(3).matches(4, 5));
        assert!(FaultScope::AnyLink.matches(7, 1));
    }

    #[test]
    fn corpus_covers_every_fault_class_plus_a_control() {
        let corpus = fault_corpus(SimTime::from_secs(10));
        let names: Vec<&str> = corpus.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["ramp-mid", "ramp-near", "noise-burst", "churn", "quiet"]
        );
        let quiet = corpus.last().unwrap();
        assert!(quiet.plan.is_empty() && quiet.labels.is_empty());
        for sc in &corpus[..4] {
            assert!(!sc.plan.is_empty());
            assert!(!sc.labels.is_empty());
        }
    }

    /// The corpus's single integration smoke: the mid-corridor ramp
    /// must be caught (recall 1) without spurious blame (precision 1)
    /// and strictly before the end-to-end ping dies — the paper's
    /// detect-before-fail story, now closed-loop. Kept to one scenario
    /// so `cargo test` stays fast; the full sweep runs in the nightly
    /// `figures --diagnosis` gate.
    #[test]
    fn ramp_is_detected_before_the_path_dies() {
        let t0 = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), 42))
            .net
            .now();
        let corpus = fault_corpus(t0);
        let row = run_scenario(42, &corpus[0]);
        assert_eq!(row.scenario, "ramp-mid");
        assert_eq!(row.recall, 1.0, "{row:?}");
        assert_eq!(row.precision, 1.0, "{row:?}");
        assert!(row.first_detect_ms >= 0.0, "{row:?}");
        assert!(row.ping_fail_ms >= 0.0, "ramp never killed ping: {row:?}");
        assert!(row.first_detect_ms < row.ping_fail_ms, "{row:?}");
    }
}
