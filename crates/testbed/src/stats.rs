//! Statistical aggregation of multi-trial experiment results.
//!
//! The paper reports single-run curves; reviewers (and our own
//! regression suite) want error bars. Every multi-trial driver reduces
//! its per-trial scalars to an [`AggregateStats`] — sample count, mean,
//! unbiased standard deviation, and the half-width of the normal 95%
//! confidence interval — computed by folding trial values **in trial
//! order** through [`lv_sim::Summary`], so the result is bit-identical
//! no matter how many worker threads produced the trials.

use lv_sim::Summary;
use serde::Serialize;

/// Aggregate statistics of one metric across trials.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AggregateStats {
    /// Number of trials that contributed a sample.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased (n−1) sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`1.96·s/√n`; zero for fewer than two samples).
    pub ci95: f64,
    /// Smallest per-trial value (NaN when `n == 0`).
    pub min: f64,
    /// Largest per-trial value (NaN when `n == 0`).
    pub max: f64,
}

impl AggregateStats {
    /// Reduce a finished [`Summary`].
    pub fn from_summary(s: &Summary) -> Self {
        AggregateStats {
            n: s.count(),
            mean: s.mean(),
            stddev: s.stddev(),
            ci95: s.ci95_half_width(),
            min: s.min().unwrap_or(f64::NAN),
            max: s.max().unwrap_or(f64::NAN),
        }
    }

    /// Aggregate a slice of per-trial values **in the given order**.
    ///
    /// Callers must pass values in trial order for the bit-exact
    /// reproducibility guarantee to hold.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        Self::from_summary(&s)
    }
}

/// Fold an iterator of per-trial values (in trial order) into
/// aggregate statistics. Convenience wrapper over
/// [`AggregateStats::from_values`].
pub fn aggregate(values: impl IntoIterator<Item = f64>) -> AggregateStats {
    let mut s = Summary::new();
    for v in values {
        s.push(v);
    }
    AggregateStats::from_summary(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_matches_hand_computation() {
        let a = aggregate([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.n, 4);
        assert!((a.mean - 2.5).abs() < 1e-12);
        // Sample stddev of 1..4 is sqrt(5/3).
        assert!((a.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((a.ci95 - 1.96 * a.stddev / 2.0).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let a = aggregate([]);
        assert_eq!(a.n, 0);
        assert_eq!(a.mean, 0.0);
        assert_eq!(a.ci95, 0.0);
        assert!(a.min.is_nan() && a.max.is_nan());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let a = aggregate([7.5]);
        assert_eq!(a.n, 1);
        assert_eq!(a.mean, 7.5);
        assert_eq!(a.stddev, 0.0);
        assert_eq!(a.ci95, 0.0);
    }

    #[test]
    fn order_identical_folds_are_bit_identical() {
        let xs: Vec<f64> = (0..32).map(|i| (i as f64).sqrt() * 0.3 + 1.0).collect();
        let a = AggregateStats::from_values(&xs);
        let b = AggregateStats::from_values(&xs);
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.stddev.to_bits(), b.stddev.to_bits());
        assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
    }
}
