//! Shape tests for every reproduced table/figure (DESIGN.md §4).
//!
//! Absolute values differ from the paper (simulated substrate), but the
//! qualitative claims — monotonicity, orderings, budgets, crossovers —
//! must hold. These are the assertions EXPERIMENTS.md cites.

use lv_testbed::experiments::*;

#[test]
fn fig5_delay_grows_with_hop_index() {
    let rows = fig5_traceroute_delay(42);
    assert_eq!(rows.len(), 8, "one report per hop");
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.hop as usize, i + 1);
    }
    // Monotone nondecreasing arrival times (the paper notes occasional
    // back-to-back arrivals — equality allowed, regression not).
    for w in rows.windows(2) {
        assert!(
            w[1].delay_ms >= w[0].delay_ms - 1e-9,
            "arrivals must not regress: {w:?}"
        );
    }
    // The whole command finishes in the sub-second regime.
    assert!(rows[7].delay_ms > rows[0].delay_ms * 3.0, "must grow");
    assert!(rows[7].delay_ms < 5_000.0);
}

#[test]
fn fig6_higher_power_means_higher_rssi() {
    let rows = fig6_rssi_vs_power(42);
    assert!(rows.len() >= 6, "most hops must report at both powers");
    let mut uplift = Vec::new();
    for r in &rows {
        assert!(
            r.fwd_p25 > r.fwd_p10,
            "hop {}: fwd p25 {} !> p10 {}",
            r.hop,
            r.fwd_p25,
            r.fwd_p10
        );
        assert!(r.bwd_p25 > r.bwd_p10, "hop {}: bwd", r.hop);
        uplift.push((r.fwd_p25 - r.fwd_p10) as f64);
    }
    // Level 25 ≈ -1.5 dBm vs level 10 ≈ -11.25 dBm: ~10 dB separation.
    let mean = uplift.iter().sum::<f64>() / uplift.len() as f64;
    assert!((6.0..14.0).contains(&mean), "mean uplift {mean:.1} dB");
    // Per-hop variation exists (shadowing): readings are not constant.
    let min = rows.iter().map(|r| r.fwd_p10).min().unwrap();
    let max = rows.iter().map(|r| r.fwd_p10).max().unwrap();
    assert!(max > min, "per-hop variation expected");
}

#[test]
fn fig7_overhead_near_linear_under_60_at_8_hops() {
    let rows = fig7_overhead(42);
    assert_eq!(rows.len(), 8);
    // Strictly increasing in path length.
    for w in rows.windows(2) {
        assert!(
            w[1].control_packets > w[0].control_packets,
            "overhead must grow: {w:?}"
        );
    }
    // One hop is cheap; eight hops stays in the tens (paper: < 50; our
    // strictly-linear return path adds a few).
    assert!(rows[0].control_packets <= 4, "{:?}", rows[0]);
    let at8 = rows[7].control_packets;
    assert!((30..=60).contains(&at8), "8-hop overhead = {at8}");
}

#[test]
fn tresp_every_command_answers_in_fixed_500ms_window() {
    let rows = text_response_delays(42, 5);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert_eq!(r.answered, r.trials, "{} timed out", r.command);
        assert!(
            (r.mean_ms - 500.0).abs() < 1e-6,
            "{}: mean {} ms",
            r.command,
            r.mean_ms
        );
        assert_eq!(r.min_ms, r.max_ms, "fixed window must not vary");
    }
}

#[test]
fn tpad_budget_is_24_hops() {
    let row = text_padding_budget(42);
    assert_eq!(row.analytic_max_hops, 24);
    assert_eq!(
        row.observed_entries, 24,
        "a 26-hop path must exhaust padding at exactly 24 entries"
    );
    assert!(row.path_hops > row.analytic_max_hops);
}

#[test]
fn ablation_ping_cheaper_but_budget_bound_traceroute_unbounded() {
    let rows = ablation_traceroute_vs_ping(42);
    let get = |arm: &str, metric: &str| {
        rows.iter()
            .find(|r| r.arm == arm && r.metric == metric)
            .map(|r| r.value)
            .unwrap_or_else(|| panic!("missing {arm}/{metric}"))
    };
    // Per invocation, multi-hop ping moves fewer packets than
    // traceroute at every length…
    for hops in [2, 4, 6, 8] {
        assert!(
            get(&format!("multihop-ping hops={hops}"), "data_packets")
                < get(&format!("traceroute hops={hops}"), "data_packets"),
        );
    }
    // …but traceroute's cost grows without a hop ceiling, while ping is
    // capped at 24 hops by the padding budget — the scalability claim
    // is about reach, not packet count.
    assert!(
        get("traceroute hops=8", "data_packets") > get("traceroute hops=2", "data_packets") * 3.0
    );
}

#[test]
fn ablation_backoff_reduces_mac_failures() {
    let rows = ablation_response_backoff(42, 8);
    let get = |arm: &str, metric: &str| {
        rows.iter()
            .find(|r| r.arm == arm && r.metric == metric)
            .map(|r| r.value)
            .unwrap()
    };
    // With random backoff all replies arrive; without it, the
    // simultaneous burst costs extra transmissions or losses.
    assert_eq!(get("random-backoff", "delivered"), 8.0);
    let cost_no = get("no-backoff", "data_packets") + 10.0 * get("no-backoff", "mac_failures")
        - get("no-backoff", "delivered");
    let cost_jitter = get("random-backoff", "data_packets")
        + 10.0 * get("random-backoff", "mac_failures")
        - get("random-backoff", "delivered");
    assert!(
        cost_no >= cost_jitter,
        "backoff should not be worse: {cost_no} vs {cost_jitter}"
    );
}

#[test]
fn ablation_padding_cost_and_benefit() {
    let rows = ablation_padding(42);
    let get = |arm_prefix: &str, metric: &str| {
        rows.iter()
            .find(|r| r.arm.starts_with(arm_prefix) && r.metric == metric)
            .map(|r| r.value)
            .unwrap()
    };
    // With room, per-hop entries are collected; with a full payload,
    // none are (the mechanism never corrupts payload bytes).
    assert!(get("16B", "fwd_hop_entries") >= 4.0);
    assert_eq!(get("64B", "fwd_hop_entries"), 0.0);
}

#[test]
fn ablation_beacon_rate_tradeoff() {
    let rows = ablation_beacon_rate(42);
    let get = |arm_prefix: &str, metric: &str| {
        rows.iter()
            .find(|r| r.arm.starts_with(arm_prefix) && r.metric == metric)
            .map(|r| r.value)
            .unwrap()
    };
    // Faster beacons discover the neighborhood sooner…
    let d500 = get("beacon period 500", "quality_convergence_ms");
    let d8000 = get("beacon period 8000", "quality_convergence_ms");
    assert!(
        d500.is_finite() && d8000.is_finite(),
        "convergence must finish"
    );
    assert!(
        d500 * 2.0 < d8000,
        "500 ms beacons should converge much faster: {d500} vs {d8000}"
    );
    // …at a proportionally higher airtime budget.
    assert!(
        get("beacon period 500", "beacons_per_node_per_min")
            > 10.0 * get("beacon period 8000", "beacons_per_node_per_min")
    );
}

#[test]
fn ablation_energy_ordering() {
    let rows = ablation_energy(42);
    let get = |arm: &str| {
        rows.iter()
            .find(|r| r.arm == arm)
            .map(|r| r.value)
            .unwrap_or_else(|| panic!("missing {arm}"))
    };
    // Commands cost micro- to milli-joules and order by reach.
    let p1 = get("ping 1-hop");
    let p8 = get("multihop-ping 8-hop");
    let t8 = get("traceroute 8-hop");
    assert!(p1 > 0.0 && p1 < 0.01, "1-hop ping = {p1} J");
    assert!(p8 > p1, "8-hop ping must cost more than 1-hop");
    assert!(t8 > p8, "traceroute moves more packets than multihop ping");
    // And they all vanish next to idle listening — the reason the
    // paper's zero-overhead-when-inactive property matters.
    let listen = get("idle listening (network, 1 min)");
    assert!(
        listen > 1000.0 * t8,
        "listen = {listen} J vs traceroute {t8} J"
    );
}

/// End-to-end guard for the reachability cache: the headline figures
/// are bit-identical with the cache enabled (default) and disabled
/// (`LV_MEDIUM_BRUTE=1`, the A/B hook in `lv_radio::Medium::new`).
/// Harmless under parallel tests precisely *because* the two modes are
/// equivalent — a test racing onto the brute path must see the same
/// numbers.
#[test]
fn figures_bit_identical_with_and_without_medium_cache() {
    let run_all = || {
        (
            format!("{:?}", fig5_traceroute_delay(42)),
            format!("{:?}", fig6_rssi_vs_power(42)),
            format!("{:?}", fig7_overhead(42)),
        )
    };
    let cached = run_all();
    std::env::set_var("LV_MEDIUM_BRUTE", "1");
    let brute = run_all();
    std::env::remove_var("LV_MEDIUM_BRUTE");
    assert_eq!(cached.0, brute.0, "fig5 diverged");
    assert_eq!(cached.1, brute.1, "fig6 diverged");
    assert_eq!(cached.2, brute.2, "fig7 diverged");
}

#[test]
fn link_characterization_has_three_regions() {
    let rows = characterize_links(42);
    let prr_at = |d: f64| {
        rows.iter()
            .min_by(|a, b| {
                (a.distance_m - d)
                    .abs()
                    .partial_cmp(&(b.distance_m - d).abs())
                    .unwrap()
            })
            .unwrap()
            .prr
    };
    // Connected region: near links essentially perfect.
    assert!(prr_at(1.0) > 0.99, "prr@1m = {}", prr_at(1.0));
    assert!(prr_at(5.0) > 0.95, "prr@5m = {}", prr_at(5.0));
    // Disconnected region: far links essentially dead.
    assert!(prr_at(45.0) < 0.15, "prr@45m = {}", prr_at(45.0));
    // Transitional region: some intermediate distance with genuinely
    // intermediate PRR (the band where LiteView's diagnosis matters).
    assert!(
        rows.iter().any(|r| (0.15..0.85).contains(&r.prr)),
        "no transitional band: {:?}",
        rows.iter()
            .map(|r| (r.distance_m, r.prr))
            .collect::<Vec<_>>()
    );
    // RSSI of received frames declines with distance overall.
    let near_rssi = rows[0].mean_rssi;
    let mid = rows.iter().find(|r| r.distance_m >= 15.0).unwrap();
    assert!(mid.mean_rssi < near_rssi - 10.0);
}
