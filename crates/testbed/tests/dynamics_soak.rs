//! Acceptance test for the degradation-ramp soak (the `figures
//! --dynamics` scenario): the paper's §IV diagnosis story must unfold
//! in order — traceroute's per-hop LQI/RSSI drops on the injected hop
//! while end-to-end ping still works (detect), the finished ramp kills
//! ping while eviction and degradation blacklisting fire (fail), and
//! the repaired link recovers (recover).

use lv_testbed::experiments::dynamics_soak;

#[test]
fn soak_arc_detect_fail_recover() {
    let r = dynamics_soak(42);

    // The three milestones exist and happen in order.
    assert!(r.detect_ms >= 0.0, "degradation never became visible");
    assert!(
        r.ping_fail_ms > r.detect_ms,
        "profiling must localize the weakening hop before ping dies \
         (detect={} fail={})",
        r.detect_ms,
        r.ping_fail_ms
    );
    assert!(
        r.recover_ms > r.ping_fail_ms,
        "link repair must restore ping (fail={} recover={})",
        r.ping_fail_ms,
        r.recover_ms
    );

    // The fault engine's side effects are observable: stale neighbors
    // were evicted, the degraded link was blacklisted, and every
    // mutation left a dyn.* fingerprint in the counters.
    assert!(r.evictions > 0, "no neighbor evictions fired");
    assert!(r.blacklists > 0, "degradation blacklisting never fired");
    assert!(r.dyn_trace_events > 0, "no dynamics mutations recorded");

    // Per-hop signal quality on the injected hop visibly drops from its
    // pre-ramp baseline before the path fails outright.
    let baseline = r
        .rounds
        .iter()
        .find(|row| row.hop_seen)
        .expect("hop 5 must report in at least once");
    let weakest = r
        .rounds
        .iter()
        .filter(|row| row.hop_seen)
        .map(|row| (row.hop_rssi, row.hop_lqi))
        .min()
        .expect("at least the baseline round is hop-visible");
    assert!(
        weakest.0 < baseline.hop_rssi || weakest.1 < baseline.hop_lqi,
        "hop 5 LQI/RSSI never dropped below baseline \
         (baseline rssi={} lqi={}, weakest rssi={} lqi={})",
        baseline.hop_rssi,
        baseline.hop_lqi,
        weakest.0,
        weakest.1
    );
}
