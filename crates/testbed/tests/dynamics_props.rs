//! Replay properties for the dynamics engine: a seeded [`DynamicsPlan`]
//! is a pure function of its inputs — replaying it against an
//! identically built network reproduces the exact trace timeline and
//! counter digest — and an empty plan is bit-identical to never having
//! scheduled dynamics at all.

use lv_kernel::{DynamicsAction, Network};
use lv_radio::propagation::PropagationConfig;
use lv_radio::units::Position;
use lv_radio::{Channel, PowerLevel};
use lv_sim::{SimDuration, SimTime, Trace, TraceLevel};
use lv_testbed::experiments::counters_digest;
use lv_testbed::{DynamicsPlan, Topology};
use proptest::prelude::*;

const NODES: u16 = 5;

/// A small corridor network with the flight recorder armed, built the
/// same way every time for a given seed.
fn build_net(seed: u64) -> Network {
    let topo = Topology::Line {
        n: NODES as usize,
        spacing: 8.0,
    };
    let mut net = Network::new(topo.medium(PropagationConfig::default(), seed), seed);
    net.trace = Trace::enabled(TraceLevel::Info, 8192);
    net
}

/// One scheduled mutation: a firing time (ms) plus the primitive action.
fn action_strategy() -> impl Strategy<Value = (u64, DynamicsAction)> {
    let action = prop_oneof![
        (0..NODES, 0..NODES, 0.0f64..40.0, any::<bool>()).prop_map(
            |(from, to, extra_loss_db, blocked)| DynamicsAction::SetLinkLoss {
                from,
                to,
                extra_loss_db,
                blocked,
            }
        ),
        (0..NODES, 0..NODES).prop_map(|(from, to)| DynamicsAction::ClearLinkLoss { from, to }),
        (0.0f64..15.0).prop_map(|delta_db| DynamicsAction::SetChannelNoise {
            channel: Channel::DEFAULT,
            delta_db,
        }),
        Just(DynamicsAction::ClearChannelNoise {
            channel: Channel::DEFAULT,
        }),
        (0..NODES).prop_map(|id| DynamicsAction::NodeDown { id }),
        (0..NODES).prop_map(|id| DynamicsAction::NodeUp { id }),
        (0..NODES, 0u8..=31).prop_map(|(id, level)| DynamicsAction::SetNodePower {
            id,
            power: PowerLevel::new(level).expect("level in range"),
        }),
        (0..NODES, 11u8..=26).prop_map(|(id, ch)| DynamicsAction::SetNodeChannel {
            id,
            channel: Channel::new(ch).expect("channel in range"),
        }),
        (0..NODES, -20.0f64..60.0, -20.0f64..60.0).prop_map(|(id, x, y)| {
            DynamicsAction::MoveNode {
                id,
                position: Position::new(x, y),
            }
        }),
    ];
    (0u64..15_000, action)
}

/// Compile generated mutations into a plan (insertion order preserved,
/// so same-instant events keep a deterministic FIFO order).
fn plan_from(muts: &[(u64, DynamicsAction)]) -> DynamicsPlan {
    muts.iter().fold(DynamicsPlan::new(), |plan, (ms, action)| {
        plan.at(SimTime::from_millis(*ms), action.clone())
    })
}

/// Everything observable about a finished run: the global counter
/// digest, per-node stats, and the full trace timeline.
fn observe(net: &Network) -> (String, String, Vec<String>) {
    (
        counters_digest(net),
        format!("{:?}", net.node_stats()),
        net.trace.events().iter().map(|e| e.to_string()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replaying a seeded plan against an identically built network
    /// reproduces the run bit-for-bit: same counter digest, same
    /// per-node stats, same trace timeline.
    #[test]
    fn seeded_plan_replays_identically(
        seed in any::<u64>(),
        muts in proptest::collection::vec(action_strategy(), 0..12),
    ) {
        let plan = plan_from(&muts);
        let run = || {
            let mut net = build_net(seed);
            plan.schedule(&mut net);
            net.run_for(SimDuration::from_secs(16));
            observe(&net)
        };
        let first = run();
        let second = run();
        prop_assert_eq!(&first.0, &second.0, "counter digest must replay");
        prop_assert_eq!(&first.1, &second.1, "node stats must replay");
        prop_assert_eq!(&first.2, &second.2, "trace timeline must replay");
    }

    /// Scheduling an empty plan is observationally nothing: the run is
    /// bit-identical to a static scenario that never touched the
    /// dynamics engine.
    #[test]
    fn empty_plan_is_bit_identical_to_static(seed in any::<u64>()) {
        let plan = DynamicsPlan::new();
        prop_assert!(plan.is_empty());

        let mut with_plan = build_net(seed);
        plan.schedule(&mut with_plan);
        with_plan.run_for(SimDuration::from_secs(12));

        let mut without = build_net(seed);
        without.run_for(SimDuration::from_secs(12));

        prop_assert_eq!(observe(&with_plan), observe(&without));
    }
}
