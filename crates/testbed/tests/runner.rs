//! Integration tests for the multi-trial engine: determinism across
//! worker counts and wall-clock speedup from the worker pool.

use lv_testbed::experiments;
use lv_testbed::{FailureMode, FailurePlan, TrialRunner};
use std::time::{Duration, Instant};

/// Same root seed ⇒ bit-identical aggregates, no matter how many
/// worker threads ran the trials (ISSUE acceptance criterion).
#[test]
fn aggregates_are_bit_identical_across_worker_counts() {
    let serial = experiments::fig5_traceroute_delay_agg(&TrialRunner::new(42, 8).workers(1));
    let parallel = experiments::fig5_traceroute_delay_agg(&TrialRunner::new(42, 8).workers(4));
    assert!(!serial.is_empty(), "expected aggregate rows");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.hop, b.hop);
        assert_eq!(a.trials, 8);
        assert_eq!(a.delay_ms.n, b.delay_ms.n);
        // Compare at the bit level: f64 equality would also accept
        // -0.0 == 0.0, which is not the reproducibility we promise.
        assert_eq!(a.delay_ms.mean.to_bits(), b.delay_ms.mean.to_bits());
        assert_eq!(a.delay_ms.stddev.to_bits(), b.delay_ms.stddev.to_bits());
        assert_eq!(a.delay_ms.ci95.to_bits(), b.delay_ms.ci95.to_bits());
        assert_eq!(a.delay_ms.min.to_bits(), b.delay_ms.min.to_bits());
        assert_eq!(a.delay_ms.max.to_bits(), b.delay_ms.max.to_bits());
    }
    // The serialized form (what the figures harness prints) matches too.
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

/// The failure sweep is equally scheduling-independent, including
/// which trials receive the fault.
#[test]
fn failure_sweep_is_bit_identical_across_worker_counts() {
    let plans = [FailurePlan::new(FailureMode::KillNode { id: 4 }, 0.5)];
    let a = experiments::failure_sweep(&TrialRunner::new(7, 8).workers(1), &plans);
    let b = experiments::failure_sweep(&TrialRunner::new(7, 8).workers(3), &plans);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    assert_eq!(a[0].faulted, 4);
}

/// Aggregate drivers report ≥8 trials with a mean and a 95% CI
/// (ISSUE acceptance criterion). Fig. 7 rows must cover all 8 path
/// lengths with every trial contributing.
#[test]
fn fig7_aggregate_covers_all_path_lengths() {
    let runner = TrialRunner::new(11, 8);
    let rows = experiments::fig7_overhead_agg(&runner);
    assert_eq!(rows.len(), 8);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.hops as usize, i + 1);
        assert_eq!(r.trials, 8);
        assert_eq!(r.control_packets.n, 8);
        assert!(r.control_packets.mean > 0.0);
        assert!(r.control_packets.ci95 >= 0.0);
    }
    // Overhead still grows with path length in the aggregate view.
    assert!(rows[7].control_packets.mean > rows[0].control_packets.mean);
}

/// Sixteen trials on a multi-worker pool must finish in well under
/// 0.75× the serial wall-clock (ISSUE acceptance criterion). The
/// workload blocks rather than spins so the test also demonstrates
/// the speedup on single-CPU CI runners; `benches/runner_parallel.rs`
/// shows the same effect on the real simulation workload.
#[test]
fn worker_pool_beats_serial_wall_clock() {
    let work = |t: lv_testbed::TrialCtx| {
        std::thread::sleep(Duration::from_millis(30));
        t.seed
    };
    let runner = TrialRunner::new(3, 16);

    let start = Instant::now();
    let serial = runner.clone().workers(1).run(work);
    let serial_elapsed = start.elapsed();

    let start = Instant::now();
    let parallel = runner.workers(4).run(work);
    let parallel_elapsed = start.elapsed();

    assert_eq!(serial, parallel, "results must not depend on workers");
    assert!(
        parallel_elapsed < serial_elapsed.mul_f64(0.75),
        "parallel {parallel_elapsed:?} vs serial {serial_elapsed:?}"
    );
}
