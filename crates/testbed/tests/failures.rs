//! Behavioral tests for failure injection: each fault must change what
//! the operator actually sees at the shell (ping/traceroute outcomes),
//! not just the medium's internal state.

use liteview::{CommandRequest, CommandResult};
use lv_net::packet::Port;
use lv_sim::SimDuration;
use lv_testbed::{failures, Scenario, ScenarioConfig, Topology};

fn corridor(n: usize, seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::new(
        Topology::Corridor {
            n,
            spacing: 5.0,
            wall_loss_db: 40.0,
        },
        seed,
    ))
}

/// Traceroute the far end of `s`'s corridor; `true` iff it reports the
/// destination reached.
fn trace_reaches(s: &mut Scenario, dst: u16) -> bool {
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::traceroute(dst, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    match exec.result {
        CommandResult::Traceroute(t) => t.reached,
        _ => false,
    }
}

/// One multi-hop ping; how many replies came back.
fn ping_received(s: &mut Scenario, dst: u16) -> u8 {
    let exec =
        s.ws.exec(
            &mut s.net,
            CommandRequest::ping(dst, 1, 32, Some(Port::GEOGRAPHIC)),
        )
        .unwrap();
    match exec.result {
        CommandResult::Ping(p) => p.received,
        _ => 0,
    }
}

#[test]
fn killing_a_relay_breaks_the_trace_and_revival_restores_it() {
    let mut s = corridor(5, 17);
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    assert!(trace_reaches(&mut s, 4), "healthy corridor must trace");

    // Node 2 is the only path in a corridor: killing it severs it.
    failures::kill_node(&mut s.net, 2);
    s.net.run_for(SimDuration::from_secs(5));
    assert!(
        !trace_reaches(&mut s, 4),
        "trace must not reach past a dead relay"
    );

    // Power it back on and let beacons rebuild the neighbor tables.
    failures::revive_node(&mut s.net, 2);
    s.net.run_for(SimDuration::from_secs(30));
    assert!(trace_reaches(&mut s, 4), "revived relay must route again");
}

#[test]
fn breaking_a_link_stops_pings_and_repair_restores_them() {
    let mut s = corridor(3, 23);
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    assert!(ping_received(&mut s, 2) >= 1, "healthy path must ping");

    failures::break_link(&mut s.net, 1, 2);
    s.net.run_for(SimDuration::from_secs(2));
    assert_eq!(
        ping_received(&mut s, 2),
        0,
        "no replies can cross a hard-broken link"
    );

    failures::repair_link(&mut s.net, 1, 2);
    s.net.run_for(SimDuration::from_secs(2));
    assert!(ping_received(&mut s, 2) >= 1, "repaired link must ping");
}

#[test]
fn attenuation_shows_up_in_the_ping_rssi_report() {
    let mut s = corridor(2, 29);
    s.ws.cd(&s.net, "192.168.0.1").unwrap();
    let rssi = |s: &mut Scenario| -> i8 {
        let exec =
            s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None))
                .unwrap();
        let CommandResult::Ping(p) = exec.result else {
            panic!("ping failed: {:?}", exec.result);
        };
        p.rounds[0].rssi_fwd
    };
    let before = rssi(&mut s);

    // 12 dB of extra loss on the probe's direction (0 → 1): the
    // forward RSSI the operator reads must drop by about that much
    // (the register quantizes, shadowing is frozen per link).
    failures::attenuate_link(&mut s.net, 0, 1, 12.0);
    let after = rssi(&mut s);
    let drop = before as i16 - after as i16;
    assert!(
        (8..=16).contains(&drop),
        "expected ~12 dB forward-RSSI drop, got {drop} (before {before}, after {after})"
    );
}
