//! The port map: the subscription registry of Figure 2.
//!
//! "its port number is matched against each process that is listening to
//! incoming packets. The thread that has a match in port number is
//! considered the right thread for the incoming packet."

use crate::packet::Port;
use std::collections::BTreeMap;

/// Identifier of a process/thread on a node (kernel-assigned).
pub type ProcessId = u32;

/// Pseudo-pid reported as the holder of a port owned by the kernel
/// itself (an installed routing protocol rather than a process). Real
/// process ids start at 1, so 0 is never a live process.
pub const KERNEL_PID: ProcessId = 0;

/// Port → subscriber registry for one node.
#[derive(Debug, Default, Clone)]
pub struct PortMap {
    subs: BTreeMap<Port, ProcessId>,
}

/// Why a subscription was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// Another process already listens on this port.
    PortInUse {
        /// The process currently holding the port.
        holder: ProcessId,
    },
}

impl PortMap {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe `pid` to `port`. Each port has at most one listener —
    /// ports are how the stack demultiplexes, so sharing would be
    /// ambiguous.
    pub fn subscribe(&mut self, port: Port, pid: ProcessId) -> Result<(), SubscribeError> {
        match self.subs.get(&port) {
            Some(&holder) if holder != pid => Err(SubscribeError::PortInUse { holder }),
            _ => {
                self.subs.insert(port, pid);
                Ok(())
            }
        }
    }

    /// Remove the subscription on `port` (no-op if absent).
    pub fn unsubscribe(&mut self, port: Port) {
        self.subs.remove(&port);
    }

    /// Remove every subscription held by `pid` (process exit).
    pub fn unsubscribe_all(&mut self, pid: ProcessId) {
        self.subs.retain(|_, &mut p| p != pid);
    }

    /// Who listens on `port`?
    pub fn lookup(&self, port: Port) -> Option<ProcessId> {
        self.subs.get(&port).copied()
    }

    /// Every `(port, pid)` pair, in port order.
    pub fn iter(&self) -> impl Iterator<Item = (Port, ProcessId)> + '_ {
        self.subs.iter().map(|(&port, &pid)| (port, pid))
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_and_lookup() {
        let mut pm = PortMap::new();
        pm.subscribe(Port::PING, 4).unwrap();
        assert_eq!(pm.lookup(Port::PING), Some(4));
        assert_eq!(pm.lookup(Port::TRACEROUTE), None);
    }

    #[test]
    fn exclusive_ownership() {
        let mut pm = PortMap::new();
        pm.subscribe(Port(9), 1).unwrap();
        assert_eq!(
            pm.subscribe(Port(9), 2),
            Err(SubscribeError::PortInUse { holder: 1 })
        );
        // Re-subscribing by the same pid is idempotent.
        assert!(pm.subscribe(Port(9), 1).is_ok());
    }

    #[test]
    fn unsubscribe_frees_port() {
        let mut pm = PortMap::new();
        pm.subscribe(Port(9), 1).unwrap();
        pm.unsubscribe(Port(9));
        assert!(pm.subscribe(Port(9), 2).is_ok());
    }

    #[test]
    fn unsubscribe_all_on_exit() {
        let mut pm = PortMap::new();
        pm.subscribe(Port(1), 7).unwrap();
        pm.subscribe(Port(2), 7).unwrap();
        pm.subscribe(Port(3), 8).unwrap();
        pm.unsubscribe_all(7);
        assert_eq!(pm.len(), 1);
        assert_eq!(pm.lookup(Port(3)), Some(8));
    }

    #[test]
    fn iter_is_port_ordered() {
        let mut pm = PortMap::new();
        pm.subscribe(Port(5), 1).unwrap();
        pm.subscribe(Port(2), 2).unwrap();
        let ports: Vec<u8> = pm.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![2, 5]);
    }
}
