//! Windowed-EWMA link estimation from beacon sequence numbers.
//!
//! Neighbors broadcast beacons with a monotonically increasing sequence
//! number. Gaps in the received sequence reveal losses, giving a
//! packet-reception ratio per window; windows are smoothed with an EWMA
//! (the WMEWMA estimator of Woo & Culler that MintRoute-era stacks used).
//! The resulting `[0, 1]` quality is what the kernel neighbor table
//! stores and the LiteView `neighbor list` command prints.

/// Windowed-EWMA packet-reception estimator for one directed link.
#[derive(Debug, Clone)]
pub struct LinkEstimator {
    last_seq: Option<u16>,
    received: u32,
    expected: u32,
    quality: f64,
    have_estimate: bool,
    /// EWMA weight on the newest window.
    alpha: f64,
    /// Beacons per estimation window.
    window: u32,
}

impl LinkEstimator {
    /// Standard WMEWMA parameters: 8-beacon windows, α = 0.6.
    pub fn new() -> Self {
        Self::with_params(0.6, 8)
    }

    /// Custom smoothing weight and window size.
    pub fn with_params(alpha: f64, window: u32) -> Self {
        LinkEstimator {
            last_seq: None,
            received: 0,
            expected: 0,
            quality: 0.0,
            have_estimate: false,
            alpha: alpha.clamp(0.0, 1.0),
            window: window.max(1),
        }
    }

    /// Record a received beacon with sequence number `seq`.
    pub fn on_beacon(&mut self, seq: u16) {
        match self.last_seq {
            None => {
                // First contact: seed optimistically with one received of
                // one expected, so a fresh neighbor is usable immediately.
                self.received = 1;
                self.expected = 1;
            }
            Some(last) => {
                let gap = seq.wrapping_sub(last);
                if gap == 0 {
                    return; // duplicate beacon
                }
                self.expected += gap as u32;
                self.received += 1;
            }
        }
        self.last_seq = Some(seq);
        if self.expected >= self.window {
            self.fold_window();
        }
    }

    fn fold_window(&mut self) {
        let prr = (self.received as f64 / self.expected as f64).min(1.0);
        self.quality = if self.have_estimate {
            self.alpha * prr + (1.0 - self.alpha) * self.quality
        } else {
            prr
        };
        self.have_estimate = true;
        self.received = 0;
        self.expected = 0;
    }

    /// Current inbound quality estimate in `[0, 1]`.
    ///
    /// Before the first full window, returns the provisional in-window
    /// ratio so new neighbors aren't reported as dead.
    pub fn quality(&self) -> f64 {
        if self.have_estimate {
            self.quality
        } else if self.expected > 0 {
            (self.received as f64 / self.expected as f64).min(1.0)
        } else {
            0.0
        }
    }

    /// Quality scaled to a byte, the representation beacons carry.
    pub fn quality_u8(&self) -> u8 {
        (self.quality() * 255.0).round().clamp(0.0, 255.0) as u8
    }
}

impl Default for LinkEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// Convert a byte-scaled quality back to `[0, 1]`.
pub fn quality_from_u8(q: u8) -> f64 {
    q as f64 / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_converges_to_one() {
        let mut e = LinkEstimator::new();
        for seq in 0..64u16 {
            e.on_beacon(seq);
        }
        assert!(e.quality() > 0.99, "q = {}", e.quality());
        assert_eq!(e.quality_u8(), 255);
    }

    #[test]
    fn half_loss_converges_to_half() {
        let mut e = LinkEstimator::new();
        for seq in (0..256u16).step_by(2) {
            e.on_beacon(seq);
        }
        let q = e.quality();
        assert!((q - 0.5).abs() < 0.08, "q = {q}");
    }

    #[test]
    fn fresh_neighbor_immediately_usable() {
        let mut e = LinkEstimator::new();
        e.on_beacon(17);
        assert!(e.quality() > 0.9);
    }

    #[test]
    fn no_beacons_means_zero() {
        let e = LinkEstimator::new();
        assert_eq!(e.quality(), 0.0);
        assert_eq!(e.quality_u8(), 0);
    }

    #[test]
    fn duplicates_ignored() {
        let mut e1 = LinkEstimator::new();
        let mut e2 = LinkEstimator::new();
        for seq in 0..32u16 {
            e1.on_beacon(seq);
            e2.on_beacon(seq);
            e2.on_beacon(seq); // duplicate delivery
        }
        assert_eq!(e1.quality(), e2.quality());
    }

    #[test]
    fn sequence_wrap_handled() {
        let mut e = LinkEstimator::new();
        for i in 0..32u16 {
            e.on_beacon((u16::MAX - 8).wrapping_add(i)); // wraps through 0
        }
        assert!(e.quality() > 0.99, "q = {}", e.quality());
    }

    #[test]
    fn degradation_tracks_recent_loss() {
        let mut e = LinkEstimator::new();
        for seq in 0..64u16 {
            e.on_beacon(seq);
        }
        let good = e.quality();
        // Now lose 3 of every 4 beacons for a while.
        let mut seq = 64u16;
        for _ in 0..16 {
            e.on_beacon(seq);
            seq = seq.wrapping_add(4);
        }
        assert!(e.quality() < good - 0.3, "q = {}", e.quality());
    }

    #[test]
    fn u8_round_trip() {
        let mut e = LinkEstimator::new();
        for seq in (0..128u16).step_by(2) {
            e.on_beacon(seq);
        }
        let q = quality_from_u8(e.quality_u8());
        assert!((q - e.quality()).abs() < 0.01);
    }
}
