//! Neighbor beacon payloads.
//!
//! Beacons are how the kernel neighbor table is populated: each node
//! periodically broadcasts its identity, name, position, collection-tree
//! gradient, and its *inbound* quality estimates of the neighbors it
//! hears. The last item is what lets every node learn its own
//! **outbound** quality — the direction a node cannot measure locally —
//! which LiteView's neighbor listing then exposes to the operator.
//! The `update` command's "frequency of neighbor beacon exchanges"
//! setting is handled by the kernel's beacon scheduler; this module is
//! only the payload format.
//!
//! Wire layout:
//!
//! ```text
//! offset  size  field
//! 0       2     beacon sequence number
//! 2       4     x position (IEEE-754 f32, big-endian)
//! 6       4     y position
//! 10      1     collection-tree gradient (255 = unreachable)
//! 11      1     name length (≤ 15)
//! 12      1     link-entry count n (≤ 8)
//! 13      m     name bytes
//! 13+m    3n    link entries: neighbor id (2) + inbound quality (1)
//! ```

use lv_radio::units::Position;

/// Maximum advertised name length (LiteOS file names are short).
pub const MAX_NAME_LEN: usize = 15;
/// Maximum link entries per beacon.
pub const MAX_LINK_ENTRIES: usize = 8;

/// A decoded beacon.
#[derive(Debug, Clone, PartialEq)]
pub struct BeaconPayload {
    /// Per-node beacon sequence (feeds the link estimator).
    pub seq: u16,
    /// Advertised position.
    pub position: Position,
    /// Collection-tree gradient (hops to root; 255 = unreachable).
    pub tree_hops: u8,
    /// Advertised node name.
    pub name: String,
    /// `(neighbor id, inbound quality byte)` pairs.
    pub links: Vec<(u16, u8)>,
}

impl BeaconPayload {
    /// Serialize. Name and link list are truncated to their caps.
    pub fn encode(&self) -> Vec<u8> {
        let name = &self.name.as_bytes()[..self.name.len().min(MAX_NAME_LEN)];
        let links = &self.links[..self.links.len().min(MAX_LINK_ENTRIES)];
        let mut buf = Vec::with_capacity(13 + name.len() + 3 * links.len());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&(self.position.x as f32).to_be_bytes());
        buf.extend_from_slice(&(self.position.y as f32).to_be_bytes());
        buf.push(self.tree_hops);
        buf.push(name.len() as u8);
        buf.push(links.len() as u8);
        buf.extend_from_slice(name);
        for &(id, q) in links {
            buf.extend_from_slice(&id.to_be_bytes());
            buf.push(q);
        }
        buf
    }

    /// Parse; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<BeaconPayload> {
        if buf.len() < 13 {
            return None;
        }
        let seq = u16::from_be_bytes([buf[0], buf[1]]);
        let x = f32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]) as f64;
        let y = f32::from_be_bytes([buf[6], buf[7], buf[8], buf[9]]) as f64;
        let tree_hops = buf[10];
        let name_len = buf[11] as usize;
        let n_links = buf[12] as usize;
        if name_len > MAX_NAME_LEN || n_links > MAX_LINK_ENTRIES {
            return None;
        }
        if buf.len() != 13 + name_len + 3 * n_links {
            return None;
        }
        let name = String::from_utf8(buf[13..13 + name_len].to_vec()).ok()?;
        let mut links = Vec::with_capacity(n_links);
        let mut off = 13 + name_len;
        for _ in 0..n_links {
            let id = u16::from_be_bytes([buf[off], buf[off + 1]]);
            let q = buf[off + 2];
            links.push((id, q));
            off += 3;
        }
        Some(BeaconPayload {
            seq,
            position: Position::new(x, y),
            tree_hops,
            name,
            links,
        })
    }

    /// The quality byte this beacon advertises for node `id`, if listed.
    pub fn quality_of(&self, id: u16) -> Option<u8> {
        self.links.iter().find(|&&(n, _)| n == id).map(|&(_, q)| q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon() -> BeaconPayload {
        BeaconPayload {
            seq: 300,
            position: Position::new(12.5, -3.25),
            tree_hops: 4,
            name: "192.168.0.7".into(),
            links: vec![(1, 255), (2, 128), (9, 0)],
        }
    }

    #[test]
    fn round_trip() {
        let b = beacon();
        let d = BeaconPayload::decode(&b.encode()).expect("decodes");
        assert_eq!(d, b);
    }

    #[test]
    fn fits_in_payload_area() {
        // A maximal beacon must fit the 64-byte network payload area.
        let b = BeaconPayload {
            seq: u16::MAX,
            position: Position::new(1e4, 1e4),
            tree_hops: 255,
            name: "x".repeat(MAX_NAME_LEN),
            links: vec![(0xFFFF, 255); MAX_LINK_ENTRIES],
        };
        assert!(b.encode().len() <= crate::packet::PAYLOAD_AREA);
    }

    #[test]
    fn truncates_oversized_fields() {
        let b = BeaconPayload {
            seq: 1,
            position: Position::new(0.0, 0.0),
            tree_hops: 0,
            name: "a-very-long-name-beyond-fifteen-bytes".into(),
            links: vec![(1, 1); 20],
        };
        let d = BeaconPayload::decode(&b.encode()).unwrap();
        assert_eq!(d.name.len(), MAX_NAME_LEN);
        assert_eq!(d.links.len(), MAX_LINK_ENTRIES);
    }

    #[test]
    fn quality_lookup() {
        let b = beacon();
        assert_eq!(b.quality_of(2), Some(128));
        assert_eq!(b.quality_of(42), None);
    }

    #[test]
    fn malformed_rejected() {
        assert!(BeaconPayload::decode(&[]).is_none());
        assert!(BeaconPayload::decode(&[0; 5]).is_none());
        let mut bytes = beacon().encode();
        bytes.push(0); // length mismatch
        assert!(BeaconPayload::decode(&bytes).is_none());
        let mut bytes2 = beacon().encode();
        bytes2[12] = 200; // absurd link count
        assert!(BeaconPayload::decode(&bytes2).is_none());
    }

    #[test]
    fn position_survives_f32_round_trip() {
        let b = beacon();
        let d = BeaconPayload::decode(&b.encode()).unwrap();
        assert!((d.position.x - 12.5).abs() < 1e-6);
        assert!((d.position.y + 3.25).abs() < 1e-6);
    }
}
