//! Pluggable routing protocols.
//!
//! Routing protocols are ordinary port subscribers ("this listening
//! thread could be the routing protocol that will continue to forward
//! the packet along the path" — Section IV.C.1). LiteView never links
//! against a specific protocol: ping and traceroute name a port at
//! runtime, and whatever [`Router`] is subscribed there carries the
//! probes. That is the paper's protocol-independence requirement, and it
//! is why "multiple routing protocols can co-exist" in the stack.

pub mod flooding;
pub mod geographic;
pub mod tree;

pub use flooding::Flooding;
pub use geographic::Geographic;
pub use tree::CollectionTree;

use crate::neighbors::NeighborTable;
use crate::packet::{NetPacket, Port};
use lv_radio::units::Position;

/// Everything a router may consult when deciding a packet's fate.
pub struct RouteCtx<'a> {
    /// The deciding node.
    pub me: u16,
    /// Its position.
    pub my_position: Position,
    /// The kernel neighbor table (routers must honor blacklist bits).
    pub neighbors: &'a NeighborTable,
    /// Location lookup for arbitrary nodes (geographic forwarding's
    /// location service; the testbed knows deployment coordinates).
    pub locations: &'a dyn Fn(u16) -> Option<Position>,
}

/// Why a packet was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No usable next hop.
    NoRoute,
    /// Seen before (flooding duplicate suppression).
    Duplicate,
    /// Hop budget exhausted.
    TtlExpired,
    /// Arrived, but no process is subscribed on the application port.
    NoListener,
}

impl DropReason {
    /// The interned counter this drop increments — same name the string
    /// path would have produced via `format!("net.drop.{self:?}")`.
    pub fn counter_id(self) -> lv_sim::CounterId {
        match self {
            DropReason::NoRoute => lv_sim::CounterId::NetDropNoRoute,
            DropReason::Duplicate => lv_sim::CounterId::NetDropDuplicate,
            DropReason::TtlExpired => lv_sim::CounterId::NetDropTtlExpired,
            DropReason::NoListener => lv_sim::CounterId::NetDropNoListener,
        }
    }
}

/// A router's verdict for one packet at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The packet has arrived: hand the payload to its application port.
    Deliver,
    /// Send to `next_hop` (`lv_mac::BROADCAST` means broadcast).
    Forward {
        /// Link-layer next hop (`lv_mac::BROADCAST` for broadcast).
        next_hop: u16,
    },
    /// Discard.
    Drop(DropReason),
}

/// A routing protocol instance on one node.
pub trait Router: Send {
    /// Protocol name, as printed by traceroute ("Name of protocol:
    /// geographic forwarding").
    fn name(&self) -> &'static str;

    /// The port this protocol is subscribed on.
    fn port(&self) -> Port;

    /// Decide what this node does with `packet` (which may have
    /// originated here or arrived from a neighbor).
    fn decide(&mut self, ctx: &RouteCtx<'_>, packet: &NetPacket) -> RouteDecision;

    /// The gradient this protocol wants advertised in neighbor beacons
    /// (only gradient-based protocols maintain one).
    fn gradient(&self, _neighbors: &NeighborTable) -> Option<u8> {
        None
    }

    /// Read-only next-hop query toward `dst` — the primitive traceroute
    /// is built on (each hop must know who it will probe next). Returns
    /// `None` for protocols without a deterministic unicast next hop
    /// (e.g. flooding) or when no route exists.
    fn next_hop_query(&self, _ctx: &RouteCtx<'_>, _dst: u16) -> Option<u16> {
        None
    }
}

/// Quality floor below which a link is not worth routing over.
pub const MIN_ROUTE_QUALITY: f64 = 0.2;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::packet::{NetHeader, PacketFlags};
    use lv_sim::SimTime;

    /// A neighbor table with the given ids at the given positions, all
    /// with strong bidirectional links.
    pub fn table_with(neigh: &[(u16, Position)]) -> NeighborTable {
        let mut nt = NeighborTable::default();
        for &(id, pos) in neigh {
            for seq in 0..16u16 {
                nt.on_beacon(
                    id,
                    seq,
                    &format!("n{id}"),
                    pos,
                    // Convention for tests: a node's gradient equals its
                    // id, so lower ids sit closer to the collection root.
                    id.min(254) as u8,
                    Some(255),
                    SimTime::from_millis(seq as u64),
                );
            }
        }
        nt
    }

    pub fn packet(origin: u16, dst: u16, port: Port, seq: u8) -> NetPacket {
        NetPacket::new(
            NetHeader {
                flags: PacketFlags::default(),
                origin,
                dst,
                port,
                app_port: Port::PING,
                seq,
                ttl: 16,
            },
            vec![0; 8],
        )
    }
}
