//! Greedy geographic forwarding.
//!
//! The protocol the paper demonstrates traceroute over: "we let the
//! geographic forwarding protocol listen on the port number 10, so that
//! the traceroute command can use this protocol to deliver packets."
//!
//! At each hop the packet moves to the usable (non-blacklisted, quality
//! above the floor) neighbor strictly closest to the destination's
//! location, provided that neighbor is closer than the current node —
//! plain greedy forwarding without face routing; a packet caught in a
//! local minimum is dropped with `NoRoute`, which is itself a condition
//! LiteView is designed to make visible.

use super::{DropReason, RouteCtx, RouteDecision, Router, MIN_ROUTE_QUALITY};
use crate::packet::{NetPacket, Port};

/// The greedy geographic router.
pub struct Geographic {
    port: Port,
    min_quality: f64,
}

impl Geographic {
    /// Create a geographic router on `port` with the default quality
    /// floor.
    pub fn new(port: Port) -> Self {
        Geographic {
            port,
            min_quality: MIN_ROUTE_QUALITY,
        }
    }

    /// Override the link-quality floor.
    pub fn with_min_quality(port: Port, min_quality: f64) -> Self {
        Geographic { port, min_quality }
    }
}

impl Router for Geographic {
    fn name(&self) -> &'static str {
        "geographic forwarding"
    }

    fn port(&self) -> Port {
        self.port
    }

    fn next_hop_query(&self, ctx: &RouteCtx<'_>, dst: u16) -> Option<u16> {
        self.best_hop(ctx, dst)
    }

    fn decide(&mut self, ctx: &RouteCtx<'_>, packet: &NetPacket) -> RouteDecision {
        if packet.header.dst == ctx.me {
            return RouteDecision::Deliver;
        }
        if packet.header.ttl == 0 {
            return RouteDecision::Drop(DropReason::TtlExpired);
        }
        match self.best_hop(ctx, packet.header.dst) {
            Some(id) => RouteDecision::Forward { next_hop: id },
            None => RouteDecision::Drop(DropReason::NoRoute),
        }
    }
}

impl Geographic {
    /// PRR×distance forwarding (Seada et al.): maximize geographic
    /// progress weighted by link quality. Pure greedy-by-distance
    /// prefers the longest, weakest link — exactly the asymmetric
    /// long-shot links that blackhole traffic.
    fn best_hop(&self, ctx: &RouteCtx<'_>, dst: u16) -> Option<u16> {
        let dst_pos = (ctx.locations)(dst)?;
        let my_dist = ctx.my_position.distance(dst_pos).0;
        let mut best: Option<(u16, f64)> = None; // (id, progress × quality)
        for e in ctx.neighbors.usable(self.min_quality) {
            let Some(pos) = e.position else { continue };
            let d = pos.distance(dst_pos).0;
            if d >= my_dist {
                continue; // must make strict progress
            }
            let metric = (my_dist - d) * e.bidirectional();
            if best.is_none_or(|(_, bm)| metric > bm) {
                best = Some((e.id, metric));
            }
        }
        best.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{packet, table_with};
    use super::*;
    use crate::neighbors::NeighborTable;
    use lv_radio::units::Position;

    /// Line topology: node i at (10·i, 0).
    fn line_loc(id: u16) -> Option<Position> {
        Some(Position::new(10.0 * id as f64, 0.0))
    }

    fn ctx<'a>(
        me: u16,
        nt: &'a NeighborTable,
        locs: &'a dyn Fn(u16) -> Option<Position>,
    ) -> RouteCtx<'a> {
        RouteCtx {
            me,
            my_position: line_loc(me).unwrap(),
            neighbors: nt,
            locations: locs,
        }
    }

    #[test]
    fn forwards_to_neighbor_nearest_destination() {
        // Node 2 knows neighbors 1 and 3; packet headed to node 5.
        let nt = table_with(&[(1, line_loc(1).unwrap()), (3, line_loc(3).unwrap())]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 5, Port::GEOGRAPHIC, 0);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Forward { next_hop: 3 }
        );
    }

    #[test]
    fn delivers_at_destination() {
        let nt = table_with(&[]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 2, Port::GEOGRAPHIC, 0);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Deliver
        );
    }

    #[test]
    fn requires_strict_progress() {
        // Only neighbor is behind us: local minimum → NoRoute.
        let nt = table_with(&[(1, line_loc(1).unwrap())]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 5, Port::GEOGRAPHIC, 0);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Drop(DropReason::NoRoute)
        );
    }

    #[test]
    fn blacklisted_neighbor_skipped() {
        let mut nt = table_with(&[(3, line_loc(3).unwrap()), (4, line_loc(4).unwrap())]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 5, Port::GEOGRAPHIC, 0);
        // Normally 4 wins (closest to 5).
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Forward { next_hop: 4 }
        );
        // Blacklist 4: traffic detours through 3 — the paper's
        // "temporarily modifies the behavior of communication protocols".
        nt.set_blacklisted(4, true);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Forward { next_hop: 3 }
        );
        // Blacklist both: no route at all.
        nt.set_blacklisted(3, true);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Drop(DropReason::NoRoute)
        );
    }

    #[test]
    fn unknown_destination_location_drops() {
        let nt = table_with(&[(3, line_loc(3).unwrap())]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 5, Port::GEOGRAPHIC, 0);
        let no_locs = |_: u16| -> Option<Position> { None };
        let c = RouteCtx {
            me: 2,
            my_position: line_loc(2).unwrap(),
            neighbors: &nt,
            locations: &no_locs,
        };
        assert_eq!(r.decide(&c, &p), RouteDecision::Drop(DropReason::NoRoute));
    }

    #[test]
    fn ttl_expiry() {
        let nt = table_with(&[(3, line_loc(3).unwrap())]);
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let mut p = packet(0, 5, Port::GEOGRAPHIC, 0);
        p.header.ttl = 0;
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Drop(DropReason::TtlExpired)
        );
    }

    #[test]
    fn low_quality_neighbor_avoided() {
        // Neighbor 4 exists but we never heard beacons from it (zero
        // quality); neighbor 3 is healthy.
        let mut nt = table_with(&[(3, line_loc(3).unwrap())]);
        nt.touch(4, lv_sim::SimTime::from_millis(1));
        let mut r = Geographic::new(Port::GEOGRAPHIC);
        let p = packet(0, 5, Port::GEOGRAPHIC, 0);
        assert_eq!(
            r.decide(&ctx(2, &nt, &line_loc), &p),
            RouteDecision::Forward { next_hop: 3 }
        );
    }

    #[test]
    fn protocol_name_matches_paper_output() {
        // traceroute prints "Name of protocol: geographic forwarding".
        assert_eq!(
            Geographic::new(Port::GEOGRAPHIC).name(),
            "geographic forwarding"
        );
    }
}
