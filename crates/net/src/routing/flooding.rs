//! Sequence-suppressed flooding.
//!
//! The simplest protocol LiteView can drive: every node rebroadcasts
//! each packet once, identified by `(origin, sequence)`. Useful as a
//! routing-free baseline when diagnosing whether *any* path exists to a
//! node, and as the contrast protocol in the protocol-comparison
//! example ("users may install each protocol sequentially, and measure
//! the protocol performance").

use super::{DropReason, RouteCtx, RouteDecision, Router};
use crate::packet::{NetPacket, Port};
use lv_mac::BROADCAST;

/// Entries remembered for duplicate suppression.
const SEEN_CAPACITY: usize = 64;

/// The flooding router.
pub struct Flooding {
    port: Port,
    seen: Vec<(u16, u8)>,
    cursor: usize,
}

impl Flooding {
    /// Create a flooding router on `port`.
    pub fn new(port: Port) -> Self {
        Flooding {
            port,
            seen: Vec::with_capacity(SEEN_CAPACITY),
            cursor: 0,
        }
    }

    fn remember(&mut self, key: (u16, u8)) -> bool {
        if self.seen.contains(&key) {
            return false;
        }
        if self.seen.len() < SEEN_CAPACITY {
            self.seen.push(key);
        } else {
            // Ring replacement: overwrite the oldest slot.
            self.seen[self.cursor] = key;
            self.cursor = (self.cursor + 1) % SEEN_CAPACITY;
        }
        true
    }
}

impl Router for Flooding {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn port(&self) -> Port {
        self.port
    }

    fn decide(&mut self, ctx: &RouteCtx<'_>, packet: &NetPacket) -> RouteDecision {
        let key = (packet.header.origin, packet.header.seq);
        let fresh = self.remember(key);
        if packet.header.dst == ctx.me {
            return RouteDecision::Deliver;
        }
        if !fresh {
            return RouteDecision::Drop(DropReason::Duplicate);
        }
        if packet.header.ttl == 0 {
            return RouteDecision::Drop(DropReason::TtlExpired);
        }
        RouteDecision::Forward {
            next_hop: BROADCAST,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{packet, table_with};
    use super::*;
    use lv_radio::units::Position;

    fn ctx<'a>(
        me: u16,
        nt: &'a crate::neighbors::NeighborTable,
        locs: &'a dyn Fn(u16) -> Option<Position>,
    ) -> RouteCtx<'a> {
        RouteCtx {
            me,
            my_position: Position::new(0.0, 0.0),
            neighbors: nt,
            locations: locs,
        }
    }

    #[test]
    fn forwards_fresh_packets_broadcast() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = Flooding::new(Port::FLOODING);
        let p = packet(1, 9, Port::FLOODING, 0);
        assert_eq!(
            r.decide(&ctx(2, &nt, &locs), &p),
            RouteDecision::Forward {
                next_hop: BROADCAST
            }
        );
    }

    #[test]
    fn suppresses_duplicates() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = Flooding::new(Port::FLOODING);
        let p = packet(1, 9, Port::FLOODING, 3);
        r.decide(&ctx(2, &nt, &locs), &p);
        assert_eq!(
            r.decide(&ctx(2, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::Duplicate)
        );
        // Different seq from the same origin is fresh again.
        let p2 = packet(1, 9, Port::FLOODING, 4);
        assert!(matches!(
            r.decide(&ctx(2, &nt, &locs), &p2),
            RouteDecision::Forward { .. }
        ));
    }

    #[test]
    fn delivers_at_destination_even_if_duplicate() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = Flooding::new(Port::FLOODING);
        let p = packet(1, 2, Port::FLOODING, 0);
        assert_eq!(r.decide(&ctx(2, &nt, &locs), &p), RouteDecision::Deliver);
        assert_eq!(r.decide(&ctx(2, &nt, &locs), &p), RouteDecision::Deliver);
    }

    #[test]
    fn ttl_zero_dropped() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = Flooding::new(Port::FLOODING);
        let mut p = packet(1, 9, Port::FLOODING, 0);
        p.header.ttl = 0;
        assert_eq!(
            r.decide(&ctx(2, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::TtlExpired)
        );
    }

    #[test]
    fn seen_cache_bounded() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = Flooding::new(Port::FLOODING);
        // Flood far more keys than the cache holds.
        for seq in 0..=255u8 {
            let p = packet(1, 9, Port::FLOODING, seq);
            r.decide(&ctx(2, &nt, &locs), &p);
        }
        assert!(r.seen.len() <= SEEN_CAPACITY);
        // Recent keys still suppressed.
        let p = packet(1, 9, Port::FLOODING, 255);
        assert_eq!(
            r.decide(&ctx(2, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::Duplicate)
        );
    }
}
