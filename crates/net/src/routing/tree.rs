//! Collection-tree routing.
//!
//! A MintRoute/CTP-style gradient tree: the root advertises gradient 0
//! in its beacons, every other node advertises `min(parent gradients)+1`,
//! and data flows downhill to the root. This is the third protocol
//! LiteView can drive, included because the paper's motivation cites
//! MintRoute-style collection as the workload whose "routing tree
//! construction" users need visibility into.

use super::{DropReason, RouteCtx, RouteDecision, Router, MIN_ROUTE_QUALITY};
use crate::neighbors::{NeighborTable, TREE_UNREACHABLE};
use crate::packet::{NetPacket, Port};

/// Gradient ceiling: anything deeper advertises unreachable. Bounds the
/// distance-vector count-to-infinity an orphaned subtree would otherwise
/// run (its members mutually inflating each other's gradients one beacon
/// at a time) — the same role CTP's ETX threshold plays.
pub const MAX_GRADIENT: u8 = 16;

/// The collection-tree router on one node.
pub struct CollectionTree {
    port: Port,
    is_root: bool,
    min_quality: f64,
}

impl CollectionTree {
    /// Create a tree router; exactly one node per tree is the root.
    pub fn new(port: Port, is_root: bool) -> Self {
        CollectionTree {
            port,
            is_root,
            min_quality: MIN_ROUTE_QUALITY,
        }
    }

    /// Whether this node is the collection root.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// This node's current gradient (hops to root): 0 at the root,
    /// `min(neighbor gradients)+1` elsewhere, [`TREE_UNREACHABLE`] when
    /// no neighbor is connected. Advertised in beacons.
    pub fn gradient(&self, neighbors: &NeighborTable) -> u8 {
        if self.is_root {
            return 0;
        }
        neighbors
            .usable(self.min_quality)
            .map(|e| e.tree_hops)
            .filter(|&h| h != TREE_UNREACHABLE)
            .min()
            .map_or(TREE_UNREACHABLE, |h| {
                let g = h.saturating_add(1);
                if g > MAX_GRADIENT {
                    TREE_UNREACHABLE
                } else {
                    g
                }
            })
    }

    /// The current parent choice: the usable neighbor with the lowest
    /// gradient, ties broken by bidirectional quality.
    pub fn parent(&self, neighbors: &NeighborTable) -> Option<u16> {
        neighbors
            .usable(self.min_quality)
            .filter(|e| e.tree_hops < MAX_GRADIENT)
            .min_by(|a, b| {
                a.tree_hops.cmp(&b.tree_hops).then(
                    b.bidirectional()
                        .partial_cmp(&a.bidirectional())
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            })
            .map(|e| e.id)
    }
}

impl Router for CollectionTree {
    fn name(&self) -> &'static str {
        "collection tree"
    }

    fn port(&self) -> Port {
        self.port
    }

    fn gradient(&self, neighbors: &NeighborTable) -> Option<u8> {
        Some(self.gradient(neighbors))
    }

    fn next_hop_query(&self, ctx: &RouteCtx<'_>, dst: u16) -> Option<u16> {
        if self.is_root || dst == ctx.me {
            None
        } else {
            self.parent(ctx.neighbors)
        }
    }

    fn decide(&mut self, ctx: &RouteCtx<'_>, packet: &NetPacket) -> RouteDecision {
        // Collection semantics: everything flows to the root; a packet
        // whose destination is this node is also delivered (the root
        // addresses itself when originating local traffic).
        if self.is_root || packet.header.dst == ctx.me {
            return RouteDecision::Deliver;
        }
        if packet.header.ttl == 0 {
            return RouteDecision::Drop(DropReason::TtlExpired);
        }
        match self.parent(ctx.neighbors) {
            Some(parent) => RouteDecision::Forward { next_hop: parent },
            None => RouteDecision::Drop(DropReason::NoRoute),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{packet, table_with};
    use super::*;
    use lv_radio::units::Position;

    fn pos(id: u16) -> Position {
        Position::new(id as f64, 0.0)
    }

    fn ctx<'a>(
        me: u16,
        nt: &'a NeighborTable,
        locs: &'a dyn Fn(u16) -> Option<Position>,
    ) -> RouteCtx<'a> {
        RouteCtx {
            me,
            my_position: pos(me),
            neighbors: nt,
            locations: locs,
        }
    }

    #[test]
    fn root_delivers() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, true);
        let p = packet(5, 0, Port::TREE, 0);
        assert_eq!(r.decide(&ctx(0, &nt, &locs), &p), RouteDecision::Deliver);
        assert_eq!(r.gradient(&nt), 0);
    }

    #[test]
    fn forwards_to_lowest_gradient_parent() {
        // Test convention: neighbor gradient == its id, so node 1 is the
        // better parent than node 4.
        let nt = table_with(&[(4, pos(4)), (1, pos(1))]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, false);
        let p = packet(7, 0, Port::TREE, 0);
        assert_eq!(
            r.decide(&ctx(7, &nt, &locs), &p),
            RouteDecision::Forward { next_hop: 1 }
        );
        assert_eq!(r.gradient(&nt), 2);
    }

    #[test]
    fn disconnected_node_has_no_route() {
        let nt = table_with(&[]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, false);
        let p = packet(7, 0, Port::TREE, 0);
        assert_eq!(
            r.decide(&ctx(7, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::NoRoute)
        );
        assert_eq!(r.gradient(&nt), TREE_UNREACHABLE);
        assert_eq!(r.parent(&nt), None);
    }

    #[test]
    fn blacklisted_parent_rerouted() {
        let mut nt = table_with(&[(1, pos(1)), (2, pos(2))]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, false);
        nt.set_blacklisted(1, true);
        let p = packet(7, 0, Port::TREE, 0);
        assert_eq!(
            r.decide(&ctx(7, &nt, &locs), &p),
            RouteDecision::Forward { next_hop: 2 }
        );
    }

    #[test]
    fn unreachable_neighbors_not_parents() {
        let mut nt = table_with(&[(3, pos(3))]);
        let _locs = |_: u16| -> Option<Position> { None };
        // Mark neighbor 3's gradient unreachable.
        for seq in 16..20u16 {
            nt.on_beacon(
                3,
                seq,
                "n3",
                pos(3),
                TREE_UNREACHABLE,
                Some(255),
                lv_sim::SimTime::from_millis(seq as u64),
            );
        }
        let r = CollectionTree::new(Port::TREE, false);
        assert_eq!(r.parent(&nt), None);
        assert_eq!(r.gradient(&nt), TREE_UNREACHABLE);
    }

    #[test]
    fn gradient_bounded_against_count_to_infinity() {
        // A neighbor advertising a depth at the ceiling must not be
        // adopted as a parent, and our own advertisement saturates to
        // unreachable instead of inflating past the bound.
        let mut nt = table_with(&[(3, pos(3))]);
        let locs = |_: u16| -> Option<Position> { None };
        for seq in 16..20u16 {
            nt.on_beacon(
                3,
                seq,
                "n3",
                pos(3),
                MAX_GRADIENT,
                Some(255),
                lv_sim::SimTime::from_millis(seq as u64),
            );
        }
        let mut r = CollectionTree::new(Port::TREE, false);
        assert_eq!(r.parent(&nt), None);
        assert_eq!(r.gradient(&nt), TREE_UNREACHABLE);
        let p = packet(7, 0, Port::TREE, 0);
        assert_eq!(
            r.decide(&ctx(7, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::NoRoute)
        );
    }

    #[test]
    fn delivery_at_addressed_node() {
        let nt = table_with(&[(1, pos(1))]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, false);
        let p = packet(5, 7, Port::TREE, 0);
        assert_eq!(r.decide(&ctx(7, &nt, &locs), &p), RouteDecision::Deliver);
    }

    #[test]
    fn ttl_expiry() {
        let nt = table_with(&[(1, pos(1))]);
        let locs = |_: u16| -> Option<Position> { None };
        let mut r = CollectionTree::new(Port::TREE, false);
        let mut p = packet(5, 0, Port::TREE, 0);
        p.header.ttl = 0;
        assert_eq!(
            r.decide(&ctx(7, &nt, &locs), &p),
            RouteDecision::Drop(DropReason::TtlExpired)
        );
    }
}
