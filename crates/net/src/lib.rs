#![warn(missing_docs)]

//! # lv-net — LiteView's port-based communication stack
//!
//! Implements the communication architecture of the paper's Figure 2:
//! a subscription-based stack in which every process — applications,
//! LiteView's runtime controller, and *routing protocols themselves* —
//! listens on a port, and the only data shared between layers are the
//! packets. This is the mechanism behind LiteView's protocol
//! independence: ping and traceroute hand probe packets to whatever
//! routing protocol is subscribed on the port the user names
//! (`traceroute 192.168.0.3 … port=10`), with "complete isolation
//! between the command module and the protocol module".
//!
//! Modules:
//!
//! * [`packet`] — the byte-accurate network header and packet layout,
//!   including the reserved 64-byte payload area whose unused tail
//!   carries link-quality padding.
//! * [`padding`] — the link-quality padding mechanism of Section IV.C.3:
//!   2 bytes per hop (LQI + RSSI), appended at each hop, never touching
//!   the original payload; a 16-byte probe can cross 24 hops.
//! * [`ports`] — the port map / subscription registry.
//! * [`neighbors`] — the *kernel-owned* neighbor table (Section III.B.2)
//!   with names, link quality in both directions, and blacklist bits.
//! * [`estimator`] — windowed-EWMA packet-reception estimation from
//!   beacon sequence numbers.
//! * [`beacon`] — the neighbor beacon payload (position, tree gradient,
//!   and per-neighbor inbound quality so neighbors learn their
//!   *outbound* quality).
//! * [`routing`] — the pluggable routers: flooding, greedy geographic
//!   forwarding (the protocol used on port 10 in the paper's traceroute
//!   example), and a collection tree.
//! * [`stack`] — the per-node façade tying it all together.

pub mod beacon;
pub mod estimator;
pub mod neighbors;
pub mod packet;
pub mod padding;
pub mod ports;
pub mod routing;
pub mod stack;

pub use beacon::BeaconPayload;
pub use estimator::LinkEstimator;
pub use neighbors::{NeighborEntry, NeighborTable};
pub use packet::{NetHeader, NetPacket, PacketFlags, Port};
pub use padding::HopQuality;
pub use ports::PortMap;
pub use routing::{DropReason, RouteCtx, RouteDecision, Router};
pub use stack::{RxAction, Stack, StackConfig};
