//! The network-layer packet.
//!
//! Wire layout (big-endian multi-byte fields):
//!
//! ```text
//! offset  size  field
//! 0       1     flags (bit 0: link-quality padding enabled)
//! 1       2     origin address
//! 3       2     final destination address
//! 5       1     carrying port (who handles this packet at each hop)
//! 6       1     application port (who receives it at the destination)
//! 7       1     origin sequence number
//! 8       1     TTL
//! 9       1     payload length
//! 10      1     padding length (bytes of hop-quality data appended)
//! 11      n     application payload (≤ 64 bytes)
//! 11+n    p     link-quality padding (2 bytes per hop)
//! ```
//!
//! Section IV.C.3: "in the routing layer, we keep a default payload of
//! 64 bytes, serving as the upper limit on the length of data payloads.
//! If the actual length … is shorter … the routing layer utilizes the
//! extra bytes that are normally not transmitted over the air for
//! storing link quality metrics." So `payload + padding ≤ 64` always,
//! and only the occupied bytes travel on the air.

use crate::padding::HopQuality;
use lv_sim::InlineBytes;
use serde::{Deserialize, Serialize};

/// The reserved payload area per packet — payload plus padding must fit.
pub const PAYLOAD_AREA: usize = 64;

/// Application payload or padding bytes, stored inline ([`PAYLOAD_AREA`]
/// caps both) — packets move through the stack without heap traffic.
pub type PacketBytes = InlineBytes<PAYLOAD_AREA>;

/// Bytes of network header on the wire.
pub const NET_HEADER_LEN: usize = 11;

/// A port number in the subscription stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u8);

/// Well-known ports (mirroring the paper's conventions).
impl Port {
    /// LiteView's management channel (workstation ↔ runtime controller).
    pub const MANAGEMENT: Port = Port(1);
    /// The ping command's unique port.
    pub const PING: Port = Port(2);
    /// The traceroute command's unique port.
    pub const TRACEROUTE: Port = Port(3);
    /// Geographic forwarding, "listening on the port number 10" in the
    /// paper's traceroute example.
    pub const GEOGRAPHIC: Port = Port(10);
    /// Flooding router.
    pub const FLOODING: Port = Port(11);
    /// Collection-tree router.
    pub const TREE: Port = Port(12);
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketFlags {
    /// Append LQI/RSSI padding at each hop.
    pub padding_enabled: bool,
}

impl PacketFlags {
    fn to_byte(self) -> u8 {
        u8::from(self.padding_enabled)
    }

    fn from_byte(b: u8) -> Self {
        PacketFlags {
            padding_enabled: b & 1 != 0,
        }
    }
}

/// The parsed network header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetHeader {
    /// Flag bits.
    pub flags: PacketFlags,
    /// Originating node.
    pub origin: u16,
    /// Final destination node.
    pub dst: u16,
    /// Port of the process that handles the packet at every hop — a
    /// routing protocol for multi-hop packets, or the application itself
    /// for one-hop packets.
    pub port: Port,
    /// Port of the process that receives the payload at the destination.
    pub app_port: Port,
    /// Origin-assigned sequence number (dedup for flooding etc.).
    pub seq: u8,
    /// Remaining hop budget.
    pub ttl: u8,
}

/// A network packet: header + payload + accumulated padding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPacket {
    /// The header.
    pub header: NetHeader,
    /// The application payload (never mutated in flight — the paper's
    /// "we should not directly store link quality information into the
    /// original payload of packets").
    pub payload: PacketBytes,
    /// The appended hop-quality bytes.
    pub padding: PacketBytes,
}

impl NetPacket {
    /// Build a fresh packet at the origin. Panics if the payload
    /// exceeds the 64-byte area.
    pub fn new(header: NetHeader, payload: impl Into<PacketBytes>) -> Self {
        NetPacket {
            header,
            payload: payload.into(),
            padding: PacketBytes::new(),
        }
    }

    /// Bytes actually transmitted over the air.
    pub fn wire_len(&self) -> usize {
        NET_HEADER_LEN + self.payload.len() + self.padding.len()
    }

    /// Free bytes left in the 64-byte area for further padding.
    pub fn padding_space_left(&self) -> usize {
        PAYLOAD_AREA
            .saturating_sub(self.payload.len())
            .saturating_sub(self.padding.len())
    }

    /// Append one hop's quality metrics if padding is enabled and space
    /// remains under the 64-byte cap. Returns `true` if the hop was
    /// recorded. The original payload bytes are never touched.
    pub fn append_hop_quality(&mut self, hop: HopQuality) -> bool {
        if !self.header.flags.padding_enabled {
            return false;
        }
        hop.append_capped(&mut self.padding, self.payload.len(), PAYLOAD_AREA)
    }

    /// Decode the accumulated per-hop qualities.
    pub fn hop_qualities(&self) -> Vec<HopQuality> {
        HopQuality::parse_all(&self.padding)
    }

    /// Serialize for transmission.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.push(self.header.flags.to_byte());
        buf.extend_from_slice(&self.header.origin.to_be_bytes());
        buf.extend_from_slice(&self.header.dst.to_be_bytes());
        buf.push(self.header.port.0);
        buf.push(self.header.app_port.0);
        buf.push(self.header.seq);
        buf.push(self.header.ttl);
        buf.push(self.payload.len() as u8);
        buf.push(self.padding.len() as u8);
        buf.extend_from_slice(&self.payload);
        buf.extend_from_slice(&self.padding);
        buf
    }

    /// Parse from wire bytes; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<NetPacket> {
        if buf.len() < NET_HEADER_LEN {
            return None;
        }
        let flags = PacketFlags::from_byte(buf[0]);
        let origin = u16::from_be_bytes([buf[1], buf[2]]);
        let dst = u16::from_be_bytes([buf[3], buf[4]]);
        let port = Port(buf[5]);
        let app_port = Port(buf[6]);
        let seq = buf[7];
        let ttl = buf[8];
        let payload_len = buf[9] as usize;
        let pad_len = buf[10] as usize;
        if payload_len + pad_len > PAYLOAD_AREA {
            return None;
        }
        if buf.len() != NET_HEADER_LEN + payload_len + pad_len {
            return None;
        }
        let payload = PacketBytes::from_slice(&buf[NET_HEADER_LEN..NET_HEADER_LEN + payload_len]);
        let padding = PacketBytes::from_slice(&buf[NET_HEADER_LEN + payload_len..]);
        Some(NetPacket {
            header: NetHeader {
                flags,
                origin,
                dst,
                port,
                app_port,
                seq,
                ttl,
            },
            payload,
            padding,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> NetHeader {
        NetHeader {
            flags: PacketFlags {
                padding_enabled: true,
            },
            origin: 1,
            dst: 8,
            port: Port::GEOGRAPHIC,
            app_port: Port::PING,
            seq: 77,
            ttl: 16,
        }
    }

    #[test]
    fn round_trip() {
        let mut p = NetPacket::new(header(), vec![5; 16]);
        p.append_hop_quality(HopQuality { lqi: 106, rssi: -3 });
        let decoded = NetPacket::decode(&p.encode()).expect("decodes");
        assert_eq!(decoded, p);
    }

    #[test]
    fn wire_len_only_counts_occupied_bytes() {
        // A 16-byte payload transmits 16 payload bytes, not 64.
        let p = NetPacket::new(header(), vec![0; 16]);
        assert_eq!(p.wire_len(), NET_HEADER_LEN + 16);
    }

    #[test]
    fn padding_budget_matches_paper() {
        // "as the probe packet has a payload of 16 bytes, as each hop
        // takes two bytes in padding, a packet could at most travel 24
        // hops before the padding runs out of space."
        let mut p = NetPacket::new(header(), vec![0; 16]);
        let mut hops = 0;
        while p.append_hop_quality(HopQuality { lqi: 100, rssi: 0 }) {
            hops += 1;
        }
        assert_eq!(hops, 24);
        assert_eq!(p.padding_space_left(), 0);
        assert_eq!(p.hop_qualities().len(), 24);
    }

    #[test]
    fn padding_disabled_appends_nothing() {
        let mut h = header();
        h.flags.padding_enabled = false;
        let mut p = NetPacket::new(h, vec![0; 16]);
        assert!(!p.append_hop_quality(HopQuality { lqi: 100, rssi: 0 }));
        assert!(p.padding.is_empty());
    }

    #[test]
    fn payload_never_mutated_by_padding() {
        let payload: Vec<u8> = (0..32).collect();
        let mut p = NetPacket::new(header(), payload.clone());
        for _ in 0..16 {
            p.append_hop_quality(HopQuality { lqi: 90, rssi: -20 });
        }
        assert_eq!(p.payload, payload);
    }

    #[test]
    fn full_payload_leaves_no_padding_space() {
        let mut p = NetPacket::new(header(), vec![0; PAYLOAD_AREA]);
        assert_eq!(p.padding_space_left(), 0);
        assert!(!p.append_hop_quality(HopQuality { lqi: 100, rssi: 0 }));
    }

    #[test]
    fn frame_at_the_cap_gains_no_further_bytes() {
        // Regression (ISSUE 2): padding accumulated over many hops must
        // stop exactly at the 64-byte area, leaving the wire length
        // frozen no matter how many more hops the packet traverses.
        let mut p = NetPacket::new(header(), Vec::new());
        while p.append_hop_quality(HopQuality { lqi: 100, rssi: -9 }) {}
        assert_eq!(p.payload.len() + p.padding.len(), PAYLOAD_AREA);
        let frozen = p.wire_len();
        for _ in 0..8 {
            assert!(!p.append_hop_quality(HopQuality { lqi: 101, rssi: -1 }));
            assert_eq!(p.wire_len(), frozen);
        }
        assert_eq!(
            p.hop_qualities().len(),
            PAYLOAD_AREA / HopQuality::WIRE_BYTES
        );
    }

    #[test]
    fn oversized_claims_rejected() {
        let p = NetPacket::new(header(), vec![1; 10]);
        let mut bytes = p.encode();
        bytes[9] = 200; // payload_len beyond area
        assert!(NetPacket::decode(&bytes).is_none());
        assert!(NetPacket::decode(&[]).is_none());
        assert!(NetPacket::decode(&bytes[..5]).is_none());
    }

    #[test]
    fn length_mismatch_rejected() {
        let p = NetPacket::new(header(), vec![1; 10]);
        let mut bytes = p.encode();
        bytes.push(0xFF); // trailing garbage
        assert!(NetPacket::decode(&bytes).is_none());
    }

    #[test]
    fn hop_quality_order_preserved() {
        let mut p = NetPacket::new(header(), vec![0; 16]);
        for i in 0..5 {
            p.append_hop_quality(HopQuality {
                lqi: 100 + i,
                rssi: -(i as i8),
            });
        }
        let hops = p.hop_qualities();
        for (i, h) in hops.iter().enumerate() {
            assert_eq!(h.lqi, 100 + i as u8);
            assert_eq!(h.rssi, -(i as i8));
        }
    }
}
