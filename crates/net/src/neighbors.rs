//! The kernel-owned neighbor table.
//!
//! Section III.B.2: "we modified LiteOS so that the kernel maintains a
//! list of neighbors for each node, including their node names,
//! identifiers, and link quality … it is more efficient to provide
//! neighborhood management as part of kernel services, which both users
//! and applications can access via system calls." The blacklist bit is
//! the field LiteView's `blacklist` command toggles: "the kernel
//! associates a field to each neighbor entry that specifies whether or
//! not the current neighbor is considered enabled."

use crate::estimator::{quality_from_u8, LinkEstimator};
use lv_radio::units::Position;
use lv_sim::SimTime;

/// Gradient value meaning "not connected to the collection tree".
pub const TREE_UNREACHABLE: u8 = u8::MAX;

/// One neighbor's state.
#[derive(Debug, Clone)]
pub struct NeighborEntry {
    /// Neighbor node id.
    pub id: u16,
    /// Neighbor's human-readable name (IP-convention names in the
    /// paper's testbed, e.g. "192.168.0.2").
    pub name: String,
    /// Inbound link estimator (their beacons → me).
    pub estimator: LinkEstimator,
    /// Outbound quality (me → them), learned from their beacons
    /// advertising *their* inbound estimate of me.
    pub outbound: Option<f64>,
    /// When we last heard anything from this neighbor.
    pub last_heard: SimTime,
    /// Their advertised position (for geographic forwarding).
    pub position: Option<Position>,
    /// Their advertised collection-tree gradient (hops to root).
    pub tree_hops: u8,
    /// The LiteView blacklist bit: when set, protocols must not use this
    /// neighbor when constructing routes.
    pub blacklisted: bool,
}

impl NeighborEntry {
    fn new(id: u16, now: SimTime) -> Self {
        NeighborEntry {
            id,
            name: String::new(),
            estimator: LinkEstimator::new(),
            outbound: None,
            last_heard: now,
            position: None,
            tree_hops: TREE_UNREACHABLE,
            blacklisted: false,
        }
    }

    /// Inbound quality in `[0, 1]`.
    pub fn inbound(&self) -> f64 {
        self.estimator.quality()
    }

    /// Bidirectional quality: the product of directions (the standard
    /// ETX-style combination). Until the outbound direction is confirmed
    /// — by the neighbor's advertisement or by link-layer ack feedback —
    /// it is discounted to 0.4: an unconfirmed reverse link may well be
    /// one of the asymmetric links LiteView exists to expose, and
    /// routing over it on faith is how deployments break.
    pub fn bidirectional(&self) -> f64 {
        match self.outbound {
            Some(out) => self.inbound() * out,
            None => self.inbound() * 0.4,
        }
    }

    /// Is this link usable for routing (not blacklisted, some quality)?
    pub fn usable(&self, min_quality: f64) -> bool {
        !self.blacklisted && self.bidirectional() >= min_quality
    }
}

/// The bounded neighbor table.
///
/// ```
/// use lv_net::neighbors::NeighborTable;
/// use lv_radio::units::Position;
/// use lv_sim::SimTime;
///
/// let mut nt = NeighborTable::default();
/// for seq in 0..16 {
///     nt.on_beacon(7, seq, "192.168.0.8", Position::new(5.0, 0.0), 2,
///                  Some(255), SimTime::from_secs(seq as u64));
/// }
/// let e = nt.get(7).unwrap();
/// assert!(e.inbound() > 0.9);
/// nt.set_blacklisted(7, true);
/// assert!(!nt.get(7).unwrap().usable(0.0));
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    entries: Vec<NeighborEntry>,
    capacity: usize,
}

impl NeighborTable {
    /// LiteOS-scale default: 16 entries (the kernel table must fit in a
    /// 4 KB-RAM mote alongside everything else).
    pub const DEFAULT_CAPACITY: usize = 16;

    /// Create a table bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        NeighborTable {
            entries: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// All entries (in insertion order).
    pub fn entries(&self) -> &[NeighborEntry] {
        &self.entries
    }

    /// Number of known neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no neighbors are known — the "has the current node lost
    /// connection with all other nodes?" diagnosis.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a neighbor by id.
    pub fn get(&self, id: u16) -> Option<&NeighborEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable lookup, inserting a fresh entry if absent (evicting the
    /// stalest non-blacklisted entry when full). Returns `None` only if
    /// the table is full of blacklisted entries.
    pub fn get_or_insert(&mut self, id: u16, now: SimTime) -> Option<&mut NeighborEntry> {
        if let Some(idx) = self.entries.iter().position(|e| e.id == id) {
            return Some(&mut self.entries[idx]);
        }
        if self.entries.len() >= self.capacity {
            // Evict the stalest non-blacklisted entry (blacklist state is
            // operator intent; dropping it silently would be surprising).
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.blacklisted)
                .min_by_key(|(_, e)| e.last_heard)
                .map(|(i, _)| i)?;
            self.entries.remove(victim);
        }
        self.entries.push(NeighborEntry::new(id, now));
        let idx = self.entries.len() - 1;
        Some(&mut self.entries[idx])
    }

    /// Record that `id` was heard at `now` (any frame type).
    pub fn touch(&mut self, id: u16, now: SimTime) {
        if let Some(e) = self.get_or_insert(id, now) {
            e.last_heard = now;
        }
    }

    /// Apply a received beacon from `id`: sequence number for the
    /// inbound estimator, name/position/gradient advertisement, and —
    /// when the beacon lists us — our outbound quality.
    #[allow(clippy::too_many_arguments)]
    pub fn on_beacon(
        &mut self,
        id: u16,
        seq: u16,
        name: &str,
        position: Position,
        tree_hops: u8,
        our_quality_at_them: Option<u8>,
        now: SimTime,
    ) {
        if let Some(e) = self.get_or_insert(id, now) {
            e.estimator.on_beacon(seq);
            if !name.is_empty() {
                e.name = name.to_owned();
            }
            e.position = Some(position);
            e.tree_hops = tree_hops;
            if let Some(q) = our_quality_at_them {
                e.outbound = Some(quality_from_u8(q));
            }
            e.last_heard = now;
        }
    }

    /// Link-layer feedback for the outbound direction: `success` is
    /// whether a unicast to `id` was acknowledged. Smoothed with an EWMA
    /// seeded at 0.5 — the same role ack feedback plays in CTP-style
    /// estimators, and the only way to learn the reverse direction of an
    /// asymmetric link whose owner never hears us.
    pub fn link_feedback(&mut self, id: u16, success: bool) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            let old = e.outbound.unwrap_or(0.5);
            let sample = if success { 1.0 } else { 0.0 };
            e.outbound = Some(0.8 * old + 0.2 * sample);
        }
    }

    /// Set or clear the blacklist bit. Returns `false` if `id` is not in
    /// the table.
    pub fn set_blacklisted(&mut self, id: u16, value: bool) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.blacklisted = value;
                true
            }
            None => false,
        }
    }

    /// Drop entries not heard from within `timeout` of `now`.
    pub fn expire(&mut self, now: SimTime, timeout: lv_sim::SimDuration) {
        self.entries
            .retain(|e| now.saturating_since(e.last_heard) <= timeout);
    }

    /// Forget every neighbor (cold reboot: the table lives in RAM).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Degradation watchdog (RADIUS-style): blacklist confirmed
    /// neighbors whose bidirectional quality fell below `below`, and
    /// clear the bit again once quality recovers above `clear_above`
    /// (hysteresis so a link hovering at the threshold does not flap).
    /// Only entries with a confirmed outbound direction are judged —
    /// a freshly heard neighbor still carries the 0.4 unconfirmed
    /// discount and must not be condemned on that alone. Returns
    /// `(newly_blacklisted, recovered)`.
    pub fn blacklist_degraded(&mut self, below: f64, clear_above: f64) -> (usize, usize) {
        let (mut tripped, mut recovered) = (0, 0);
        for e in self.entries.iter_mut().filter(|e| e.outbound.is_some()) {
            let q = e.bidirectional();
            if !e.blacklisted && q < below {
                e.blacklisted = true;
                tripped += 1;
            } else if e.blacklisted && q > clear_above {
                e.blacklisted = false;
                recovered += 1;
            }
        }
        (tripped, recovered)
    }

    /// Usable (non-blacklisted, quality ≥ `min_quality`) neighbors.
    pub fn usable(&self, min_quality: f64) -> impl Iterator<Item = &NeighborEntry> {
        self.entries.iter().filter(move |e| e.usable(min_quality))
    }

    /// This node's inbound-quality advertisement list for its own
    /// beacons: `(neighbor id, inbound quality byte)`.
    pub fn advertisement(&self, max_entries: usize) -> Vec<(u16, u8)> {
        self.entries
            .iter()
            .take(max_entries)
            .map(|e| (e.id, e.estimator.quality_u8()))
            .collect()
    }
}

impl Default for NeighborTable {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn pos() -> Position {
        Position::new(1.0, 2.0)
    }

    #[test]
    fn beacon_creates_and_updates_entry() {
        let mut nt = NeighborTable::default();
        nt.on_beacon(5, 0, "192.168.0.5", pos(), 2, None, t(1));
        nt.on_beacon(5, 1, "192.168.0.5", pos(), 2, Some(200), t(2));
        let e = nt.get(5).unwrap();
        assert_eq!(e.name, "192.168.0.5");
        assert_eq!(e.tree_hops, 2);
        assert!(e.inbound() > 0.9);
        assert!((e.outbound.unwrap() - 200.0 / 255.0).abs() < 1e-9);
        assert_eq!(e.last_heard, t(2));
    }

    #[test]
    fn capacity_evicts_stalest() {
        let mut nt = NeighborTable::new(3);
        nt.touch(1, t(10));
        nt.touch(2, t(20));
        nt.touch(3, t(30));
        nt.touch(4, t(40)); // evicts 1
        assert!(nt.get(1).is_none());
        assert_eq!(nt.len(), 3);
        assert!(nt.get(4).is_some());
    }

    #[test]
    fn blacklisted_entries_survive_eviction() {
        let mut nt = NeighborTable::new(2);
        nt.touch(1, t(10));
        nt.set_blacklisted(1, true);
        nt.touch(2, t(20));
        nt.touch(3, t(30)); // must evict 2, not blacklisted 1
        assert!(nt.get(1).is_some());
        assert!(nt.get(2).is_none());
        assert!(nt.get(3).is_some());
    }

    #[test]
    fn full_blacklisted_table_rejects_inserts() {
        let mut nt = NeighborTable::new(1);
        nt.touch(1, t(10));
        nt.set_blacklisted(1, true);
        assert!(nt.get_or_insert(2, t(20)).is_none());
        assert_eq!(nt.len(), 1);
    }

    #[test]
    fn blacklist_toggles() {
        let mut nt = NeighborTable::default();
        nt.touch(9, t(1));
        assert!(nt.set_blacklisted(9, true));
        assert!(nt.get(9).unwrap().blacklisted);
        assert!(!nt.get(9).unwrap().usable(0.0));
        assert!(nt.set_blacklisted(9, false));
        assert!(!nt.get(9).unwrap().blacklisted);
        assert!(!nt.set_blacklisted(42, true)); // unknown id
    }

    #[test]
    fn expiry_drops_silent_neighbors() {
        let mut nt = NeighborTable::default();
        nt.touch(1, t(0));
        nt.touch(2, t(900));
        nt.expire(t(1000), SimDuration::from_millis(500));
        assert!(nt.get(1).is_none());
        assert!(nt.get(2).is_some());
    }

    #[test]
    fn bidirectional_quality_combines_directions() {
        let mut nt = NeighborTable::default();
        for seq in 0..16 {
            nt.on_beacon(7, seq, "n7", pos(), 0, None, t(seq as u64));
        }
        // Unconfirmed outbound is discounted to 0.4 of inbound.
        let unconfirmed = nt.get(7).unwrap().bidirectional();
        let inbound = nt.get(7).unwrap().inbound();
        assert!((unconfirmed - inbound * 0.4).abs() < 1e-9);
        // A confirmed strong outbound direction raises the combined
        // quality above the unconfirmed discount…
        nt.on_beacon(7, 16, "n7", pos(), 0, Some(255), t(17));
        assert!(nt.get(7).unwrap().bidirectional() > unconfirmed);
        // …and a confirmed weak one lowers it below inbound.
        nt.on_beacon(7, 17, "n7", pos(), 0, Some(64), t(18));
        let weak = nt.get(7).unwrap().bidirectional();
        assert!(weak < inbound * 0.3);
    }

    #[test]
    fn usable_filters_quality_and_blacklist() {
        let mut nt = NeighborTable::default();
        for seq in 0..16 {
            nt.on_beacon(1, seq, "a", pos(), 0, Some(255), t(seq as u64));
        }
        nt.touch(2, t(1)); // no beacons: zero quality
        nt.touch(3, t(1));
        nt.set_blacklisted(3, true);
        let ids: Vec<u16> = nt.usable(0.5).map(|e| e.id).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn advertisement_lists_inbound_bytes() {
        let mut nt = NeighborTable::default();
        for seq in 0..16 {
            nt.on_beacon(4, seq, "x", pos(), 0, None, t(seq as u64));
        }
        let adv = nt.advertisement(8);
        assert_eq!(adv.len(), 1);
        assert_eq!(adv[0].0, 4);
        assert!(adv[0].1 > 230);
    }

    #[test]
    fn empty_table_reports_lost_connectivity() {
        let nt = NeighborTable::default();
        assert!(nt.is_empty());
        assert_eq!(nt.len(), 0);
    }
}
