//! The per-node stack façade (Figure 2 of the paper).
//!
//! Ties the port map, the kernel neighbor table, and the registered
//! routing protocols together. The stack is deliberately passive — it
//! decides, the kernel executes: every call returns an [`RxAction`]
//! telling the node's event loop whether to deliver a packet to a
//! process, hand a frame to the MAC for forwarding, or drop.

use crate::beacon::{BeaconPayload, MAX_LINK_ENTRIES};
use crate::neighbors::NeighborTable;
use crate::packet::{NetHeader, NetPacket, PacketFlags, Port};
use crate::padding::HopQuality;
use crate::ports::{PortMap, ProcessId, SubscribeError, KERNEL_PID};
use crate::routing::{DropReason, RouteCtx, RouteDecision, Router};
use lv_radio::units::Position;
use lv_sim::{CounterId, Counters, SimDuration, SimTime};

/// Stack tunables.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Initial TTL for originated packets.
    pub default_ttl: u8,
    /// Neighbor beacon period (the `update` command's "frequency of
    /// neighbor beacon exchanges").
    pub beacon_period: SimDuration,
    /// Uniform jitter added to each beacon to desynchronize nodes.
    pub beacon_jitter: SimDuration,
    /// Drop neighbors not heard for this long.
    pub neighbor_timeout: SimDuration,
    /// When set, housekeeping blacklists confirmed neighbors whose
    /// bidirectional quality degrades below this threshold (and clears
    /// the bit once quality recovers 0.15 above it). `None` — the
    /// default — leaves the blacklist purely operator-driven, which
    /// keeps every pre-dynamics scenario bit-identical.
    pub blacklist_below: Option<f64>,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            default_ttl: 32,
            beacon_period: SimDuration::from_millis(2_000),
            beacon_jitter: SimDuration::from_millis(500),
            neighbor_timeout: SimDuration::from_secs(16),
            blacklist_below: None,
        }
    }
}

/// What the node should do with a packet.
#[derive(Debug)]
pub enum RxAction {
    /// Hand the packet to the subscribed process.
    DeliverTo {
        /// The subscriber.
        pid: ProcessId,
        /// The packet (padding included — that is the data ping reads).
        packet: NetPacket,
    },
    /// Transmit toward `next_hop` (may be `lv_mac::BROADCAST`).
    Forward {
        /// Link-layer destination.
        next_hop: u16,
        /// The packet to re-encode.
        packet: NetPacket,
    },
    /// Discard.
    Drop {
        /// Why.
        reason: DropReason,
    },
}

/// Registration error for routers.
#[derive(Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The port is already owned by a router or an application.
    PortInUse,
}

/// An installed router and the process id that owns its port
/// ([`KERNEL_PID`] when the kernel installed it directly).
struct RouterSlot {
    holder: ProcessId,
    router: Box<dyn Router>,
}

/// The per-node communication stack.
pub struct Stack {
    me: u16,
    name: String,
    ports: PortMap,
    /// The kernel-owned neighbor table (exposed for syscall access).
    pub neighbors: NeighborTable,
    routers: Vec<RouterSlot>,
    next_seq: u8,
    beacon_seq: u16,
    config: StackConfig,
    /// Per-node network-layer counters (forwards, deliveries, drops,
    /// beacon receptions, neighbor churn, padding caps) — the net slice
    /// of the node's flight recorder.
    counters: Counters,
}

impl Stack {
    /// Create the stack for node `me` named `name`.
    pub fn new(me: u16, name: impl Into<String>, config: StackConfig) -> Self {
        Stack {
            me,
            name: name.into(),
            ports: PortMap::new(),
            neighbors: NeighborTable::default(),
            routers: Vec::new(),
            next_seq: 0,
            beacon_seq: 0,
            config,
            counters: Counters::new(),
        }
    }

    /// This node's network-layer counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// This node's id.
    pub fn id(&self) -> u16 {
        self.me
    }

    /// This node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stack configuration (mutable so the `update` command can retune
    /// the beacon period at runtime).
    pub fn config_mut(&mut self) -> &mut StackConfig {
        &mut self.config
    }

    /// Stack configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Subscribe an application process to a port. On conflict the
    /// error names the actual holder: the owning process's pid, or
    /// [`KERNEL_PID`] for a kernel-installed router.
    pub fn subscribe(&mut self, port: Port, pid: ProcessId) -> Result<(), SubscribeError> {
        if let Some(idx) = self.router_on(port) {
            return Err(SubscribeError::PortInUse {
                holder: self.routers[idx].holder,
            });
        }
        self.ports.subscribe(port, pid)
    }

    /// Drop a port subscription.
    pub fn unsubscribe(&mut self, port: Port) {
        self.ports.unsubscribe(port);
    }

    /// Drop all subscriptions of an exiting process.
    pub fn unsubscribe_all(&mut self, pid: ProcessId) {
        self.ports.unsubscribe_all(pid);
    }

    /// Who listens on an application port?
    pub fn lookup(&self, port: Port) -> Option<ProcessId> {
        self.ports.lookup(port)
    }

    /// Install a routing protocol on behalf of the kernel. "Multiple
    /// routing protocols can co-exist, and there is no redundancy
    /// between protocols": each gets its own port, exclusively.
    pub fn register_router(&mut self, router: Box<dyn Router>) -> Result<(), RouterError> {
        self.register_router_as(router, KERNEL_PID)
    }

    /// Install a routing protocol whose port is held by process
    /// `holder` — conflict errors will name that pid.
    pub fn register_router_as(
        &mut self,
        router: Box<dyn Router>,
        holder: ProcessId,
    ) -> Result<(), RouterError> {
        let port = router.port();
        if self.router_on(port).is_some() || self.ports.lookup(port).is_some() {
            return Err(RouterError::PortInUse);
        }
        self.routers.push(RouterSlot { holder, router });
        Ok(())
    }

    fn router_on(&self, port: Port) -> Option<usize> {
        self.routers.iter().position(|s| s.router.port() == port)
    }

    /// Name of the protocol on `port` (traceroute prints this).
    pub fn router_name(&self, port: Port) -> Option<&'static str> {
        self.router_on(port).map(|i| self.routers[i].router.name())
    }

    /// Every installed router as `(port, protocol name)`.
    pub fn router_list(&self) -> Vec<(Port, &'static str)> {
        self.routers
            .iter()
            .map(|s| (s.router.port(), s.router.name()))
            .collect()
    }

    /// Gradient to advertise in beacons: the minimum over routers that
    /// maintain one (the collection tree), or `TREE_UNREACHABLE`.
    pub fn tree_gradient(&self) -> u8 {
        self.routers
            .iter()
            .filter_map(|s| s.router.gradient(&self.neighbors))
            .min()
            .unwrap_or(crate::neighbors::TREE_UNREACHABLE)
    }

    /// Read-only next-hop query against the router on `port` — the
    /// primitive traceroute's per-hop tasks use to learn who to probe.
    pub fn query_next_hop(
        &self,
        port: Port,
        dst: u16,
        my_position: Position,
        locations: &dyn Fn(u16) -> Option<Position>,
    ) -> Option<u16> {
        let idx = self.router_on(port)?;
        let ctx = RouteCtx {
            me: self.me,
            my_position,
            neighbors: &self.neighbors,
            locations,
        };
        self.routers[idx].router.next_hop_query(&ctx, dst)
    }

    /// Allocate the next origin sequence number.
    fn alloc_seq(&mut self) -> u8 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Build a packet originating at this node.
    pub fn make_packet(
        &mut self,
        dst: u16,
        carrying_port: Port,
        app_port: Port,
        payload: Vec<u8>,
        padding_enabled: bool,
    ) -> NetPacket {
        let seq = self.alloc_seq();
        NetPacket::new(
            NetHeader {
                flags: PacketFlags { padding_enabled },
                origin: self.me,
                dst,
                port: carrying_port,
                app_port,
                seq,
                ttl: self.config.default_ttl,
            },
            payload,
        )
    }

    /// Decide the first hop for a packet originated locally.
    ///
    /// With a router on the carrying port, the router decides; otherwise
    /// the packet is a one-hop exchange and goes straight to `dst` (the
    /// management protocol and single-hop ping work this way).
    pub fn route_local(
        &mut self,
        packet: NetPacket,
        my_position: Position,
        locations: &dyn Fn(u16) -> Option<Position>,
    ) -> RxAction {
        if let Some(idx) = self.router_on(packet.header.port) {
            let ctx = RouteCtx {
                me: self.me,
                my_position,
                neighbors: &self.neighbors,
                locations,
            };
            let decision = self.routers[idx].router.decide(&ctx, &packet);
            return match decision {
                RouteDecision::Deliver => self.deliver(packet),
                RouteDecision::Forward { next_hop } => {
                    self.counters.incr_id(CounterId::NetOriginate);
                    RxAction::Forward { next_hop, packet }
                }
                RouteDecision::Drop(reason) => self.drop(reason),
            };
        }
        // One-hop: the link-layer destination is the final destination —
        // unless that destination is this very node, in which case the
        // packet loops back locally instead of being radiated.
        if packet.header.dst == self.me {
            return self.deliver(packet);
        }
        self.counters.incr_id(CounterId::NetOriginate);
        let next_hop = packet.header.dst;
        RxAction::Forward { next_hop, packet }
    }

    /// Process a packet received from the radio.
    ///
    /// Appends this hop's link quality to the padding area (if enabled
    /// and space remains), then routes: a router on the carrying port
    /// decides; otherwise the packet is delivered locally.
    pub fn on_receive(
        &mut self,
        mut packet: NetPacket,
        hop: HopQuality,
        my_position: Position,
        locations: &dyn Fn(u16) -> Option<Position>,
    ) -> RxAction {
        if packet.header.flags.padding_enabled {
            // `padding.capped` counts hops silently lost to the paper's
            // 64-byte packet cap — exactly the blind spot Section IV.C.3
            // warns long paths run into.
            if packet.append_hop_quality(hop) {
                self.counters.incr_id(CounterId::PaddingAppended);
            } else {
                self.counters.incr_id(CounterId::PaddingCapped);
            }
        }
        if let Some(idx) = self.router_on(packet.header.port) {
            let ctx = RouteCtx {
                me: self.me,
                my_position,
                neighbors: &self.neighbors,
                locations,
            };
            let decision = self.routers[idx].router.decide(&ctx, &packet);
            return match decision {
                RouteDecision::Deliver => self.deliver(packet),
                RouteDecision::Forward { next_hop } => {
                    packet.header.ttl = packet.header.ttl.saturating_sub(1);
                    if packet.header.ttl == 0 {
                        self.drop(DropReason::TtlExpired)
                    } else {
                        self.counters.incr_id(CounterId::NetForward);
                        RxAction::Forward { next_hop, packet }
                    }
                }
                RouteDecision::Drop(reason) => self.drop(reason),
            };
        }
        // No router: one-hop packet; must be for us (the MAC already
        // filtered unicast addressing).
        self.deliver(packet)
    }

    fn deliver(&mut self, packet: NetPacket) -> RxAction {
        match self.ports.lookup(packet.header.app_port) {
            Some(pid) => {
                self.counters.incr_id(CounterId::NetDeliver);
                RxAction::DeliverTo { pid, packet }
            }
            None => self.drop(DropReason::NoListener),
        }
    }

    fn drop(&mut self, reason: DropReason) -> RxAction {
        self.counters.incr_id(reason.counter_id());
        RxAction::Drop { reason }
    }

    /// Build this node's next neighbor beacon.
    pub fn make_beacon(&mut self, position: Position) -> BeaconPayload {
        let seq = self.beacon_seq;
        self.beacon_seq = self.beacon_seq.wrapping_add(1);
        BeaconPayload {
            seq,
            position,
            tree_hops: self.tree_gradient(),
            name: self.name.clone(),
            links: self.neighbors.advertisement(MAX_LINK_ENTRIES),
        }
    }

    /// Apply a received neighbor beacon.
    pub fn on_beacon(&mut self, from: u16, beacon: &BeaconPayload, now: SimTime) {
        self.counters.incr_id(CounterId::NetBeaconRx);
        if self.neighbors.get(from).is_none() {
            self.counters.incr_id(CounterId::NetNeighborNew);
        }
        let ours = beacon.quality_of(self.me);
        self.neighbors.on_beacon(
            from,
            beacon.seq,
            &beacon.name,
            beacon.position,
            beacon.tree_hops,
            ours,
            now,
        );
    }

    /// Periodic housekeeping: expire silent neighbors, then (when
    /// [`StackConfig::blacklist_below`] is set) blacklist the ones whose
    /// link quality degraded under the threshold so routing repairs
    /// around them before they go fully silent.
    pub fn housekeeping(&mut self, now: SimTime) {
        let before = self.neighbors.len();
        self.neighbors.expire(now, self.config.neighbor_timeout);
        let expired = before.saturating_sub(self.neighbors.len());
        if expired > 0 {
            self.counters
                .add_id(CounterId::NetNeighborExpired, expired as u64);
        }
        if let Some(threshold) = self.config.blacklist_below {
            let (tripped, _recovered) = self
                .neighbors
                .blacklist_degraded(threshold, threshold + 0.15);
            if tripped > 0 {
                self.counters
                    .add_id(CounterId::NetNeighborBlacklisted, tripped as u64);
            }
        }
    }

    /// Cold-reboot the stack's volatile state: the neighbor table and
    /// sequence counters live in RAM and do not survive a power cycle.
    /// Port subscriptions, routers, and the counter store (simulator
    /// instrumentation, not mote RAM) are preserved.
    pub fn on_reboot(&mut self) {
        self.neighbors.clear();
        self.next_seq = 0;
        self.beacon_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Flooding, Geographic};

    fn locs(id: u16) -> Option<Position> {
        Some(Position::new(10.0 * id as f64, 0.0))
    }

    fn stack(me: u16) -> Stack {
        Stack::new(me, format!("192.168.0.{}", me + 1), StackConfig::default())
    }

    fn hop() -> HopQuality {
        HopQuality { lqi: 106, rssi: -2 }
    }

    /// Populate strong neighbors in a line around `me`.
    fn add_line_neighbors(s: &mut Stack, ids: &[u16]) {
        for &id in ids {
            for seq in 0..16u16 {
                s.neighbors.on_beacon(
                    id,
                    seq,
                    &format!("n{id}"),
                    locs(id).unwrap(),
                    (id as u8).min(254),
                    Some(255),
                    SimTime::from_millis(seq as u64),
                );
            }
        }
    }

    #[test]
    fn one_hop_send_goes_straight_to_destination() {
        let mut s = stack(1);
        let p = s.make_packet(2, Port::PING, Port::PING, vec![1, 2], false);
        match s.route_local(p, locs(1).unwrap(), &locs) {
            RxAction::Forward { next_hop, .. } => assert_eq!(next_hop, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn routed_send_consults_router() {
        let mut s = stack(2);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        add_line_neighbors(&mut s, &[1, 3]);
        let p = s.make_packet(5, Port::GEOGRAPHIC, Port::PING, vec![0; 16], true);
        match s.route_local(p, locs(2).unwrap(), &locs) {
            RxAction::Forward { next_hop, .. } => assert_eq!(next_hop, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn receive_appends_padding_then_forwards() {
        let mut s = stack(2);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        add_line_neighbors(&mut s, &[1, 3]);
        let mut origin_stack = stack(1);
        let p = origin_stack.make_packet(5, Port::GEOGRAPHIC, Port::PING, vec![0; 16], true);
        match s.on_receive(p, hop(), locs(2).unwrap(), &locs) {
            RxAction::Forward { next_hop, packet } => {
                assert_eq!(next_hop, 3);
                assert_eq!(packet.hop_qualities().len(), 1);
                assert_eq!(packet.hop_qualities()[0].lqi, 106);
                assert_eq!(packet.header.ttl, 31); // decremented
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn receive_delivers_to_subscriber_with_padding() {
        let mut s = stack(5);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        s.subscribe(Port::PING, 9).unwrap();
        let mut origin_stack = stack(1);
        let p = origin_stack.make_packet(5, Port::GEOGRAPHIC, Port::PING, vec![0; 16], true);
        match s.on_receive(p, hop(), locs(5).unwrap(), &locs) {
            RxAction::DeliverTo { pid, packet } => {
                assert_eq!(pid, 9);
                // The delivery hop's quality is recorded too.
                assert_eq!(packet.hop_qualities().len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_listener_drops() {
        let mut s = stack(5);
        let mut origin_stack = stack(1);
        let p = origin_stack.make_packet(5, Port::PING, Port::PING, vec![], false);
        match s.on_receive(p, hop(), locs(5).unwrap(), &locs) {
            RxAction::Drop { reason } => assert_eq!(reason, DropReason::NoListener),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn router_ports_are_exclusive() {
        let mut s = stack(1);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        assert_eq!(
            s.register_router(Box::new(Flooding::new(Port::GEOGRAPHIC))),
            Err(RouterError::PortInUse)
        );
        // Apps can't squat a router port either.
        assert!(s.subscribe(Port::GEOGRAPHIC, 3).is_err());
        // And a router can't take an app port.
        s.subscribe(Port(20), 3).unwrap();
        assert_eq!(
            s.register_router(Box::new(Flooding::new(Port(20)))),
            Err(RouterError::PortInUse)
        );
    }

    #[test]
    fn multiple_routers_coexist() {
        let mut s = stack(1);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        s.register_router(Box::new(Flooding::new(Port::FLOODING)))
            .unwrap();
        assert_eq!(
            s.router_name(Port::GEOGRAPHIC),
            Some("geographic forwarding")
        );
        assert_eq!(s.router_name(Port::FLOODING), Some("flooding"));
        assert_eq!(s.router_name(Port(99)), None);
    }

    #[test]
    fn origin_sequence_increments() {
        let mut s = stack(1);
        let p0 = s.make_packet(2, Port::PING, Port::PING, vec![], false);
        let p1 = s.make_packet(2, Port::PING, Port::PING, vec![], false);
        assert_eq!(p0.header.seq.wrapping_add(1), p1.header.seq);
    }

    #[test]
    fn beacons_carry_gradient_name_and_links() {
        let mut s = stack(2);
        s.register_router(Box::new(crate::routing::CollectionTree::new(
            Port::TREE,
            false,
        )))
        .unwrap();
        add_line_neighbors(&mut s, &[1]);
        let b = s.make_beacon(locs(2).unwrap());
        assert_eq!(b.name, "192.168.0.3");
        assert_eq!(b.tree_hops, 2); // neighbor 1 advertises gradient 1
        assert_eq!(b.links.len(), 1);
        let b2 = s.make_beacon(locs(2).unwrap());
        assert_eq!(b2.seq, b.seq + 1);
    }

    #[test]
    fn beacon_reception_populates_table_and_outbound() {
        let mut a = stack(1);
        let mut b = stack(2);
        // b hears a few beacons from a…
        for _ in 0..4 {
            let beacon = a.make_beacon(locs(1).unwrap());
            b.on_beacon(1, &beacon, SimTime::from_millis(1));
        }
        // …then a hears b's beacon, which advertises a's inbound quality.
        let from_b = b.make_beacon(locs(2).unwrap());
        a.on_beacon(2, &from_b, SimTime::from_millis(2));
        let entry = a.neighbors.get(2).unwrap();
        assert!(entry.outbound.is_some());
        assert!(entry.outbound.unwrap() > 0.9);
    }

    #[test]
    fn housekeeping_expires_silent_neighbors() {
        let mut s = stack(1);
        s.neighbors.touch(7, SimTime::ZERO);
        s.housekeeping(SimTime::from_secs(60));
        assert!(s.neighbors.get(7).is_none());
    }

    #[test]
    fn subscribe_conflict_names_the_real_holder() {
        let mut s = stack(1);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        s.register_router_as(Box::new(Flooding::new(Port::FLOODING)), 7)
            .unwrap();
        s.subscribe(Port(20), 3).unwrap();
        // Kernel-installed router: holder is the kernel pseudo-pid…
        assert_eq!(
            s.subscribe(Port::GEOGRAPHIC, 9),
            Err(SubscribeError::PortInUse { holder: KERNEL_PID })
        );
        // …a process-held router names that process…
        assert_eq!(
            s.subscribe(Port::FLOODING, 9),
            Err(SubscribeError::PortInUse { holder: 7 })
        );
        // …and an app-held port names the app (via the port map).
        assert_eq!(
            s.subscribe(Port(20), 9),
            Err(SubscribeError::PortInUse { holder: 3 })
        );
    }

    #[test]
    fn counters_track_forward_deliver_and_padding_cap() {
        let mut s = stack(2);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        add_line_neighbors(&mut s, &[1, 3]);
        let mut origin_stack = stack(1);
        // A full payload leaves no padding room: the hop is capped.
        let p = origin_stack.make_packet(
            5,
            Port::GEOGRAPHIC,
            Port::PING,
            vec![0; crate::packet::PAYLOAD_AREA],
            true,
        );
        match s.on_receive(p, hop(), locs(2).unwrap(), &locs) {
            RxAction::Forward { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.counters().get("net.forward"), 1);
        assert_eq!(s.counters().get("padding.capped"), 1);
        assert_eq!(s.counters().get("padding.appended"), 0);
        // A short payload has room: the hop is appended.
        let p = origin_stack.make_packet(5, Port::GEOGRAPHIC, Port::PING, vec![0; 16], true);
        s.on_receive(p, hop(), locs(2).unwrap(), &locs);
        assert_eq!(s.counters().get("padding.appended"), 1);
        // Delivery and no-listener drops are counted too.
        let p = origin_stack.make_packet(2, Port::PING, Port::PING, vec![], false);
        s.on_receive(p, hop(), locs(2).unwrap(), &locs);
        assert_eq!(s.counters().get("net.drop.NoListener"), 1);
        s.subscribe(Port::PING, 4).unwrap();
        let p = origin_stack.make_packet(2, Port::PING, Port::PING, vec![], false);
        s.on_receive(p, hop(), locs(2).unwrap(), &locs);
        assert_eq!(s.counters().get("net.deliver"), 1);
    }

    #[test]
    fn counters_track_beacons_and_neighbor_churn() {
        let mut a = stack(1);
        let mut b = stack(2);
        for _ in 0..3 {
            let beacon = a.make_beacon(locs(1).unwrap());
            b.on_beacon(1, &beacon, SimTime::from_millis(1));
        }
        assert_eq!(b.counters().get("net.beacon_rx"), 3);
        assert_eq!(b.counters().get("net.neighbor_new"), 1);
        b.housekeeping(SimTime::from_secs(60));
        assert_eq!(b.counters().get("net.neighbor_expired"), 1);
    }

    #[test]
    fn ttl_exhaustion_on_forward() {
        let mut s = stack(2);
        s.register_router(Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
        add_line_neighbors(&mut s, &[3]);
        let mut origin_stack = stack(1);
        let mut p = origin_stack.make_packet(5, Port::GEOGRAPHIC, Port::PING, vec![], false);
        p.header.ttl = 1;
        match s.on_receive(p, hop(), locs(2).unwrap(), &locs) {
            RxAction::Drop { reason } => assert_eq!(reason, DropReason::TtlExpired),
            other => panic!("{other:?}"),
        }
    }
}
