//! Link-quality padding entries.
//!
//! Each hop contributes exactly two bytes — one LQI byte and one signed
//! RSSI byte — appended past the application payload (Section IV.C.3).
//! "Note that the packet will be longer and longer when it is delivered
//! along the path": the entries accumulate in hop order, so the source
//! can reconstruct the per-hop quality profile of the whole path.

use serde::{Deserialize, Serialize};

/// One hop's link-quality sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopQuality {
    /// CC2420 LQI (50–110).
    pub lqi: u8,
    /// CC2420 RSSI register value.
    pub rssi: i8,
}

impl HopQuality {
    /// Bytes one hop occupies on the wire.
    pub const WIRE_BYTES: usize = 2;

    /// Append this hop's two bytes to a padding buffer.
    ///
    /// This is the raw serialization primitive (also used when hop
    /// lists are re-encoded into management replies). For in-flight
    /// padding use [`HopQuality::append_capped`], which enforces the
    /// paper's 64-byte packet cap.
    pub fn append_to(self, buf: &mut Vec<u8>) {
        buf.push(self.lqi);
        buf.push(self.rssi as u8);
    }

    /// Append this hop to a packet's padding buffer only if doing so
    /// keeps `payload_len + padding` within `cap` bytes (Section
    /// IV.C.3's 64-byte payload area). Returns whether the hop was
    /// recorded; at the cap the buffer gains no bytes at all.
    pub fn append_capped(
        self,
        padding: &mut crate::packet::PacketBytes,
        payload_len: usize,
        cap: usize,
    ) -> bool {
        if payload_len + padding.len() + Self::WIRE_BYTES > cap {
            return false;
        }
        padding.push(self.lqi);
        padding.push(self.rssi as u8);
        true
    }

    /// Parse every complete hop entry from a padding buffer (a trailing
    /// odd byte, which a conformant stack never produces, is ignored).
    pub fn parse_all(buf: &[u8]) -> Vec<HopQuality> {
        buf.chunks_exact(Self::WIRE_BYTES)
            .map(|c| HopQuality {
                lqi: c[0],
                rssi: c[1] as i8,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bytes_per_hop() {
        let mut buf = Vec::new();
        HopQuality { lqi: 108, rssi: -1 }.append_to(&mut buf);
        assert_eq!(buf.len(), HopQuality::WIRE_BYTES);
    }

    #[test]
    fn round_trip_preserves_sign() {
        let hops = [
            HopQuality { lqi: 110, rssi: 8 },
            HopQuality { lqi: 50, rssi: -50 },
            HopQuality { lqi: 106, rssi: -1 },
        ];
        let mut buf = Vec::new();
        for h in hops {
            h.append_to(&mut buf);
        }
        assert_eq!(HopQuality::parse_all(&buf), hops);
    }

    #[test]
    fn trailing_odd_byte_ignored() {
        let mut buf = Vec::new();
        HopQuality { lqi: 100, rssi: 0 }.append_to(&mut buf);
        buf.push(0xEE);
        assert_eq!(HopQuality::parse_all(&buf).len(), 1);
    }

    #[test]
    fn empty_buffer() {
        assert!(HopQuality::parse_all(&[]).is_empty());
    }

    #[test]
    fn capped_append_stops_at_the_area_boundary() {
        let hop = HopQuality { lqi: 100, rssi: 0 };
        let mut buf = crate::packet::PacketBytes::new();
        // 16-byte payload in a 64-byte area: exactly 24 hops fit.
        let mut appended = 0;
        while hop.append_capped(&mut buf, 16, 64) {
            appended += 1;
        }
        assert_eq!(appended, 24);
        assert_eq!(buf.len(), 48);
        // A frame at the cap gains no further bytes — ever.
        assert!(!hop.append_capped(&mut buf, 16, 64));
        assert_eq!(buf.len(), 48);
        // An odd single free byte is not enough for a 2-byte entry.
        let mut odd = crate::packet::PacketBytes::new();
        assert!(!hop.append_capped(&mut odd, 63, 64));
        assert!(odd.is_empty());
    }
}
