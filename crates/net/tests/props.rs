//! Property tests for the network layer: packets, padding, beacons,
//! ports, and the link estimator.

use lv_net::beacon::{BeaconPayload, MAX_LINK_ENTRIES, MAX_NAME_LEN};
use lv_net::estimator::LinkEstimator;
use lv_net::packet::{NetHeader, NetPacket, PacketFlags, Port, PAYLOAD_AREA};
use lv_net::padding::HopQuality;
use lv_net::ports::PortMap;
use lv_radio::units::Position;
use proptest::prelude::*;

fn arb_header(padding: bool) -> impl Strategy<Value = NetHeader> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        1u8..,
    )
        .prop_map(move |(origin, dst, port, app_port, seq, ttl)| NetHeader {
            flags: PacketFlags {
                padding_enabled: padding,
            },
            origin,
            dst,
            port: Port(port),
            app_port: Port(app_port),
            seq,
            ttl,
        })
}

proptest! {
    /// Packets round-trip for any payload within the area.
    #[test]
    fn packet_round_trip(
        header in arb_header(true),
        payload in proptest::collection::vec(any::<u8>(), 0..=PAYLOAD_AREA),
        hops in proptest::collection::vec((50u8..=110, -50i8..=30), 0..40),
    ) {
        let mut p = NetPacket::new(header, payload);
        for (lqi, rssi) in hops {
            p.append_hop_quality(HopQuality { lqi, rssi });
        }
        let decoded = NetPacket::decode(&p.encode()).expect("round trip");
        prop_assert_eq!(decoded, p);
    }

    /// The padding invariants hold under ANY append sequence: payload
    /// bytes never change, payload+padding never exceeds the 64-byte
    /// area, and the number of recorded hops is exactly
    /// min(appends, floor((64 − payload) / 2)).
    #[test]
    fn padding_invariants(
        payload_len in 0usize..=PAYLOAD_AREA,
        appends in 0usize..60,
    ) {
        let header = NetHeader {
            flags: PacketFlags { padding_enabled: true },
            origin: 1, dst: 2, port: Port(10), app_port: Port(2), seq: 0, ttl: 9,
        };
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        let mut p = NetPacket::new(header, payload.clone());
        let mut accepted = 0;
        for i in 0..appends {
            if p.append_hop_quality(HopQuality { lqi: 100, rssi: i as i8 }) {
                accepted += 1;
            }
        }
        let budget = (PAYLOAD_AREA - payload_len) / HopQuality::WIRE_BYTES;
        prop_assert_eq!(accepted, appends.min(budget));
        prop_assert_eq!(p.hop_qualities().len(), accepted);
        prop_assert_eq!(&p.payload, &payload, "payload mutated by padding");
        prop_assert!(p.payload.len() + p.padding.len() <= PAYLOAD_AREA);
    }

    /// The packet decoder never panics on arbitrary input.
    #[test]
    fn packet_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = NetPacket::decode(&bytes);
    }

    /// Beacons round-trip (within field caps) and never exceed the
    /// payload area.
    #[test]
    fn beacon_round_trip(
        seq in any::<u16>(),
        x in -1000.0f64..1000.0,
        y in -1000.0f64..1000.0,
        tree in any::<u8>(),
        name in "[a-z0-9.]{0,15}",
        links in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..=MAX_LINK_ENTRIES),
    ) {
        let b = BeaconPayload {
            seq,
            position: Position::new(x, y),
            tree_hops: tree,
            name: name.clone(),
            links,
        };
        let bytes = b.encode();
        prop_assert!(bytes.len() <= PAYLOAD_AREA);
        let d = BeaconPayload::decode(&bytes).expect("round trip");
        prop_assert_eq!(d.seq, b.seq);
        prop_assert_eq!(d.tree_hops, b.tree_hops);
        prop_assert_eq!(&d.name[..], &name[..name.len().min(MAX_NAME_LEN)]);
        prop_assert_eq!(d.links, b.links);
        prop_assert!((d.position.x - x).abs() < 1e-3);
    }

    /// The beacon decoder never panics on arbitrary input.
    #[test]
    fn beacon_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let _ = BeaconPayload::decode(&bytes);
    }

    /// Port-map invariant: after any subscribe/unsubscribe sequence, a
    /// port maps to at most one pid and lookups agree with the last
    /// successful operation.
    #[test]
    fn port_map_exclusive(ops in proptest::collection::vec((any::<u8>(), 1u32..8, any::<bool>()), 0..60)) {
        let mut pm = PortMap::new();
        let mut model = std::collections::BTreeMap::<u8, u32>::new();
        for (port, pid, subscribe) in ops {
            if subscribe {
                let res = pm.subscribe(Port(port), pid);
                match model.get(&port) {
                    Some(&holder) if holder != pid => prop_assert!(res.is_err()),
                    _ => {
                        prop_assert!(res.is_ok());
                        model.insert(port, pid);
                    }
                }
            } else {
                pm.unsubscribe(Port(port));
                model.remove(&port);
            }
        }
        for (&port, &pid) in &model {
            prop_assert_eq!(pm.lookup(Port(port)), Some(pid));
        }
        prop_assert_eq!(pm.len(), model.len());
    }

    /// The estimator's quality is always within [0, 1] no matter what
    /// sequence-number stream it sees.
    #[test]
    fn estimator_bounded(seqs in proptest::collection::vec(any::<u16>(), 0..200)) {
        let mut e = LinkEstimator::new();
        for s in seqs {
            e.on_beacon(s);
            let q = e.quality();
            prop_assert!((0.0..=1.0).contains(&q), "q = {q}");
        }
    }
}
