//! Bench for **Fig. 6** — per-hop RSSI at power levels 10 and 25.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = lv_testbed::experiments::fig6_rssi_vs_power(42);
    println!("Fig. 6 (seed 42): hop → RSSI fwd/bwd at power 10 and 25");
    for r in &rows {
        println!(
            "  hop {:>2}: p10 {:>4}/{:>4}   p25 {:>4}/{:>4}",
            r.hop, r.fwd_p10, r.bwd_p10, r.fwd_p25, r.bwd_p25
        );
    }
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("rssi_vs_power_8hop", |b| {
        b.iter(|| black_box(lv_testbed::experiments::fig6_rssi_vs_power(black_box(42))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
