//! Simulator throughput: how much deployment time one wall-clock second
//! buys, at the paper's scale (30 nodes) and beyond. Not a paper figure
//! — it documents that the substrate comfortably out-runs the physical
//! testbed it replaces (a prerequisite for the interactive workflow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lv_kernel::Network;
use lv_sim::SimDuration;
use lv_testbed::Topology;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_scale");
    g.sample_size(10);
    for &n in &[9usize, 30, 100] {
        g.bench_with_input(BenchmarkId::new("10s_of_beaconing", n), &n, |b, &n| {
            b.iter(|| {
                let topo = Topology::RandomDisk {
                    n,
                    side: (n as f64).sqrt() * 8.0,
                };
                let medium = topo.medium(Default::default(), 42);
                let mut net = Network::new(medium, 42);
                net.run_for(SimDuration::from_secs(10));
                black_box(net.counters.get("tx.beacon"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
