//! Benches for the design-choice ablations of `DESIGN.md` §5:
//! traceroute vs multi-hop ping, loss-adaptive batching, random
//! response backoff, the shared kernel neighbor table, and the
//! link-quality padding mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for row in lv_testbed::experiments::ablation_traceroute_vs_ping(42) {
        println!(
            "ablation {:<28} {:<16} {:>10.0}",
            row.arm, row.metric, row.value
        );
    }
    for row in lv_testbed::experiments::ablation_neighbor_table() {
        println!(
            "ablation {:<28} {:<16} {:>10.0}",
            row.arm, row.metric, row.value
        );
    }

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("batch_adaptive", |b| {
        b.iter(|| {
            black_box(lv_testbed::experiments::ablation_batch_adaptive(black_box(
                42,
            )))
        })
    });
    g.bench_function("response_backoff", |b| {
        b.iter(|| {
            black_box(lv_testbed::experiments::ablation_response_backoff(
                black_box(42),
                8,
            ))
        })
    });
    g.bench_function("padding", |b| {
        b.iter(|| black_box(lv_testbed::experiments::ablation_padding(black_box(42))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
