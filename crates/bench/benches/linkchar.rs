//! Bench for the substrate-validation link characterization (PRR/RSSI/
//! LQI vs distance) — not a paper figure, but the curve the radio model
//! must reproduce for every other figure to be meaningful.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = lv_testbed::experiments::characterize_links(42);
    println!("link characterization (seed 42): distance → PRR");
    for r in rows.iter().step_by(3) {
        println!("  {:>5.1} m: PRR {:.2}", r.distance_m, r.prr);
    }
    let mut g = c.benchmark_group("linkchar");
    g.sample_size(10);
    g.bench_function("prr_vs_distance", |b| {
        b.iter(|| black_box(lv_testbed::experiments::characterize_links(black_box(42))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
