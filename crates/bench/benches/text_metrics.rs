//! Benches for the paper's in-text numeric claims: the 500 ms fixed
//! response window (T-resp), the sample one-hop ping (T-ping), the
//! padding budget (T-pad), and the two-packet one-hop overhead (T-ovh1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let tping = lv_testbed::experiments::text_ping_sample(42);
    println!(
        "T-ping (seed 42): RTT = {:.1} ms, LQI = {}/{}, RSSI = {}/{}, Queue = {}/{}",
        tping.rtt_ms,
        tping.lqi_fwd,
        tping.lqi_bwd,
        tping.rssi_fwd,
        tping.rssi_bwd,
        tping.queue_fwd,
        tping.queue_bwd
    );
    let tpad = lv_testbed::experiments::text_padding_budget(42);
    println!(
        "T-pad (seed 42): {} entries observed over a {}-hop path (analytic max {})",
        tpad.observed_entries, tpad.path_hops, tpad.analytic_max_hops
    );
    let tovh = lv_testbed::experiments::text_onehop_overhead(42);
    println!(
        "T-ovh1 (seed 42): {} data packets, {} acks",
        tovh.data_packets, tovh.acks
    );

    let mut g = c.benchmark_group("text_metrics");
    g.sample_size(10);
    g.bench_function("text_response_delay", |b| {
        b.iter(|| {
            black_box(lv_testbed::experiments::text_response_delays(
                black_box(42),
                2,
            ))
        })
    });
    g.bench_function("text_ping_rtt", |b| {
        b.iter(|| black_box(lv_testbed::experiments::text_ping_sample(black_box(42))))
    });
    g.bench_function("text_onehop_overhead", |b| {
        b.iter(|| black_box(lv_testbed::experiments::text_onehop_overhead(black_box(42))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
