//! Bench for **Fig. 7** — traceroute overhead vs path length.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = lv_testbed::experiments::fig7_overhead(42);
    println!("Fig. 7 (seed 42): path length → control packets (acks)");
    for r in &rows {
        println!(
            "  {:>2} hops: {:>3} packets ({} acks)",
            r.hops, r.control_packets, r.acks
        );
    }
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("overhead_sweep_1_to_8", |b| {
        b.iter(|| black_box(lv_testbed::experiments::fig7_overhead(black_box(42))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
