//! Bench for the multi-trial engine — parallel speedup over serial.
//!
//! Runs the same 16-trial Fig. 5 aggregate on worker pools of 1, 2 and
//! 4 threads. Results are bit-identical across pool sizes (asserted in
//! `crates/testbed/tests/runner.rs`); only wall-clock changes, which is
//! what this bench demonstrates on multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lv_testbed::TrialRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("runner_parallel: {cpus} CPU(s) available");
    let mut g = c.benchmark_group("runner");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("fig5agg_16trials", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let runner = TrialRunner::new(black_box(42), 16).workers(workers);
                    black_box(lv_testbed::experiments::fig5_traceroute_delay_agg(&runner))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
