//! Bench for **Fig. 5** — traceroute response delay per hop.
//!
//! Criterion times the full experiment (build 8-hop corridor, warm up,
//! run one traceroute, collect per-hop report arrivals); the figure's
//! values themselves are printed once at startup so `cargo bench`
//! output doubles as a regeneration log.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the regenerated figure once.
    let rows = lv_testbed::experiments::fig5_traceroute_delay(42);
    println!("Fig. 5 (seed 42): hop → report delay");
    for r in &rows {
        println!("  hop {:>2}: {:>8.1} ms", r.hop, r.delay_ms);
    }
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("traceroute_delay_8hop", |b| {
        b.iter(|| {
            black_box(lv_testbed::experiments::fig5_traceroute_delay(black_box(
                42,
            )))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
