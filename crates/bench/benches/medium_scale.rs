//! Cached vs brute-force medium at benchmark scale: times one point of
//! the PR-3 scaling workload (beacon + traceroute, multi-trial) with the
//! reachability cache on and off. Criterion keeps the comparison honest
//! over time; the full 100→1000-node sweep lives in `figures --scale`
//! (and `scripts/bench.sh` checks it into `BENCH_PR3.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lv_testbed::experiments::scale_point;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("medium_scale");
    g.sample_size(10);
    let n = 100usize;
    for cached in [true, false] {
        let label = if cached { "cached" } else { "brute" };
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| {
                let row = scale_point(n, 42, cached);
                black_box(row.events)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
