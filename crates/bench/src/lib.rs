#![warn(missing_docs)]

//! # lv-bench — figure regeneration harness and criterion benches
//!
//! Two entry points:
//!
//! * the `figures` binary (`cargo run -p lv-bench --bin figures --release`)
//!   re-runs every experiment of `DESIGN.md` §4 and prints the rows the
//!   paper's tables and figures contain, as text and (with `--json`)
//!   machine-readable lines;
//! * the criterion benches (`cargo bench -p lv-bench`) time the same
//!   drivers, one bench per table/figure, plus the ablations of §5.
//!
//! This library holds the shared table-formatting helpers.

use std::fmt::Display;

/// Render rows as a fixed-width text table.
pub fn table<R: Display>(title: &str, header: &str, rows: &[R]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len().max(20)));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{r}\n"));
    }
    out
}

/// A displayable key-value pair line.
pub struct Line(pub String);

impl Display for Line {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![Line("a  1".into()), Line("b  2".into())];
        let t = table("T", "k  v", &rows);
        assert!(t.contains("== T =="));
        assert!(t.contains("a  1"));
        assert_eq!(t.lines().count(), 5);
    }
}
