//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p lv-bench --bin figures --release -- all
//! cargo run -p lv-bench --bin figures --release -- fig5 --seed 7
//! cargo run -p lv-bench --bin figures --release -- fig7 --json
//! ```
//!
//! Experiment ids follow `DESIGN.md` §4: fig5, fig6, fig7, tresp,
//! tping, tpad, tfoot, tovh1, plus `ablations` for §5.

use lv_bench::{table, Line};
use lv_testbed::experiments as exp;
use lv_testbed::results::to_json_lines;

struct Args {
    what: Vec<String>,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut what = Vec::new();
    let mut seed = 42u64;
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <u64>");
            }
            "--json" => json = true,
            other => what.push(other.to_owned()),
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "fig5", "fig6", "fig7", "tresp", "tping", "tpad", "tfoot", "tovh1", "linkchar",
            "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Args { what, seed, json }
}

fn main() {
    let args = parse_args();
    for what in &args.what {
        match what.as_str() {
            "fig5" => fig5(args.seed, args.json),
            "fig6" => fig6(args.seed, args.json),
            "fig7" => fig7(args.seed, args.json),
            "tresp" => tresp(args.seed, args.json),
            "tping" => tping(args.seed, args.json),
            "tpad" => tpad(args.seed, args.json),
            "tfoot" => tfoot(args.json),
            "tovh1" => tovh1(args.seed, args.json),
            "linkchar" => linkchar(args.seed, args.json),
            "ablations" => ablations(args.seed, args.json),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

fn fig5(seed: u64, json: bool) {
    let rows = exp::fig5_traceroute_delay(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| Line(format!("{:>3}   {:>10.1}", r.hop, r.delay_ms)))
        .collect();
    print!(
        "{}",
        table(
            "Fig. 5 — traceroute response delay per hop (8-hop corridor)",
            "hop   delay [ms]",
            &lines
        )
    );
}

fn fig6(seed: u64, json: bool) {
    let rows = exp::fig6_rssi_vs_power(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>3}   {:>8} {:>8}   {:>8} {:>8}",
                r.hop, r.fwd_p10, r.bwd_p10, r.fwd_p25, r.bwd_p25
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Fig. 6 — per-hop RSSI readings, forward/backward, power 10 vs 25",
            "hop   fwd@10   bwd@10     fwd@25   bwd@25",
            &lines
        )
    );
}

fn fig7(seed: u64, json: bool) {
    let rows = exp::fig7_overhead(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>4}   {:>15} {:>8}",
                r.hops, r.control_packets, r.acks
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Fig. 7 — traceroute command overhead vs path length",
            "hops   control packets     acks",
            &lines
        )
    );
}

fn tresp(seed: u64, json: bool) {
    let rows = exp::text_response_delays(seed, 10);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<20} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9}",
                r.command, r.trials, r.mean_ms, r.min_ms, r.max_ms, r.answered
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "T-resp — fixed-window command response delays",
            "command              trials  mean[ms]   min[ms]   max[ms]  answered",
            &lines
        )
    );
}

fn tping(seed: u64, json: bool) {
    let r = exp::text_ping_sample(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-ping — sample one-hop ping (paper §III.B.3) ==");
    println!(
        "RTT = {:.1} ms, LQI = {}/{}, RSSI = {}/{}, Queue = {}/{}",
        r.rtt_ms, r.lqi_fwd, r.lqi_bwd, r.rssi_fwd, r.rssi_bwd, r.queue_fwd, r.queue_bwd
    );
    println!("Power = {}, Channel = {}", r.power, r.channel);
}

fn tpad(seed: u64, json: bool) {
    let r = exp::text_padding_budget(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-pad — link-quality padding budget (paper §IV.C.3) ==");
    println!(
        "probe payload = {} B, {} B/hop, analytic max = {} hops",
        r.probe_payload, r.bytes_per_hop, r.analytic_max_hops
    );
    println!(
        "path of {} hops → observed {} recorded hop entries",
        r.path_hops, r.observed_entries
    );
}

fn tfoot(json: bool) {
    let rows = exp::text_footprints();
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<22} {:>8} {:>8}",
                r.component, r.flash_bytes, r.ram_bytes
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "T-foot — component footprints (paper §IV.C.5/6)",
            "component              flash[B]   ram[B]",
            &lines
        )
    );
}

fn tovh1(seed: u64, json: bool) {
    let r = exp::text_onehop_overhead(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-ovh1 — one-hop command overhead (paper §V.C) ==");
    println!(
        "{}: {} data packets (+{} link acks)",
        r.command, r.data_packets, r.acks
    );
}

/// Render a metric value: scientific for tiny magnitudes (energy in
/// joules), one decimal otherwise.
fn format_value(v: f64) -> String {
    if v != 0.0 && v.abs() < 0.1 {
        format!("{v:.3e}")
    } else {
        format!("{v:.1}")
    }
}

fn linkchar(seed: u64, json: bool) {
    let rows = exp::characterize_links(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>6.1}   {:>5.2}   {:>8.1}   {:>7.1}",
                r.distance_m, r.prr, r.mean_rssi, r.mean_lqi
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Link characterization — PRR / RSSI / LQI vs distance (substrate validation)",
            "  d[m]     PRR       RSSI       LQI",
            &lines
        )
    );
}

fn ablations(seed: u64, json: bool) {
    let mut rows = Vec::new();
    rows.extend(exp::ablation_traceroute_vs_ping(seed));
    rows.extend(exp::ablation_batch_adaptive(seed));
    rows.extend(exp::ablation_response_backoff(seed, 8));
    rows.extend(exp::ablation_beacon_rate(seed));
    rows.extend(exp::ablation_energy(seed));
    rows.extend(exp::ablation_neighbor_table());
    rows.extend(exp::ablation_padding(seed));
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| Line(format!("{:<34} {:<22} {:>14}", r.arm, r.metric, format_value(r.value))))
        .collect();
    print!(
        "{}",
        table(
            "Ablations (DESIGN.md §5)",
            "arm                                metric                        value",
            &lines
        )
    );
}
