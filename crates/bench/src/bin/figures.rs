//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p lv-bench --bin figures --release -- all
//! cargo run -p lv-bench --bin figures --release -- fig5 --seed 7
//! cargo run -p lv-bench --bin figures --release -- fig7 --json
//! cargo run -p lv-bench --bin figures --release -- fig5agg --trials 32 --workers 4
//! cargo run -p lv-bench --bin figures --release -- --report
//! ```
//!
//! Experiment ids follow `DESIGN.md` §4: fig5, fig6, fig7, tresp,
//! tping, tpad, tfoot, tovh1, plus `ablations` for §5. Each figure
//! also has a multi-trial aggregate variant (`fig5agg`, `fig6agg`,
//! `fig7agg`, `linkcharagg`) reporting mean ± 95% CI over `--trials`
//! independent trials run on `--workers` threads, plus `failures` for
//! the failure-injection sweep.
//!
//! `--report` replaces the figure run with a flight-recorder session:
//! it drives a diagnosis sequence (ping + traceroute) over the 8-hop
//! corridor and prints the network-wide [`ObservabilityReport`] as
//! JSON (DESIGN.md §9).
//!
//! CI sessions (DESIGN.md §11):
//!
//! * `--digests` prints the FNV-1a determinism digest of fig5/6/7;
//!   `--check-digests goldens/figure_digests.json` additionally
//!   compares against the checked-in goldens and exits non-zero on any
//!   drift — the regression gate that locks in bit-identical replays.
//! * `--dynamics` runs the degradation-ramp soak: an 8-hop path whose
//!   middle link loses 5 dB every 10 s while traceroute watches the
//!   weakening hop. Hard-fails unless the hop is *detected* before the
//!   end-to-end ping dies and the path *recovers* after the repair.
//! * `--diagnosis` replays the seeded fault corpus with the closed-loop
//!   diagnosis engine armed and scores its episodes against the ground
//!   truth. Hard-fails unless precision ≥ 0.9, recall ≥ 0.8, every
//!   link ramp is detected before the end-to-end ping dies, and the
//!   whole report replays byte-identically.
//! * `--check-speedup BENCH_PR3.json` re-reads a `--scale --json`
//!   artifact and fails if the largest deployment's cached-vs-brute
//!   speedup fell below 3×.
//! * `--check-events-rate BENCH_PR3.json` reads the *committed*
//!   scaling artifact, re-measures single-threaded event throughput at
//!   its largest deployment, and fails if the fresh cached rate fell
//!   below 4× the artifact's brute-force (pre-optimization) baseline —
//!   or if the fresh digest drifted from the committed one. Run this
//!   against the checked-in artifact *before* anything regenerates it.
//!
//! [`ObservabilityReport`]: liteview::ObservabilityReport

use lv_bench::{table, Line};
use lv_testbed::experiments as exp;
use lv_testbed::results::to_json_lines;
use lv_testbed::{AggregateStats, TrialRunner};

struct Args {
    what: Vec<String>,
    seed: u64,
    trials: usize,
    workers: Option<usize>,
    json: bool,
    report: bool,
    scale: bool,
    sizes: Vec<usize>,
    dynamics: bool,
    diagnosis: bool,
    digests: bool,
    check_digests: Option<String>,
    check_speedup: Option<String>,
    check_events_rate: Option<String>,
}

impl Args {
    /// The trial runner every aggregate experiment shares.
    fn runner(&self) -> TrialRunner {
        let r = TrialRunner::new(self.seed, self.trials);
        match self.workers {
            Some(w) => r.workers(w),
            None => r,
        }
    }
}

fn parse_args() -> Args {
    let mut what = Vec::new();
    let mut seed = 42u64;
    let mut trials = 8usize;
    let mut workers = None;
    let mut json = false;
    let mut report = false;
    let mut scale = false;
    let mut sizes = vec![100, 250, 500, 1000];
    let mut dynamics = false;
    let mut diagnosis = false;
    let mut digests = false;
    let mut check_digests = None;
    let mut check_speedup = None;
    let mut check_events_rate = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--report" => report = true,
            "--scale" => scale = true,
            "--dynamics" => dynamics = true,
            "--diagnosis" => diagnosis = true,
            "--digests" => digests = true,
            "--check-digests" => {
                check_digests = Some(argv.next().expect("--check-digests <golden file>"));
                digests = true;
            }
            "--check-speedup" => {
                check_speedup = Some(argv.next().expect("--check-speedup <BENCH json file>"));
            }
            "--check-events-rate" => {
                check_events_rate =
                    Some(argv.next().expect("--check-events-rate <BENCH json file>"));
            }
            "--sizes" => {
                sizes = argv
                    .next()
                    .map(|s| {
                        s.split(',')
                            .map(|v| v.parse().expect("--sizes n,n,…"))
                            .collect()
                    })
                    .expect("--sizes n,n,…");
            }
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <u64>");
            }
            "--trials" => {
                trials = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--trials <n>");
            }
            "--workers" => {
                workers = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--workers <n>"),
                );
            }
            "--json" => json = true,
            other => what.push(other.to_owned()),
        }
    }
    if report
        || scale
        || dynamics
        || diagnosis
        || digests
        || check_speedup.is_some()
        || check_events_rate.is_some()
    {
        // `--report` / `--scale` / `--dynamics` / `--diagnosis` /
        // `--digests` / `--check-speedup` are sessions, not figures: an
        // empty experiment list stays empty instead of expanding to
        // `all`.
    } else if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "fig5",
            "fig6",
            "fig7",
            "tresp",
            "tping",
            "tpad",
            "tfoot",
            "tovh1",
            "linkchar",
            "ablations",
            "fig5agg",
            "fig6agg",
            "fig7agg",
            "linkcharagg",
            "failures",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Args {
        what,
        seed,
        trials,
        workers,
        json,
        report,
        scale,
        sizes,
        dynamics,
        diagnosis,
        digests,
        check_digests,
        check_speedup,
        check_events_rate,
    }
}

fn main() {
    let args = parse_args();
    if args.report {
        report(args.seed);
    }
    if args.scale {
        scale(&args);
    }
    if args.digests {
        digests(&args);
    }
    if args.dynamics {
        dynamics(&args);
    }
    if args.diagnosis {
        diagnosis(&args);
    }
    if let Some(path) = &args.check_speedup {
        check_speedup(path);
    }
    if let Some(path) = &args.check_events_rate {
        check_events_rate(path, args.seed);
    }
    for what in &args.what {
        match what.as_str() {
            "fig5" => fig5(args.seed, args.json),
            "fig6" => fig6(args.seed, args.json),
            "fig7" => fig7(args.seed, args.json),
            "tresp" => tresp(args.seed, args.json),
            "tping" => tping(args.seed, args.json),
            "tpad" => tpad(args.seed, args.json),
            "tfoot" => tfoot(args.json),
            "tovh1" => tovh1(args.seed, args.json),
            "linkchar" => linkchar(args.seed, args.json),
            "ablations" => ablations(args.seed, args.json),
            "fig5agg" => fig5agg(&args),
            "fig6agg" => fig6agg(&args),
            "fig7agg" => fig7agg(&args),
            "linkcharagg" => linkcharagg(&args),
            "failures" => failures(&args),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

/// `--report`: drive a diagnosis session over the 8-hop corridor and
/// print the network-wide flight-recorder report as JSON.
fn report(seed: u64) {
    use liteview::{CommandRequest, ObservabilityReport};
    use lv_net::packet::Port;
    use lv_testbed::{Scenario, ScenarioConfig, Topology};

    let mut s = Scenario::build(ScenarioConfig::new(Topology::eight_hop_corridor(), seed));
    s.ws.cd(&s.net, "192.168.0.1").expect("bridge exists");
    let far = (s.net.node_count() - 1) as u16;
    let _ = s.ws.exec(&mut s.net, CommandRequest::ping(1, 1, 32, None));
    let _ = s.ws.exec(
        &mut s.net,
        CommandRequest::traceroute(far, 32, Port::GEOGRAPHIC),
    );
    let json = s.ws.report(&s.net).to_json();
    // The emitted document must parse back — the report is an exchange
    // format, not just a pretty-printer.
    assert!(
        ObservabilityReport::from_json(&json).is_some(),
        "report JSON does not round-trip"
    );
    println!("{json}");
}

/// `--scale`: the PR-3 scaling sweep. Runs the beacon + traceroute
/// workload at each `--sizes` entry with the medium's reachability
/// cache on and off, hard-fails unless both arms are bit-identical,
/// and reports wall time / events/sec (plus the speedup per size).
fn scale(args: &Args) {
    let rows = exp::scale_sweep(&args.sizes, args.seed);
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .chunks(2)
        .map(|pair| {
            let (c, b) = (&pair[0], &pair[1]);
            Line(format!(
                "{:>6}   {:>12.1} {:>12.1}   {:>12.0} {:>12.0}   {:>7.2}x",
                c.nodes,
                c.wall_ms,
                b.wall_ms,
                c.events_per_sec,
                b.events_per_sec,
                b.wall_ms / c.wall_ms
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Scaling — beacon + traceroute workload, cached vs brute-force medium",
            " nodes   cached[ms]    brute[ms]      cached[ev/s]  brute[ev/s]   speedup",
            &lines
        )
    );
}

/// `--digests`: print the determinism digests of fig5/6/7; with
/// `--check-digests <golden>` also diff them against the checked-in
/// goldens and exit non-zero on drift.
fn digests(args: &Args) {
    let rows = exp::figure_digests(args.seed);
    if args.json {
        println!("{}", to_json_lines(&rows));
    } else {
        let lines: Vec<Line> = rows
            .iter()
            .map(|r| Line(format!("{:<6} {}", r.figure, r.digest)))
            .collect();
        print!(
            "{}",
            table(
                "Determinism digests — FNV-1a over the figure row JSON",
                "figure digest",
                &lines
            )
        );
    }
    if let Some(path) = &args.check_digests {
        let golden = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read goldens {path}: {e}"));
        let fresh = to_json_lines(&rows);
        let mut drift = false;
        for (g, f) in golden.lines().map(str::trim).zip(fresh.lines()) {
            if g != f {
                eprintln!("digest drift:\n  golden: {g}\n  fresh:  {f}");
                drift = true;
            }
        }
        if golden.lines().filter(|l| !l.trim().is_empty()).count() != rows.len() {
            eprintln!("golden file {path} has a different figure count than this binary produces");
            drift = true;
        }
        if drift {
            eprintln!(
                "figure digests changed — if intentional, regenerate with \
                 `figures --digests --json > {path}`"
            );
            std::process::exit(1);
        }
        println!("digests: OK ({} figures match {path})", rows.len());
    }
}

/// `--dynamics`: the degradation-ramp soak. Prints the per-round
/// observations and the detect → fail → recover milestones, then
/// hard-fails (for the nightly CI job) unless the diagnosis story
/// holds: traceroute pinpoints the weakening hop *before* the
/// end-to-end ping dies, and the path recovers after the repair.
fn dynamics(args: &Args) {
    let r = exp::dynamics_soak(args.seed);
    if args.json {
        println!("{}", serde_json::to_string(&r).unwrap());
    } else {
        let lines: Vec<Line> = r
            .rounds
            .iter()
            .map(|row| {
                Line(format!(
                    "{:>9.0}   {:>7} {:>6} {:>5} {:>6}   {:>5} {:>9} {:>10}",
                    row.t_ms,
                    if row.trace_reached { "yes" } else { "no" },
                    if row.hop_seen { "yes" } else { "no" },
                    row.hop_lqi,
                    row.hop_rssi,
                    if row.ping_ok { "ok" } else { "FAIL" },
                    row.evictions,
                    row.blacklists
                ))
            })
            .collect();
        print!(
            "{}",
            table(
                "Dynamics soak — 8-hop corridor, hop 5 ramped to +60 dB then repaired",
                "    t[ms]   reached    hop   lqi   rssi    ping   evicted   blacklist",
                &lines
            )
        );
        println!(
            "detect = {:.0} ms, ping-fail = {:.0} ms, recover = {:.0} ms",
            r.detect_ms, r.ping_fail_ms, r.recover_ms
        );
        println!(
            "evictions = {}, blacklists = {}, dyn trace events = {}, digest = {}",
            r.evictions, r.blacklists, r.dyn_trace_events, r.digest
        );
        println!("audit violations = {}", r.audit_violations);
    }
    let mut bad = Vec::new();
    if r.detect_ms < 0.0 {
        bad.push("the weakening hop was never detected while the path still worked");
    }
    if r.ping_fail_ms < 0.0 {
        bad.push("the end-to-end ping never failed despite the +60 dB ramp");
    }
    if r.detect_ms >= 0.0 && r.ping_fail_ms >= 0.0 && r.detect_ms >= r.ping_fail_ms {
        bad.push("detection did not precede the end-to-end failure");
    }
    if r.recover_ms < 0.0 {
        bad.push("the path never recovered after the link repair");
    }
    if r.evictions == 0 {
        bad.push("no stale neighbors were evicted during the outage");
    }
    if r.blacklists == 0 {
        bad.push("the degradation watchdog never blacklisted the weakening link");
    }
    if r.audit_violations > 0 {
        bad.push("the kernel runtime auditor observed invariant violations during the soak");
    }
    if r.dyn_trace_events == 0 {
        bad.push("no dyn.* mutations were counted");
    }
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("dynamics soak FAILED: {b}");
        }
        std::process::exit(1);
    }
    if !args.json {
        println!("dynamics soak: OK (detect < ping-fail < recover)");
    }
}

/// `--diagnosis`: replay the seeded fault corpus with the closed-loop
/// diagnosis engine armed and score its episodes against the ground
/// truth. Runs the sweep twice and hard-fails (for the nightly CI job)
/// on any byte of drift between the two reports, on precision < 0.9 or
/// recall < 0.8, or on any link ramp that was not detected before the
/// end-to-end ping died.
fn diagnosis(args: &Args) {
    let r = lv_testbed::diagnosis_sweep(args.seed);
    let json = serde_json::to_string(&r).unwrap();
    let replay = serde_json::to_string(&lv_testbed::diagnosis_sweep(args.seed)).unwrap();
    if args.json {
        println!("{json}");
    } else {
        let lines: Vec<Line> = r
            .rows
            .iter()
            .map(|row| {
                Line(format!(
                    "{:<12} {:>6} {:>8} {:>8} {:>4} {:>4}   {:>5.2} {:>6.2}   {:>9.0} {:>9.0} {:>12.0}",
                    row.scenario,
                    row.labels,
                    row.episodes,
                    row.localized,
                    row.true_positives,
                    row.false_positives,
                    row.precision,
                    row.recall,
                    row.first_detect_ms,
                    row.ping_fail_ms,
                    row.mean_detect_latency_ms,
                ))
            })
            .collect();
        print!(
            "{}",
            table(
                "Diagnosis sweep — closed-loop engine vs seeded fault corpus",
                "scenario     labels episodes    local   tp   fp    prec recall   detect[ms] fail[ms]  latency[ms]",
                &lines
            )
        );
        println!(
            "precision = {:.3}, recall = {:.3}, digest = {}",
            r.precision, r.recall, r.digest
        );
    }
    let mut bad = Vec::new();
    if json != replay {
        bad.push("two sweeps with the same seed produced different reports".to_owned());
    }
    if r.precision < 0.9 {
        bad.push(format!("precision {:.3} < 0.90", r.precision));
    }
    if r.recall < 0.8 {
        bad.push(format!("recall {:.3} < 0.80", r.recall));
    }
    for row in &r.rows {
        if !row.scenario.starts_with("ramp") {
            continue;
        }
        if row.first_detect_ms < 0.0 {
            bad.push(format!(
                "{}: the link fault was never detected",
                row.scenario
            ));
        } else if row.ping_fail_ms < 0.0 {
            bad.push(format!(
                "{}: the ramp never killed the end-to-end ping",
                row.scenario
            ));
        } else if row.first_detect_ms >= row.ping_fail_ms {
            bad.push(format!(
                "{}: detection ({:.0} ms) did not precede ping failure ({:.0} ms)",
                row.scenario, row.first_detect_ms, row.ping_fail_ms
            ));
        }
    }
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("diagnosis sweep FAILED: {b}");
        }
        std::process::exit(1);
    }
    if !args.json {
        println!("diagnosis sweep: OK (deterministic; detect-before-fail on every ramp)");
    }
}

/// `--check-speedup <file>`: re-read a `--scale --json` artifact and
/// fail unless the largest deployment's cached-vs-brute speedup is
/// still ≥ 3×.
fn check_speedup(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scale artifact {path}: {e}"));
    // (nodes, cached, wall_ms) triples parsed back out of the artifact.
    let mut runs: Vec<(u64, bool, f64)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSON line in {path}: {e:?}"));
        let nodes = match v.map_get("nodes") {
            Some(serde::Value::U64(n)) => *n,
            Some(serde::Value::I64(n)) => *n as u64,
            _ => panic!("scale row without a numeric `nodes` field in {path}"),
        };
        let cached = matches!(v.map_get("cached"), Some(serde::Value::Bool(true)));
        let wall_ms = match v.map_get("wall_ms") {
            Some(serde::Value::F64(w)) => *w,
            Some(serde::Value::U64(w)) => *w as f64,
            Some(serde::Value::I64(w)) => *w as f64,
            _ => panic!("scale row without a numeric `wall_ms` field in {path}"),
        };
        runs.push((nodes, cached, wall_ms));
    }
    let largest = runs
        .iter()
        .map(|&(n, _, _)| n)
        .max()
        .unwrap_or_else(|| panic!("no scale rows in {path}"));
    let arm = |cached: bool| {
        runs.iter()
            .find(|&&(n, c, _)| n == largest && c == cached)
            .map(|&(_, _, w)| w)
            .unwrap_or_else(|| {
                panic!(
                    "no {} run at {largest} nodes in {path}",
                    if cached { "cached" } else { "brute" }
                )
            })
    };
    let (cached_ms, brute_ms) = (arm(true), arm(false));
    let speedup = brute_ms / cached_ms;
    println!(
        "speedup @ {largest} nodes: brute {brute_ms:.1} ms / cached {cached_ms:.1} ms = {speedup:.2}x"
    );
    if speedup < 3.0 {
        eprintln!("speedup gate FAILED: {speedup:.2}x < 3.00x at {largest} nodes");
        std::process::exit(1);
    }
    println!("speedup gate: OK ({speedup:.2}x >= 3.00x)");
}

/// Minimum fresh-cached / committed-brute throughput ratio the nightly
/// events-rate gate enforces. The brute arm of the committed artifact
/// is the locked-in pre-optimization cost profile (PR 3 measured it at
/// ~116k ev/s for 1000 nodes), so this demands the optimized kernel
/// stay at least 4× faster than the unoptimized physics on whatever
/// hardware the gate runs on — a floor that catches real kernel
/// regressions without flaking on CI machine variance.
const EVENTS_RATE_MIN: f64 = 4.0;

/// `--check-events-rate <artifact>`: re-measure event throughput at the
/// committed artifact's largest deployment and gate it against the
/// artifact's brute-force baseline. Also hard-fails on digest drift
/// between the fresh run and the committed cached arm, so a perf
/// "improvement" that changed physics cannot slip through the perf
/// gate. Must run against the *checked-in* artifact, before any step
/// regenerates it.
fn check_events_rate(path: &str, seed: u64) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scale artifact {path}: {e}"));
    // (nodes, cached, events_per_sec, digest) parsed back out.
    let mut runs: Vec<(u64, bool, f64, String)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSON line in {path}: {e:?}"));
        let nodes = match v.map_get("nodes") {
            Some(serde::Value::U64(n)) => *n,
            Some(serde::Value::I64(n)) => *n as u64,
            _ => panic!("scale row without a numeric `nodes` field in {path}"),
        };
        let cached = matches!(v.map_get("cached"), Some(serde::Value::Bool(true)));
        let rate = match v.map_get("events_per_sec") {
            Some(serde::Value::F64(r)) => *r,
            Some(serde::Value::U64(r)) => *r as f64,
            Some(serde::Value::I64(r)) => *r as f64,
            _ => panic!("scale row without a numeric `events_per_sec` field in {path}"),
        };
        let digest = match v.map_get("digest") {
            Some(serde::Value::Str(d)) => d.clone(),
            _ => String::new(),
        };
        runs.push((nodes, cached, rate, digest));
    }
    let largest = runs
        .iter()
        .map(|&(n, _, _, _)| n)
        .max()
        .unwrap_or_else(|| panic!("no scale rows in {path}"));
    let baseline = runs
        .iter()
        .find(|&&(n, c, _, _)| n == largest && !c)
        .map(|&(_, _, r, _)| r)
        .unwrap_or_else(|| panic!("no brute run at {largest} nodes in {path}"));
    let committed_digest = runs
        .iter()
        .find(|&&(n, c, _, _)| n == largest && c)
        .map(|r| r.3.clone())
        .unwrap_or_default();
    println!("events-rate gate: measuring {largest} nodes (cached) against {path} ...");
    let fresh = exp::scale_point(largest as usize, seed, true);
    println!(
        "events-rate @ {largest} nodes: fresh cached {:.0} ev/s vs committed brute {baseline:.0} ev/s = {:.2}x",
        fresh.events_per_sec,
        fresh.events_per_sec / baseline
    );
    if !committed_digest.is_empty() && fresh.digest != committed_digest {
        eprintln!(
            "events-rate gate FAILED: digest drift at {largest} nodes — fresh {} != committed {committed_digest}",
            fresh.digest
        );
        std::process::exit(1);
    }
    let ratio = fresh.events_per_sec / baseline;
    if ratio < EVENTS_RATE_MIN {
        eprintln!(
            "events-rate gate FAILED: {ratio:.2}x < {EVENTS_RATE_MIN:.2}x over the committed brute baseline at {largest} nodes"
        );
        std::process::exit(1);
    }
    println!("events-rate gate: OK ({ratio:.2}x >= {EVENTS_RATE_MIN:.2}x, digest stable)");
}

fn fig5(seed: u64, json: bool) {
    let rows = exp::fig5_traceroute_delay(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| Line(format!("{:>3}   {:>10.1}", r.hop, r.delay_ms)))
        .collect();
    print!(
        "{}",
        table(
            "Fig. 5 — traceroute response delay per hop (8-hop corridor)",
            "hop   delay [ms]",
            &lines
        )
    );
}

fn fig6(seed: u64, json: bool) {
    let rows = exp::fig6_rssi_vs_power(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>3}   {:>8} {:>8}   {:>8} {:>8}",
                r.hop, r.fwd_p10, r.bwd_p10, r.fwd_p25, r.bwd_p25
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Fig. 6 — per-hop RSSI readings, forward/backward, power 10 vs 25",
            "hop   fwd@10   bwd@10     fwd@25   bwd@25",
            &lines
        )
    );
}

fn fig7(seed: u64, json: bool) {
    let rows = exp::fig7_overhead(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>4}   {:>15} {:>8}",
                r.hops, r.control_packets, r.acks
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Fig. 7 — traceroute command overhead vs path length",
            "hops   control packets     acks",
            &lines
        )
    );
}

fn tresp(seed: u64, json: bool) {
    let rows = exp::text_response_delays(seed, 10);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<20} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9}",
                r.command, r.trials, r.mean_ms, r.min_ms, r.max_ms, r.answered
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "T-resp — fixed-window command response delays",
            "command              trials  mean[ms]   min[ms]   max[ms]  answered",
            &lines
        )
    );
}

fn tping(seed: u64, json: bool) {
    let r = exp::text_ping_sample(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-ping — sample one-hop ping (paper §III.B.3) ==");
    println!(
        "RTT = {:.1} ms, LQI = {}/{}, RSSI = {}/{}, Queue = {}/{}",
        r.rtt_ms, r.lqi_fwd, r.lqi_bwd, r.rssi_fwd, r.rssi_bwd, r.queue_fwd, r.queue_bwd
    );
    println!("Power = {}, Channel = {}", r.power, r.channel);
}

fn tpad(seed: u64, json: bool) {
    let r = exp::text_padding_budget(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-pad — link-quality padding budget (paper §IV.C.3) ==");
    println!(
        "probe payload = {} B, {} B/hop, analytic max = {} hops",
        r.probe_payload, r.bytes_per_hop, r.analytic_max_hops
    );
    println!(
        "path of {} hops → observed {} recorded hop entries",
        r.path_hops, r.observed_entries
    );
}

fn tfoot(json: bool) {
    let rows = exp::text_footprints();
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<22} {:>8} {:>8}",
                r.component, r.flash_bytes, r.ram_bytes
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "T-foot — component footprints (paper §IV.C.5/6)",
            "component              flash[B]   ram[B]",
            &lines
        )
    );
}

fn tovh1(seed: u64, json: bool) {
    let r = exp::text_onehop_overhead(seed);
    if json {
        println!("{}", serde_json::to_string(&r).unwrap());
        return;
    }
    println!("== T-ovh1 — one-hop command overhead (paper §V.C) ==");
    println!(
        "{}: {} data packets (+{} link acks)",
        r.command, r.data_packets, r.acks
    );
}

/// Render a metric value: scientific for tiny magnitudes (energy in
/// joules), one decimal otherwise.
fn format_value(v: f64) -> String {
    if v != 0.0 && v.abs() < 0.1 {
        format!("{v:.3e}")
    } else {
        format!("{v:.1}")
    }
}

fn linkchar(seed: u64, json: bool) {
    let rows = exp::characterize_links(seed);
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>6.1}   {:>5.2}   {:>8.1}   {:>7.1}",
                r.distance_m, r.prr, r.mean_rssi, r.mean_lqi
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Link characterization — PRR / RSSI / LQI vs distance (substrate validation)",
            "  d[m]     PRR       RSSI       LQI",
            &lines
        )
    );
}

/// Render an aggregate as `mean ± ci95`.
fn pm(s: &AggregateStats) -> String {
    format!("{:.1} ±{:.1}", s.mean, s.ci95)
}

fn fig5agg(args: &Args) {
    let runner = args.runner();
    let rows = exp::fig5_traceroute_delay_agg(&runner);
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>3}   {:>6}   {:>16}",
                r.hop,
                r.delay_ms.n,
                pm(&r.delay_ms)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            &format!(
                "Fig. 5 (aggregate) — traceroute delay per hop, {} trials",
                runner.trials()
            ),
            "hop        n       delay [ms]",
            &lines
        )
    );
}

fn fig6agg(args: &Args) {
    let runner = args.runner();
    let rows = exp::fig6_rssi_vs_power_agg(&runner);
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>3}   {:>13} {:>13}   {:>13} {:>13}",
                r.hop,
                pm(&r.fwd_p10),
                pm(&r.bwd_p10),
                pm(&r.fwd_p25),
                pm(&r.bwd_p25)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            &format!(
                "Fig. 6 (aggregate) — per-hop RSSI, power 10 vs 25, {} trials",
                runner.trials()
            ),
            "hop          fwd@10        bwd@10          fwd@25        bwd@25",
            &lines
        )
    );
}

fn fig7agg(args: &Args) {
    let runner = args.runner();
    let rows = exp::fig7_overhead_agg(&runner);
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>4}   {:>16} {:>14}",
                r.hops,
                pm(&r.control_packets),
                pm(&r.acks)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            &format!(
                "Fig. 7 (aggregate) — traceroute overhead vs path length, {} trials",
                runner.trials()
            ),
            "hops    control packets           acks",
            &lines
        )
    );
}

fn linkcharagg(args: &Args) {
    let runner = args.runner();
    let rows = exp::characterize_links_agg(&runner);
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:>6.1}   {:>11}   {:>14}   {:>13}",
                r.distance_m,
                format!("{:.2} ±{:.2}", r.prr.mean, r.prr.ci95),
                pm(&r.mean_rssi),
                pm(&r.mean_lqi)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            &format!(
                "Link characterization (aggregate) — PRR / RSSI / LQI vs distance, {} trials",
                runner.trials()
            ),
            "  d[m]           PRR             RSSI             LQI",
            &lines
        )
    );
}

fn failures(args: &Args) {
    let runner = args.runner();
    let rows = exp::failure_sweep(&runner, &exp::default_failure_plans());
    if args.json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<24} {:>4}/{:<4} {:>12} {:>13} {:>16}",
                r.mode,
                r.faulted,
                r.trials,
                format!("{:.2} ±{:.2}", r.reached.mean, r.reached.ci95),
                pm(&r.hops_covered),
                pm(&r.last_report_ms)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Failure-injection sweep — traceroute diagnosis under faults (8-hop corridor)",
            "mode                     faulted      reached   hops covered   last report[ms]",
            &lines
        )
    );
}

fn ablations(seed: u64, json: bool) {
    let mut rows = Vec::new();
    rows.extend(exp::ablation_traceroute_vs_ping(seed));
    rows.extend(exp::ablation_batch_adaptive(seed));
    rows.extend(exp::ablation_response_backoff(seed, 8));
    rows.extend(exp::ablation_beacon_rate(seed));
    rows.extend(exp::ablation_energy(seed));
    rows.extend(exp::ablation_neighbor_table());
    rows.extend(exp::ablation_padding(seed));
    if json {
        println!("{}", to_json_lines(&rows));
        return;
    }
    let lines: Vec<Line> = rows
        .iter()
        .map(|r| {
            Line(format!(
                "{:<34} {:<22} {:>14}",
                r.arm,
                r.metric,
                format_value(r.value)
            ))
        })
        .collect();
    print!(
        "{}",
        table(
            "Ablations (DESIGN.md §5)",
            "arm                                metric                        value",
            &lines
        )
    );
}
