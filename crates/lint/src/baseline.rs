//! Baseline files: grandfathered findings.
//!
//! A baseline entry is a stable fingerprint of a finding — the rule
//! name, the file path, and the *trimmed source line* (not the line
//! number, so unrelated edits above a grandfathered site don't
//! invalidate it). Fingerprints are FNV-1a 64, matching the hash the
//! figure-digest gate already uses.
//!
//! Semantics are multiset: a baseline line `2 <hash> <rule> <path>`
//! absorbs up to two findings with that fingerprint. Anything beyond
//! the baselined count is new and fails the gate; baselined entries no
//! longer matched anywhere are reported as stale so the file shrinks
//! over time instead of rotting.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// FNV-1a 64-bit, same constants as the figure digest gate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a finding (rule + path + trimmed line text).
pub fn fingerprint(f: &Finding) -> u64 {
    let mut buf = Vec::with_capacity(f.rule.len() + f.path.len() + f.snippet.len() + 2);
    buf.extend_from_slice(f.rule.as_bytes());
    buf.push(0);
    buf.extend_from_slice(f.path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(f.snippet.as_bytes());
    fnv1a(&buf)
}

/// A parsed baseline: fingerprint → allowed count (with the rule/path
/// kept for stale-entry reporting).
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<u64, BaselineEntry>,
}

/// One baseline record.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// How many findings this fingerprint absorbs.
    pub count: u32,
    /// Rule name (informational).
    pub rule: String,
    /// File path (informational).
    pub path: String,
}

/// Result of filtering findings through a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not absorbed by the baseline: these fail the gate.
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline (grandfathered).
    pub absorbed: usize,
    /// Baseline entries with no matching finding left, as
    /// `(rule, path)` pairs; candidates for deletion.
    pub stale: Vec<(String, String)>,
}

impl Baseline {
    /// Parse the text of a baseline file. Lines are
    /// `<count> <hex-fingerprint> <rule> <path>`; blank lines and `#`
    /// comments are skipped. Malformed lines are errors — a typo in the
    /// baseline must not silently widen the gate.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (count, hash, rule, path) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(c), Some(h), Some(r), Some(p)) => (c, h, r, p),
                    _ => {
                        return Err(format!(
                            "baseline line {}: expected `<count> <hash> <rule> <path>`",
                            idx + 1
                        ))
                    }
                };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
            let hash = u64::from_str_radix(hash.trim_start_matches("0x"), 16)
                .map_err(|_| format!("baseline line {}: bad fingerprint `{hash}`", idx + 1))?;
            entries.insert(
                hash,
                BaselineEntry {
                    count,
                    rule: rule.to_owned(),
                    path: path.to_owned(),
                },
            );
        }
        Ok(Baseline { entries })
    }

    /// Serialize findings as a fresh baseline file (for
    /// `--update-baseline`). Deterministic: sorted by rule, then path,
    /// then fingerprint.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String, u64), u32> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_owned(), f.path.clone(), fingerprint(f)))
                .or_insert(0) += 1;
        }
        let mut out = String::from(
            "# lv-lint baseline: grandfathered findings.\n\
             # Format: <count> <fnv1a-64 hex> <rule> <path>\n\
             # Regenerate with: cargo run -p lv-lint -- --update-baseline\n",
        );
        for ((rule, path, hash), count) in &counts {
            out.push_str(&format!("{count} {hash:016x} {rule} {path}\n"));
        }
        out
    }

    /// Split findings into new vs. absorbed, and report stale entries.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut remaining: BTreeMap<u64, u32> =
            self.entries.iter().map(|(h, e)| (*h, e.count)).collect();
        let mut outcome = BaselineOutcome::default();
        for f in findings {
            let h = fingerprint(&f);
            match remaining.get_mut(&h) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    outcome.absorbed += 1;
                }
                _ => outcome.new.push(f),
            }
        }
        for (h, n) in &remaining {
            if *n > 0 {
                if let Some(e) = self.entries.get(h) {
                    outcome.stale.push((e.rule.clone(), e.path.clone()));
                }
            }
        }
        outcome
    }

    /// Drop entries whose file no longer exists, returning the removed
    /// `(rule, path)` pairs. `exists` answers "is this repo-relative
    /// path still a file?" — injected so tests need no filesystem.
    /// `--update-baseline` runs this before re-rendering, so entries
    /// for deleted files are dropped instead of being reported as
    /// stale forever.
    pub fn prune_missing_files(&mut self, exists: impl Fn(&str) -> bool) -> Vec<(String, String)> {
        let doomed: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| !exists(&e.path))
            .map(|(h, _)| *h)
            .collect();
        let mut dropped = Vec::new();
        for h in doomed {
            if let Some(e) = self.entries.remove(&h) {
                dropped.push((e.rule, e.path));
            }
        }
        dropped.sort();
        dropped
    }

    /// Serialize the parsed entries back out (same format as
    /// [`Baseline::render`], preserving counts). Used after pruning.
    pub fn render_entries(&self) -> String {
        let mut out = String::from(
            "# lv-lint baseline: grandfathered findings.\n\
             # Format: <count> <fnv1a-64 hex> <rule> <path>\n\
             # Regenerate with: cargo run -p lv-lint -- --update-baseline\n",
        );
        let mut rows: Vec<(&String, &String, u64, u32)> = self
            .entries
            .iter()
            .map(|(h, e)| (&e.rule, &e.path, *h, e.count))
            .collect();
        rows.sort();
        for (rule, path, hash, count) in rows {
            out.push_str(&format!("{count} {hash:016x} {rule} {path}\n"));
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 1,
            col: 1,
            message: String::new(),
            snippet: snippet.to_owned(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_absorbs_exactly() {
        let f1 = finding("no-panic", "crates/kernel/src/x.rs", "x.unwrap();");
        let f2 = finding("no-panic", "crates/kernel/src/x.rs", "y.unwrap();");
        let text = Baseline::render(&[f1.clone(), f2.clone()]);
        let bl = Baseline::parse(&text).unwrap();
        assert_eq!(bl.len(), 2);
        // Both absorbed, a third (new) finding surfaces.
        let f3 = finding("no-panic", "crates/kernel/src/x.rs", "z.unwrap();");
        let out = bl.apply(vec![f1, f2, f3.clone()]);
        assert_eq!(out.absorbed, 2);
        assert_eq!(out.new.len(), 1);
        assert_eq!(out.new[0].snippet, f3.snippet);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn fingerprint_survives_line_moves() {
        let a = finding("no-panic", "p.rs", "x.unwrap();");
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn stale_entries_reported() {
        let f = finding("pub-doc", "p.rs", "pub fn gone() {}");
        let bl = Baseline::parse(&Baseline::render(&[f])).unwrap();
        let out = bl.apply(Vec::new());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].0, "pub-doc");
    }

    #[test]
    fn multiset_counts() {
        let f = finding("no-panic", "p.rs", "x.unwrap();");
        let bl = Baseline::parse(&Baseline::render(&[f.clone(), f.clone()])).unwrap();
        assert_eq!(bl.len(), 1); // one fingerprint, count 2
        let out = bl.apply(vec![f.clone(), f.clone(), f.clone()]);
        assert_eq!(out.absorbed, 2);
        assert_eq!(out.new.len(), 1);
    }

    #[test]
    fn prune_drops_entries_for_deleted_files() {
        let live = finding("no-panic", "crates/kernel/src/alive.rs", "x.unwrap();");
        let gone = finding("no-panic", "crates/kernel/src/deleted.rs", "y.unwrap();");
        let mut bl = Baseline::parse(&Baseline::render(&[live.clone(), gone])).unwrap();
        assert_eq!(bl.len(), 2);
        let dropped = bl.prune_missing_files(|p| p.ends_with("alive.rs"));
        assert_eq!(
            dropped,
            vec![(
                "no-panic".to_owned(),
                "crates/kernel/src/deleted.rs".to_owned()
            )]
        );
        assert_eq!(bl.len(), 1);
        // The surviving entry still absorbs, and the deleted-file entry
        // no longer shows up as stale.
        let out = bl.apply(vec![live]);
        assert_eq!(out.absorbed, 1);
        assert!(out.stale.is_empty());
        // Round-trip of the pruned set.
        let reparsed = Baseline::parse(&bl.render_entries()).unwrap();
        assert_eq!(reparsed.len(), 1);
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(Baseline::parse("1 nothex rule path").is_err());
        assert!(Baseline::parse("just-words").is_err());
        assert!(Baseline::parse("# comment only\n\n").unwrap().is_empty());
    }
}
