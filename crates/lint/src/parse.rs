//! Item-level parsing on top of the token stream.
//!
//! The interprocedural rules need more structure than the per-file
//! rules: which functions exist (with their module path, owning
//! `impl`/`trait` type, and visibility), what each body *calls*, and
//! which lexical facts (sinks) each body contains. This module builds
//! that structure with a hand-rolled single-pass walk over the
//! significant token stream — still no `syn`, still resilient: it never
//! panics on malformed input, it just produces fewer items.
//!
//! It is explicitly *not* a Rust parser. It recognizes exactly the
//! shapes the call-graph needs — `fn`/`impl`/`trait`/`mod`/`use`/
//! `static` items, call and method-call expressions — and skips
//! everything else. Macro bodies are treated as expression soup (their
//! tokens are scanned for calls and facts like any other body tokens),
//! which over-approximates but never hides a call site.

use crate::lexer::TokenKind;
use crate::rules::FileContext;

/// One lexical fact ("sink") observed inside a function body, with
/// enough position info to report a finding at the site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// 1-based line of the sink token.
    pub line: u32,
    /// 1-based column of the sink token.
    pub col: u32,
    /// What was seen (`Instant`, `unwrap`, `Box::new`, `[..] index`, …).
    pub what: String,
    /// Trimmed source line (for baseline fingerprints).
    pub snippet: String,
}

/// Lexical facts extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Wall-clock time sources: `Instant`, `SystemTime`.
    pub wall_clock: Vec<Sink>,
    /// OS entropy: `thread_rng`, `OsRng`, `RandomState`, ….
    pub os_random: Vec<Sink>,
    /// Iteration over hash-backed collections (filled in by the
    /// analyzer from the per-file hash-iter pass; see `lib.rs`).
    pub hash_iter: Vec<Sink>,
    /// Panic sites: `panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// macros plus `.unwrap()`/`.expect(` calls.
    pub panics: Vec<Sink>,
    /// Unguarded slice-index expressions (`x[i]` with no `x.len()` /
    /// `x.is_empty()` / `x.get(` appearing anywhere in the same body).
    pub index_sinks: Vec<Sink>,
    /// Heap allocations the hot-path policy bans: `Box::new`,
    /// `Vec::new`, `.to_string()`.
    pub allocs: Vec<Sink>,
    /// Lock acquisitions: `.lock(` / `.try_lock(`.
    pub locks: Vec<Sink>,
    /// ALL_CAPS identifiers referenced by the body — candidate static
    /// references, matched against declared statics at rule time.
    pub caps_refs: Vec<Sink>,
    /// True when the body mentions `TrialRunner` and calls `.run(` —
    /// the lexical signature of a multi-trial driver whose closure is
    /// a trial body.
    pub trial_caller: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` or `a::b::foo(…)` — statically-resolved free or
    /// associated call; `quals` holds the path segments before the
    /// final name (empty for a bare call).
    Path {
        /// Path segments before the called name (`a`, `b` for
        /// `a::b::foo(…)`).
        quals: Vec<String>,
    },
    /// `recv.foo(…)` — method call, possibly dynamic dispatch.
    Method,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment / method name).
    pub name: String,
    /// Free/associated path call vs. method call.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: u32,
}

/// One parsed function (or method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// `impl` type or `trait` name owning this fn, if any.
    pub owner: Option<String>,
    /// Trait name when the fn lives in an `impl Trait for Type` block.
    pub trait_impl: Option<String>,
    /// Fully `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region or `#[test]` item.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (== `line` for bodyless trait decls).
    pub end_line: u32,
    /// Signature mentions a byte-slice param (`&[u8]`, `[u8; N]`) —
    /// the wire-parser shape the index-sink policy applies to.
    pub byte_slice_param: bool,
    /// Tagged `// lv-lint: hot` on the `fn` line or the line above.
    pub is_hot: bool,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Lexical facts inside the body.
    pub facts: FnFacts,
}

/// A `static` item declaration.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// Declared `static mut`.
    pub mutable: bool,
    /// Type mentions an interior-mutability cell (`Mutex`, `RefCell`,
    /// `Cell`, `RwLock`, `Atomic*`, `OnceLock`, `LazyLock`,
    /// `UnsafeCell`, `OnceCell`).
    pub interior_mutable: bool,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// Inside a test region.
    pub is_test: bool,
}

/// One `use` mapping: local name → full imported path.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The name this import binds locally (alias if `as` was used,
    /// `*` for glob imports).
    pub local: String,
    /// The imported path segments (for globs, the prefix).
    pub path: Vec<String>,
}

/// Everything the call graph needs from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Repo-relative path.
    pub path: String,
    /// Crate key (`kernel`, `serve`, …, `root`).
    pub crate_key: String,
    /// Module path derived from the file's location under `src/`.
    pub file_module: Vec<String>,
    /// Parsed functions.
    pub fns: Vec<FnItem>,
    /// Parsed statics.
    pub statics: Vec<StaticItem>,
    /// `use` imports (file-level and module-level, flattened).
    pub uses: Vec<UseItem>,
    /// Trait names *defined* (not implemented) in this file.
    pub traits_defined: Vec<String>,
    /// Inline `lv-lint: allow(rule)` directives, as `(line, rule)`.
    pub allows: Vec<(u32, String)>,
}

/// Derive the in-crate module path from a repo-relative file path:
/// `crates/net/src/routing/flooding.rs` → `["routing", "flooding"]`,
/// `crates/net/src/routing/mod.rs` → `["routing"]`, `lib.rs`/`main.rs`
/// → `[]`.
pub fn file_module_path(path: &str) -> Vec<String> {
    let rest = match path.find("/src/") {
        Some(i) => &path[i + 5..],
        None => match path.strip_prefix("src/") {
            Some(r) => r,
            None => path,
        },
    };
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut parts: Vec<String> = rest.split('/').map(str::to_owned).collect();
    if let Some(last) = parts.last() {
        if last == "lib" || last == "main" || last == "mod" {
            parts.pop();
        }
    }
    parts
}

/// Parse one file's items. `ctx` must have been built from the same
/// source text as `path` names.
pub fn parse_file(ctx: &FileContext<'_>, path: &str) -> ParsedFile {
    let mut out = ParsedFile {
        path: path.to_owned(),
        crate_key: ctx.crate_key.to_owned(),
        file_module: file_module_path(path),
        allows: ctx.allow_directives().to_vec(),
        ..ParsedFile::default()
    };
    let hot_lines = hot_tag_lines(ctx);
    let mut p = Parser {
        ctx,
        out: &mut out,
        hot_lines,
    };
    let end = ctx.sig.len();
    let module = p.out.file_module.clone();
    p.parse_items(0, end, &module, &Owner::None);
    out
}

/// Who owns the items currently being parsed.
enum Owner {
    /// Top level or inside a `mod`.
    None,
    /// Inside `impl Type { … }`.
    Impl {
        /// The implementing type's name.
        ty: String,
        /// Trait name for `impl Trait for Type` blocks.
        trait_name: Option<String>,
    },
    /// Inside `trait Name { … }` (default methods).
    Trait(String),
}

/// Lines carrying a `// lv-lint: hot` tag (shared with the per-file
/// hot-path-alloc rule's convention).
fn hot_tag_lines(ctx: &FileContext<'_>) -> Vec<u32> {
    ctx.tokens
        .iter()
        .filter(|t| t.is_comment())
        .filter_map(|t| {
            let at = t.text.find("lv-lint:")?;
            let rest = t.text[at + "lv-lint:".len()..].trim_start();
            rest.starts_with("hot").then_some(t.line)
        })
        .collect()
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "move", "in", "as", "fn",
    "impl", "dyn", "where", "unsafe", "async", "await", "break", "continue", "use", "pub", "mod",
    "struct", "enum", "trait", "type", "const", "static", "ref", "mut", "self", "Self", "super",
    "crate",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

struct Parser<'a, 'b> {
    ctx: &'a FileContext<'b>,
    out: &'a mut ParsedFile,
    hot_lines: Vec<u32>,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.ctx.sig_text_pub(i)
    }

    fn line_of(&self, i: usize) -> u32 {
        self.ctx.sig_tok(i).map(|t| t.line).unwrap_or(0)
    }

    /// Parse items in the sig-index range `[i, end)`. `module` is the
    /// current module path; `owner` the enclosing impl/trait.
    fn parse_items(&mut self, mut i: usize, end: usize, module: &[String], owner: &Owner) {
        let mut is_pub = false;
        while i < end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => {
                    i = self.ctx.matching_pub(i + 1, "[", "]") + 1;
                }
                "pub" => {
                    // `pub(crate)` / `pub(super)` are not public API.
                    is_pub = self.text(i + 1) != "(";
                    if self.text(i + 1) == "(" {
                        i = self.ctx.matching_pub(i + 1, "(", ")") + 1;
                    } else {
                        i += 1;
                    }
                }
                "unsafe" | "async" | "extern" | "default" => i += 1,
                "const" if self.text(i + 1) == "fn" => i += 1,
                "fn" => {
                    i = self.parse_fn(i, end, module, owner, is_pub);
                    is_pub = false;
                }
                "mod" => {
                    let name = self.text(i + 1).to_owned();
                    if self.text(i + 2) == "{" {
                        let close = self.ctx.matching_pub(i + 2, "{", "}");
                        let mut inner = module.to_vec();
                        inner.push(name);
                        self.parse_items(i + 3, close.min(end), &inner, &Owner::None);
                        i = close + 1;
                    } else {
                        i = self.skip_item(i + 1, end);
                    }
                    is_pub = false;
                }
                "impl" => {
                    i = self.parse_impl(i, end, module);
                    is_pub = false;
                }
                "trait" => {
                    i = self.parse_trait(i, end, module);
                    is_pub = false;
                }
                "use" => {
                    i = self.parse_use(i + 1, end);
                    is_pub = false;
                }
                "static" => {
                    i = self.parse_static(i, end);
                    is_pub = false;
                }
                "struct" | "enum" | "union" | "type" | "const" => {
                    i = self.skip_item(i + 1, end);
                    is_pub = false;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }`
                    let mut j = i + 1;
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    i = if j < end {
                        self.ctx.matching_pub(j, "{", "}") + 1
                    } else {
                        end
                    };
                    is_pub = false;
                }
                "{" => {
                    // Stray block (shouldn't happen at item level) —
                    // step over it rather than diving in.
                    i = self.ctx.matching_pub(i, "{", "}") + 1;
                    is_pub = false;
                }
                _ => {
                    i += 1;
                    is_pub = false;
                }
            }
        }
    }

    /// Skip to the end of a non-fn item starting after its keyword:
    /// the `;` ending a declaration or the close of the first brace
    /// group, whichever comes first at paren depth 0.
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        let mut paren = 0i32;
        while i < end {
            match self.text(i) {
                "(" => paren += 1,
                ")" => paren -= 1,
                ";" if paren == 0 => return i + 1,
                "{" if paren == 0 => return self.ctx.matching_pub(i, "{", "}") + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse `fn name …` at sig index `i` (pointing at `fn`). Returns
    /// the index just past the item.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        module: &[String],
        owner: &Owner,
        is_pub: bool,
    ) -> usize {
        let fn_line = self.line_of(i);
        let name = self.text(i + 1).to_owned();
        if name.is_empty() || self.text(i + 1) == "(" {
            // `fn(` — a bare fn-pointer type, not an item.
            return i + 1;
        }
        // Find the body `{` (or `;` for bodyless decls) at paren depth
        // 0, collecting the names of byte-slice params (`buf: &[u8]`,
        // `raw: &mut [u8; N]`) on the way — the wire-parser shape the
        // index-sink policy applies to.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut byte_slice_params: Vec<String> = Vec::new();
        let mut cur_param: Option<String> = None;
        let body_open = loop {
            if j >= end {
                break None;
            }
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                ":" if paren == 1 && self.text(j + 1) != ":" && self.text(j - 1) != ":" => {
                    let mut k = j - 1;
                    while k > 0 && matches!(self.text(k), "mut" | "ref") {
                        k -= 1;
                    }
                    if self
                        .ctx
                        .sig_tok(k)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        cur_param = Some(self.text(k).to_owned());
                    }
                }
                "," if paren == 1 => cur_param = None,
                "[" if self.text(j + 1) == "u8" => {
                    if let Some(p) = cur_param.take() {
                        byte_slice_params.push(p);
                    }
                }
                "{" if paren == 0 => break Some(j),
                ";" if paren == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let byte_slice_param = !byte_slice_params.is_empty();
        let is_hot = self
            .hot_lines
            .iter()
            .any(|&l| l == fn_line || l + 1 == fn_line);
        let (trait_name, owner_name) = match owner {
            Owner::None => (None, None),
            Owner::Impl { ty, trait_name } => (trait_name.clone(), Some(ty.clone())),
            Owner::Trait(t) => (None, Some(t.clone())),
        };
        let mut item = FnItem {
            name,
            module: module.to_vec(),
            owner: owner_name,
            trait_impl: trait_name,
            is_pub,
            is_test: self.ctx.is_test_line(fn_line),
            line: fn_line,
            end_line: fn_line,
            byte_slice_param,
            is_hot,
            calls: Vec::new(),
            facts: FnFacts::default(),
        };
        let Some(open) = body_open else {
            self.out.fns.push(item);
            return j.min(end) + 1;
        };
        let close = self.ctx.matching_pub(open, "{", "}");
        item.end_line = self.line_of(close).max(fn_line);
        self.scan_body(
            open + 1,
            close.min(end),
            module,
            &mut item,
            &byte_slice_params,
        );
        self.out.fns.push(item);
        close + 1
    }

    /// Parse an `impl … {` header at `i` (pointing at `impl`) and the
    /// items inside it.
    fn parse_impl(&mut self, i: usize, end: usize, module: &[String]) -> usize {
        // Collect header tokens up to the `{` at paren depth 0.
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut header: Vec<(usize, String)> = Vec::new();
        while j < end {
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => break,
                ";" if paren == 0 => return j + 1, // `impl Trait for Type;` (odd) — skip
                t => header.push((j, t.to_owned())),
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let open = j;
        let close = self.ctx.matching_pub(open, "{", "}");
        // Split on a top-angle-depth `for`: before = trait, after = type.
        // Skip the leading generics group (`impl<…>`).
        let mut depth = 0i32;
        let mut for_at: Option<usize> = None;
        for (k, (_, t)) in header.iter().enumerate() {
            match t.as_str() {
                "<" => depth += 1,
                ">" => {
                    // Ignore the `>` of `->` (arrow in Fn bounds).
                    let prev = k.checked_sub(1).map(|p| header[p].1.as_str());
                    if prev != Some("-") {
                        depth -= 1;
                    }
                }
                "for" if depth == 0 => {
                    for_at = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let type_name = |toks: &[(usize, String)]| -> Option<String> {
            // Last CamelCase-ish ident before generics of the path:
            // `lv_net::routing::Geographic<…>` → `Geographic`.
            let mut best = None;
            let mut depth = 0i32;
            for (k, (_, t)) in toks.iter().enumerate() {
                match t.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        let prev = k.checked_sub(1).map(|p| toks[p].1.as_str());
                        if prev != Some("-") {
                            depth -= 1;
                        }
                    }
                    _ if depth == 0 => {
                        let is_ident = t
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_');
                        if is_ident && !KEYWORDS_NOT_CALLS.contains(&t.as_str()) {
                            best = Some(t.clone());
                        }
                    }
                    _ => {}
                }
            }
            best
        };
        let owner = match for_at {
            Some(k) => Owner::Impl {
                ty: type_name(&header[k + 1..]).unwrap_or_default(),
                trait_name: type_name(&header[..k]),
            },
            None => Owner::Impl {
                ty: type_name(&header).unwrap_or_default(),
                trait_name: None,
            },
        };
        self.parse_items(open + 1, close.min(end), module, &owner);
        close + 1
    }

    /// Parse `trait Name … { … }` at `i` (pointing at `trait`).
    fn parse_trait(&mut self, i: usize, end: usize, module: &[String]) -> usize {
        let name = self.text(i + 1).to_owned();
        let mut j = i + 2;
        let mut paren = 0i32;
        while j < end {
            match self.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => break,
                ";" if paren == 0 => return j + 1, // `trait Alias = …;`
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = self.ctx.matching_pub(j, "{", "}");
        if !self.ctx.is_test_line(self.line_of(i)) {
            self.out.traits_defined.push(name.clone());
        }
        self.parse_items(j + 1, close.min(end), module, &Owner::Trait(name));
        close + 1
    }

    /// Parse a `use …;` tree starting just after the `use` keyword.
    fn parse_use(&mut self, mut i: usize, end: usize) -> usize {
        // Collect the flat token texts up to `;`, then expand groups.
        let start = i;
        while i < end && self.text(i) != ";" {
            i += 1;
        }
        let toks: Vec<String> = (start..i).map(|k| self.text(k).to_owned()).collect();
        let mut uses = Vec::new();
        expand_use_tree(&toks, &mut Vec::new(), &mut uses);
        self.out.uses.extend(uses);
        i + 1
    }

    /// Parse `static [mut] NAME: Type = …;` at `i` (pointing at
    /// `static`).
    fn parse_static(&mut self, i: usize, end: usize) -> usize {
        let line = self.line_of(i);
        let mut j = i + 1;
        let mutable = self.text(j) == "mut";
        if mutable {
            j += 1;
        }
        let name = self.text(j).to_owned();
        // Type tokens: between `:` and `=` (or `;`).
        let mut ty = String::new();
        let mut k = j + 1;
        let mut paren = 0i32;
        while k < end {
            match self.text(k) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "=" | ";" if paren == 0 => break,
                t => {
                    ty.push_str(t);
                    ty.push(' ');
                }
            }
            k += 1;
        }
        const CELLS: &[&str] = &[
            "Mutex",
            "RwLock",
            "RefCell",
            "Cell",
            "UnsafeCell",
            "OnceLock",
            "LazyLock",
            "OnceCell",
            "AtomicUsize",
            "AtomicU64",
            "AtomicU32",
            "AtomicU16",
            "AtomicU8",
            "AtomicIsize",
            "AtomicI64",
            "AtomicI32",
            "AtomicBool",
            "AtomicPtr",
        ];
        let interior_mutable = CELLS.iter().any(|c| ty.contains(c));
        if !name.is_empty() && name != ":" {
            self.out.statics.push(StaticItem {
                name,
                mutable,
                interior_mutable,
                line,
                is_test: self.ctx.is_test_line(line),
            });
        }
        self.skip_item(k, end)
    }

    /// Scan a fn body for calls, facts, and nested fns. Index sinks
    /// are only collected for `byte_slice_params` receivers.
    fn scan_body(
        &mut self,
        mut i: usize,
        end: usize,
        module: &[String],
        item: &mut FnItem,
        byte_slice_params: &[String],
    ) {
        let mut len_checked: Vec<String> = Vec::new();
        let mut raw_index_sinks: Vec<(Sink, String)> = Vec::new();
        let mut mentions_trial_runner = false;
        let mut calls_run = false;
        while i < end {
            let t = self.text(i).to_owned();
            // Nested named fn: its own item; don't attribute to parent.
            if t == "fn"
                && self
                    .ctx
                    .sig_tok(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
                && self.text(i + 2) != ":"
            {
                i = self.parse_fn(i, end, module, &Owner::None, false);
                continue;
            }
            if t == "impl" && self.text(i + 1) != "<" && looks_like_impl_block(self, i, end) {
                i = self.parse_impl(i, end, module);
                continue;
            }
            let tok = match self.ctx.sig_tok(i) {
                Some(t) => *t,
                None => break,
            };
            let (line, col) = (tok.line, tok.col);
            let sink = |what: &str, p: &Parser<'_, '_>| Sink {
                line,
                col,
                what: what.to_owned(),
                snippet: p.ctx.snippet(line),
            };
            if tok.kind == TokenKind::Ident {
                match t.as_str() {
                    "Instant" | "SystemTime" => {
                        item.facts.wall_clock.push(sink(&t, self));
                    }
                    "thread_rng" | "OsRng" | "RandomState" | "from_entropy" | "getrandom" => {
                        item.facts.os_random.push(sink(&t, self));
                    }
                    "TrialRunner" => mentions_trial_runner = true,
                    _ => {}
                }
                // Panic macros: `panic !`, excluding `assert` (debug
                // assertions are policy-allowed; the per-file no-panic
                // rule has the same carve-out).
                if PANIC_MACROS.contains(&t.as_str()) && t != "assert" && self.text(i + 1) == "!" {
                    item.facts.panics.push(sink(&format!("{t}!"), self));
                }
                // `.unwrap()` / `.expect(`
                if (t == "unwrap" || t == "expect")
                    && i >= 1
                    && self.text(i - 1) == "."
                    && self.text(i + 1) == "("
                {
                    item.facts.panics.push(sink(&format!(".{t}()"), self));
                }
                // `Box::new` / `Vec::new`
                if (t == "Box" || t == "Vec")
                    && self.text(i + 1) == ":"
                    && self.text(i + 2) == ":"
                    && self.text(i + 3) == "new"
                {
                    item.facts.allocs.push(sink(&format!("{t}::new"), self));
                }
                // `.to_string()`
                if t == "to_string" && i >= 1 && self.text(i - 1) == "." && self.text(i + 1) == "("
                {
                    item.facts.allocs.push(sink(".to_string()", self));
                }
                // `.lock(` / `.try_lock(`
                if (t == "lock" || t == "try_lock")
                    && i >= 1
                    && self.text(i - 1) == "."
                    && self.text(i + 1) == "("
                {
                    item.facts.locks.push(sink(&format!(".{t}()"), self));
                }
                // ALL_CAPS reference (candidate static use).
                if t.len() > 1
                    && t.chars()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                    && t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    item.facts.caps_refs.push(sink(&t, self));
                }
                // Guard observations: `x.len(` / `x.is_empty(` /
                // `x.get(` bound-check the receiver, and passing `x`
                // as a bare argument (`need(x, 6)?`, `parse(x)`)
                // delegates validation to the callee — either clears
                // subsequent indexing of `x` in this body.
                let bounds_call = self.text(i + 1) == "."
                    && matches!(self.text(i + 2), "len" | "is_empty" | "get")
                    && self.text(i + 3) == "(";
                let bare_argument = i >= 1
                    && matches!(self.text(i - 1), "(" | "," | "&")
                    && !matches!(self.text(i + 1), "[" | ".");
                if (bounds_call || bare_argument) && !len_checked.contains(&t) {
                    len_checked.push(t.clone());
                }
                // Call sites.
                if !KEYWORDS_NOT_CALLS.contains(&t.as_str()) {
                    let after = self.after_turbofish(i + 1, end);
                    if self.text(after) == "(" {
                        if self.text(i - 1) == "." {
                            if t == "run" {
                                calls_run = true;
                            }
                            item.calls.push(CallSite {
                                name: t.clone(),
                                kind: CallKind::Method,
                                line,
                            });
                        } else if self.text(i + 1) == "(" || self.text(after) == "(" {
                            // Walk back over `a :: b ::` qualifiers.
                            let mut quals = Vec::new();
                            let mut j = i;
                            while j >= 3
                                && self.text(j - 1) == ":"
                                && self.text(j - 2) == ":"
                                && self
                                    .ctx
                                    .sig_tok(j - 3)
                                    .is_some_and(|q| q.kind == TokenKind::Ident)
                            {
                                quals.insert(0, self.text(j - 3).to_owned());
                                j -= 3;
                            }
                            item.calls.push(CallSite {
                                name: t.clone(),
                                kind: CallKind::Path { quals },
                                line,
                            });
                        }
                    }
                }
                // Slice-index expression on a byte-slice param: ident
                // directly followed by `[`. Other receivers (NodeId
                // arrays, Vec fields) are structurally bounded by
                // construction and out of scope.
                if self.text(i + 1) == "[" && byte_slice_params.contains(&t) {
                    raw_index_sinks.push((sink(&format!("{t}[..]"), self), t.clone()));
                }
            }
            i += 1;
        }
        // Index sinks survive only when the receiver has no visible
        // bounds handling anywhere in the body.
        item.facts.index_sinks = raw_index_sinks
            .into_iter()
            .filter(|(_, recv)| !len_checked.contains(recv))
            .map(|(s, _)| s)
            .collect();
        item.facts.trial_caller = mentions_trial_runner && calls_run;
    }

    /// If sig index `i` starts a turbofish (`:: < … >`), return the
    /// index just past the closing `>`; otherwise return `i`.
    fn after_turbofish(&self, i: usize, end: usize) -> usize {
        if self.text(i) != ":" || self.text(i + 1) != ":" || self.text(i + 2) != "<" {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    if self.text(j - 1) != "-" {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                "(" | ")" | ";" | "{" | "}" => return i, // not a turbofish
                _ => {}
            }
            j += 1;
        }
        i
    }
}

/// Heuristic: does `impl` at `i` open an `impl … { … }` block (vs. an
/// `impl Trait` return/param type)? True when a `{` appears before any
/// `;`, `)` or `,` at depth 0.
fn looks_like_impl_block(p: &Parser<'_, '_>, i: usize, end: usize) -> bool {
    let mut paren = 0i32;
    for j in (i + 1)..end.min(i + 64) {
        match p.text(j) {
            "(" => paren += 1,
            ")" if paren == 0 => return false,
            ")" => paren -= 1,
            "," | ";" | ">" if paren == 0 => return false,
            "{" if paren == 0 => return true,
            _ => {}
        }
    }
    false
}

/// Expand a flat `use` token list (without the `use` keyword or `;`)
/// into local-name → path mappings. Handles `a::b::{c, d as e}`,
/// nested groups, `as` aliases, and `*` globs.
fn expand_use_tree(toks: &[String], prefix: &mut Vec<String>, out: &mut Vec<UseItem>) {
    let mut i = 0;
    let depth_start = prefix.len();
    while i < toks.len() {
        match toks[i].as_str() {
            ":" => i += 1,
            "{" => {
                // Split the group into comma-separated parts at depth 0.
                let close = matching_brace(toks, i);
                let inner = &toks[i + 1..close];
                for part in split_top_commas(inner) {
                    expand_use_tree(&part, prefix, out);
                }
                i = close + 1;
                // After a group the path prefix resets to the group's
                // own base.
                prefix.truncate(depth_start);
            }
            "}" | "," => i += 1,
            "*" => {
                out.push(UseItem {
                    local: "*".to_owned(),
                    path: prefix.clone(),
                });
                i += 1;
            }
            "as" => {
                // Rename the previous terminal segment.
                let alias = toks.get(i + 1).cloned().unwrap_or_default();
                if let Some(last) = out.last_mut() {
                    last.local = alias;
                }
                i += 2;
            }
            seg => {
                let is_last = i + 1 >= toks.len()
                    || toks[i + 1] == ","
                    || toks[i + 1] == "as"
                    || toks[i + 1] == "}";
                prefix.push(seg.to_owned());
                if is_last {
                    out.push(UseItem {
                        local: seg.to_owned(),
                        path: prefix.clone(),
                    });
                    prefix.truncate(depth_start);
                }
                i += 1;
            }
        }
    }
    prefix.truncate(depth_start);
}

fn matching_brace(toks: &[String], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

fn split_top_commas(toks: &[String]) -> Vec<Vec<String>> {
    let mut parts = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t.as_str() {
            "{" => {
                depth += 1;
                cur.push(t.clone());
            }
            "}" => {
                depth -= 1;
                cur.push(t.clone());
            }
            "," if depth == 0 => {
                if !cur.is_empty() {
                    parts.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

impl FnItem {
    /// `crate::module::Owner::name` display form.
    pub fn pretty(&self, crate_key: &str) -> String {
        let mut s = String::from(crate_key);
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(o) = &self.owner {
            s.push_str("::");
            s.push_str(o);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> ParsedFile {
        let ctx = FileContext::new(path, src);
        parse_file(&ctx, path)
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module_path("crates/net/src/routing/flooding.rs"),
            vec!["routing", "flooding"]
        );
        assert_eq!(
            file_module_path("crates/net/src/routing/mod.rs"),
            vec!["routing"]
        );
        assert!(file_module_path("crates/net/src/lib.rs").is_empty());
        assert!(file_module_path("src/lib.rs").is_empty());
    }

    #[test]
    fn parses_free_fns_and_calls() {
        let f = parse(
            "crates/net/src/x.rs",
            "pub fn a() { b(); c::d(); obj.m(1); }\nfn b() {}\n",
        );
        assert_eq!(f.fns.len(), 2);
        let a = &f.fns[0];
        assert!(a.is_pub);
        assert_eq!(a.name, "a");
        assert_eq!(a.calls.len(), 3);
        assert_eq!(a.calls[0].name, "b");
        assert_eq!(
            a.calls[1].kind,
            CallKind::Path {
                quals: vec!["c".to_owned()]
            }
        );
        assert_eq!(a.calls[2].kind, CallKind::Method);
        assert!(!f.fns[1].is_pub);
    }

    #[test]
    fn impl_blocks_attribute_owner_and_trait() {
        let src = "struct S;\ntrait T { fn t(&self) { helper(); } }\n\
                   impl T for S { fn t(&self) { self.go(); } }\n\
                   impl S { pub fn go(&self) {} }\n";
        let f = parse("crates/net/src/x.rs", src);
        let names: Vec<(String, Option<String>, Option<String>)> = f
            .fns
            .iter()
            .map(|x| (x.name.clone(), x.owner.clone(), x.trait_impl.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("t".to_owned(), Some("T".to_owned()), None),
                ("t".to_owned(), Some("S".to_owned()), Some("T".to_owned())),
                ("go".to_owned(), Some("S".to_owned()), None),
            ]
        );
        assert_eq!(f.traits_defined, vec!["T"]);
    }

    #[test]
    fn inline_mods_extend_module_path() {
        let src = "mod inner { pub fn f() {} }\n";
        let f = parse("crates/net/src/routing/mod.rs", src);
        assert_eq!(f.fns[0].module, vec!["routing", "inner"]);
    }

    #[test]
    fn facts_extracted() {
        let src = "fn f(buf: &[u8]) -> u8 {\n\
                   let t = Instant::now();\n\
                   let r = thread_rng();\n\
                   x.unwrap(); panic!(\"boom\");\n\
                   let b = Box::new(1); let v = Vec::new(); let s = y.to_string();\n\
                   let g = m.lock().unwrap();\n\
                   buf[0]\n\
                   }\n";
        let f = parse("crates/net/src/x.rs", src);
        let facts = &f.fns[0].facts;
        assert_eq!(facts.wall_clock.len(), 1);
        assert_eq!(facts.os_random.len(), 1);
        assert_eq!(facts.panics.len(), 3); // unwrap, panic!, lock-unwrap
        assert_eq!(facts.allocs.len(), 3);
        assert_eq!(facts.locks.len(), 1);
        assert_eq!(facts.index_sinks.len(), 1);
        assert!(f.fns[0].byte_slice_param);
    }

    #[test]
    fn len_guard_suppresses_index_sink() {
        let src = "fn f(buf: &[u8]) -> u8 { if buf.len() < 2 { return 0; } buf[1] }\n";
        let f = parse("crates/net/src/x.rs", src);
        assert!(f.fns[0].facts.index_sinks.is_empty());
        let src2 = "fn f(buf: &[u8]) -> u8 { buf[1] }\n";
        let f2 = parse("crates/net/src/x.rs", src2);
        assert_eq!(f2.fns[0].facts.index_sinks.len(), 1);
    }

    #[test]
    fn trial_caller_detected() {
        let src = "fn drive() { let r = TrialRunner::new(1, 4); let out = r.run(|t| t.index); }\n";
        let f = parse("crates/testbed/src/x.rs", src);
        assert!(f.fns[0].facts.trial_caller);
        let plain = parse("crates/testbed/src/x.rs", "fn g() { r.run(1); }");
        assert!(!plain.fns[0].facts.trial_caller);
    }

    #[test]
    fn use_trees_expand() {
        let src = "use std::collections::{BTreeMap, HashMap as HM};\nuse lv_net::routing::*;\n";
        let f = parse("crates/net/src/x.rs", src);
        let m: Vec<(String, Vec<String>)> = f
            .uses
            .iter()
            .map(|u| (u.local.clone(), u.path.clone()))
            .collect();
        assert!(m.contains(&(
            "BTreeMap".to_owned(),
            vec!["std".into(), "collections".into(), "BTreeMap".into()]
        )));
        assert!(m.contains(&(
            "HM".to_owned(),
            vec!["std".into(), "collections".into(), "HashMap".into()]
        )));
        assert!(m.contains(&("*".to_owned(), vec!["lv_net".into(), "routing".into()])));
    }

    #[test]
    fn statics_parsed() {
        let src = "static mut RAW: u32 = 0;\nstatic TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());\nstatic OK: u32 = 1;\n";
        let f = parse("crates/net/src/x.rs", src);
        assert_eq!(f.statics.len(), 3);
        assert!(f.statics[0].mutable);
        assert!(f.statics[1].interior_mutable);
        assert!(!f.statics[2].mutable && !f.statics[2].interior_mutable);
    }

    #[test]
    fn test_fns_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}\nfn real() {}\n";
        let f = parse("crates/net/src/x.rs", src);
        assert!(f.fns[0].is_test);
        assert!(!f.fns[1].is_test);
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let src = "fn outer() {\n fn inner() { x.unwrap(); }\n inner();\n}\n";
        let f = parse("crates/net/src/x.rs", src);
        assert_eq!(f.fns.len(), 2);
        let inner = f.fns.iter().find(|x| x.name == "inner").unwrap();
        let outer = f.fns.iter().find(|x| x.name == "outer").unwrap();
        assert_eq!(inner.facts.panics.len(), 1);
        assert!(outer.facts.panics.is_empty());
        assert_eq!(outer.calls.len(), 1);
    }

    #[test]
    fn hot_tag_and_turbofish() {
        let src = "// lv-lint: hot\nfn f() { g::<u32>(); h.collect::<Vec<_>>(); }\n";
        let f = parse("crates/kernel/src/x.rs", src);
        assert!(f.fns[0].is_hot);
        let names: Vec<&str> = f.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"g"));
        assert!(names.contains(&"collect"));
    }
}
