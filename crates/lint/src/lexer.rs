//! A small hand-rolled Rust tokenizer.
//!
//! The analyzer deliberately avoids `syn` (the workspace builds with no
//! crates.io access), and the rules it enforces are lexical properties:
//! which identifiers appear where, what string literals are passed to
//! which methods, whether a `pub` item is preceded by a doc comment.
//! For those questions a faithful token stream is enough — no AST, no
//! macro expansion — as long as the lexer gets the hard cases right:
//! nested block comments, raw strings, char literals vs. lifetimes, and
//! doc comments vs. plain comments.
//!
//! Tokens carry their line/column so findings can report exact spans,
//! and comments are kept *in* the stream: the allow-directive scanner
//! and the pub-doc rule both need them.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Numeric literal (integer or float, suffixes included).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct,
    /// `// …` comment that is *not* a doc comment.
    LineComment,
    /// `/* … */` comment that is *not* a doc comment.
    BlockComment,
    /// Outer doc comment: `/// …` or `/** … */`.
    DocComment,
    /// Inner doc comment: `//! …` or `/*! … */`.
    InnerDocComment,
}

/// One lexeme with its source position (1-based line and column).
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The raw source text of the lexeme.
    pub text: &'a str,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in bytes) of the first character.
    pub col: u32,
}

impl Token<'_> {
    /// True for comment tokens of any flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
                | TokenKind::InnerDocComment
        )
    }

    /// True for `///`, `/** */`, `//!` and `/*! */` comments.
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::DocComment | TokenKind::InnerDocComment
        )
    }
}

/// Tokenize `src`, returning every lexeme including comments.
///
/// The lexer is resilient: malformed input (an unterminated string, a
/// stray byte) never panics — it produces a best-effort token and moves
/// on, because a linter that dies on the file it is checking is worse
/// than one that misses a token.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, maintaining the line/column counters. A no-op
    /// at end of input, so multi-byte consumers (escape sequences,
    /// comment closers) can never push the cursor past the end of the
    /// source — an escape at EOF (`"\`) used to do exactly that and
    /// panic the span slice in `emit`.
    fn bump(&mut self) {
        if self.pos >= self.bytes.len() {
            return;
        }
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    let kind = match (self.peek(2), self.peek(3)) {
                        // `////…` is a plain comment by convention.
                        (b'/', b'/') => TokenKind::LineComment,
                        (b'/', _) => TokenKind::DocComment,
                        (b'!', _) => TokenKind::InnerDocComment,
                        _ => TokenKind::LineComment,
                    };
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(kind, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    let kind = match self.peek(2) {
                        // `/**/` is empty, `/***` is decoration: plain.
                        b'*' if self.peek(3) != b'/' && self.peek(3) != b'*' => {
                            TokenKind::DocComment
                        }
                        b'!' => TokenKind::InnerDocComment,
                        _ => TokenKind::BlockComment,
                    };
                    self.bump_n(2);
                    let mut depth = 1u32;
                    while self.pos < self.bytes.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(kind, start, line, col);
                }
                b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_str_ahead(1)) => {
                    self.bump(); // r
                    self.lex_raw_string();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump(); // b
                    self.lex_quoted(b'"');
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == b'r'
                    && (self.peek(2) == b'"'
                        || (self.peek(2) == b'#' && self.raw_str_ahead(2))) =>
                {
                    self.bump_n(2); // br
                    self.lex_raw_string();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump(); // b
                    self.lex_quoted(b'\'');
                    self.emit(TokenKind::Char, start, line, col);
                }
                b'"' => {
                    self.lex_quoted(b'"');
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    // Lifetime or char literal. A lifetime is `'ident`
                    // NOT followed by a closing quote; `'a'` is a char.
                    if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
                        self.bump(); // '
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.emit(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.lex_quoted(b'\'');
                        self.emit(TokenKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    self.lex_number();
                    self.emit(TokenKind::Number, start, line, col);
                }
                c if is_ident_start(c) => {
                    // Raw identifiers (`r#match`) reach here via the
                    // `r` branch guard failing (no `"` after `#`).
                    if c == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                        self.bump_n(2);
                    }
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// After an `r` at offset `at`, is `#…#"` ahead (a raw string with
    /// hash guards rather than a raw identifier)?
    fn raw_str_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// Lex a `"…"`-or-`'…'` literal with escapes; cursor on the opening
    /// quote.
    fn lex_quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                c if c == quote => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Lex `#…#"…"#…#`; cursor on the first `#` or the `"`.
    fn lex_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    fn lex_number(&mut self) {
        // Integer part: digits, radix prefixes, `_`, hex letters, and
        // type suffixes all fall under "alphanumeric or underscore".
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        // Fractional part only when a digit follows the dot — `1.max()`
        // and `0..n` must not swallow the dot.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        }
        // Exponent sign (`1e-9`): the `e` was consumed above; a sign
        // followed by digits continues the literal.
        if (self.peek(0) == b'+' || self.peek(0) == b'-')
            && self.peek(1).is_ascii_digit()
            && self.src[..self.pos]
                .bytes()
                .last()
                .is_some_and(|b| b == b'e' || b == b'E')
        {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = 42;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn method_on_number_does_not_eat_dot() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Number, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Ident, "max"));
    }

    #[test]
    fn floats_and_exponents() {
        let toks = kinds("3.25 1e-9 0x1f 1_000u64");
        assert_eq!(
            toks.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![TokenKind::Number; 4]
        );
        assert_eq!(toks[1].1, "1e-9");
    }

    #[test]
    fn comment_flavors() {
        let toks = kinds("// c\n/// d\n//! i\n/* b */ /** db */ code");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::DocComment);
        assert_eq!(toks[2].0, TokenKind::InnerDocComment);
        assert_eq!(toks[3].0, TokenKind::BlockComment);
        assert_eq!(toks[4].0, TokenKind::DocComment);
        assert_eq!(toks[5], (TokenKind::Ident, "code"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn strings_with_escapes_and_raw() {
        let toks = kinds(r####""a\"b" r"c" r#"d"e"# b"f" 'g' '\n' b'h'"####);
        assert_eq!(
            toks.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::Str,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
        assert_eq!(toks[2].1, r##"r#"d"e"#"##);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str 'x' '_'");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(toks[3], (TokenKind::Char, "'x'"));
        // `'_'` is a char-sized token; either reading is fine for the
        // rules, but it must not panic or desync the stream.
        assert!(toks.len() >= 4);
    }

    #[test]
    fn comment_containing_code_is_inert() {
        // A doc example mentioning `.unwrap()` must stay inside the
        // comment token, not leak `unwrap` into the ident stream.
        let toks = kinds("/// let x = y.unwrap();\nfn f() {}");
        assert_eq!(toks[0].0, TokenKind::DocComment);
        assert_eq!(toks[1], (TokenKind::Ident, "fn"));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = tokenize("a\n  bb\ncc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = kinds("\"never closed");
        assert_eq!(toks[0].0, TokenKind::Str);
    }

    #[test]
    fn escape_at_eof_does_not_panic() {
        // `"\` — the escape consumes two bytes but only one remains.
        for src in ["\"\\", "'\\", "b\"\\", "fn f() { let s = \"abc\\"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "no tokens for {src:?}");
            for t in &toks {
                assert!(t.text.len() <= src.len());
            }
        }
    }

    #[test]
    fn raw_string_contents_stay_inside_the_token() {
        // Sink-looking text inside raw strings must never leak into the
        // ident stream where a rule could see it.
        let src = r####"let a = r"Instant::now()"; let b = r#"x.unwrap() /* { "#; let c = 1;"####;
        let toks = tokenize(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "a", "let", "b", "let", "c"]);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs.len(), 2, "{strs:?}");
        assert!(strs[0].contains("Instant"));
        assert!(strs[1].contains("unwrap"));
    }

    #[test]
    fn raw_string_with_more_hashes_than_needed() {
        let src = r#####"r###"a "# b "## c"### x"#####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn nested_block_comment_with_quotes_inside() {
        // Block comments nest regardless of quote characters inside
        // them (rustc behaves the same way): the `"` before the inner
        // `/*` must not suspend depth tracking.
        let toks = kinds("/* \" /* \" */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "code"));
    }

    #[test]
    fn byte_raw_string() {
        let toks = kinds(r###"br#"x " y"# z"###);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "z"));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#match x");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match"));
        assert_eq!(toks[1], (TokenKind::Ident, "x"));
    }
}
