//! The rule engine: named lexical rules over one file's token stream.
//!
//! Each rule is a pure function from a [`FileContext`] to findings.
//! Rules see the significant (non-comment) token stream plus enough
//! side information to honor the repo's escape hatches: `#[cfg(test)]`
//! regions are skipped by every rule, and an inline
//! `// lv-lint: allow(<rule>)` on the offending line (or the line
//! above) suppresses a finding at the source.

use crate::config::{crate_key_of, LintConfig};
use crate::lexer::{tokenize, Token, TokenKind};

/// One hop of the call chain behind an interprocedural finding: a
/// function the taint flowed through on its way from source to sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Display name (`crate::module::Type::fn`).
    pub func: String,
    /// Repo-relative file holding the function.
    pub path: String,
    /// 1-based line of the `fn` item.
    pub line: u32,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line (used for baseline fingerprints).
    pub snippet: String,
    /// Call chain from taint source to the sink, outermost first.
    /// Empty for per-file (lexical) rules.
    pub chain: Vec<ChainHop>,
}

impl Finding {
    /// Render as `path:line:col: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    /// Render the call-chain evidence as indented continuation lines
    /// (empty string when there is no chain). Kept off the primary
    /// `render()` line so `path:line:col:` stays machine-parseable.
    pub fn render_chain(&self) -> String {
        let mut s = String::new();
        for (i, hop) in self.chain.iter().enumerate() {
            let arrow = if i == 0 { "chain:" } else { "    ->" };
            s.push_str(&format!(
                "    {arrow} {} ({}:{})\n",
                hop.func, hop.path, hop.line
            ));
        }
        s
    }
}

/// Everything a rule may look at for one file.
pub struct FileContext<'a> {
    /// Repo-relative path (forward slashes).
    pub path: &'a str,
    /// Crate key (`kernel`, `radio`, …, `root`).
    pub crate_key: &'a str,
    /// The full token stream, comments included.
    pub tokens: Vec<Token<'a>>,
    /// Indices into `tokens` of significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Source lines (for snippets).
    lines: Vec<&'a str>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(u32, u32)>,
    /// `(line, rule)` pairs allowed by inline directives; `"all"`
    /// allows every rule on that line.
    allows: Vec<(u32, String)>,
}

impl<'a> FileContext<'a> {
    /// Lex `src` and precompute test spans and allow directives.
    pub fn new(path: &'a str, src: &'a str) -> FileContext<'a> {
        let tokens = tokenize(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut ctx = FileContext {
            path,
            crate_key: crate_key_of(path),
            lines: src.lines().collect(),
            test_spans: Vec::new(),
            allows: Vec::new(),
            tokens,
            sig,
        };
        ctx.scan_test_spans();
        ctx.scan_allow_directives();
        ctx
    }

    /// The significant token at sig-position `i`, if any.
    pub fn sig_tok(&self, i: usize) -> Option<&Token<'a>> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    /// True when `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// True when `rule` is allowed (suppressed) on `line` by an inline
    /// directive on the same line or the line above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| (*l == line || *l + 1 == line) && (r == rule || r == "all"))
    }

    /// The trimmed source text of `line`.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, tok: &Token<'_>, message: String) {
        if self.is_test_line(tok.line) || self.is_allowed(rule, tok.line) {
            return;
        }
        out.push(Finding {
            rule,
            path: self.path.to_owned(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
            chain: Vec::new(),
        });
    }

    /// Find `#[cfg(test)]` / `#[cfg(any(test, …))]` / `#[test]`
    /// attributes and record the line span of the item each one guards.
    fn scan_test_spans(&mut self) {
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < self.sig.len() {
            if self.sig_text(i) == "#" && self.sig_text(i + 1) == "[" {
                let close = self.matching(i + 1, "[", "]");
                let mut is_test = false;
                let mut negated = false;
                for j in (i + 2)..close {
                    match self.sig_text(j) {
                        "test" => is_test = true,
                        "not" => negated = true,
                        _ => {}
                    }
                }
                if is_test && !negated {
                    // Skip any further attributes, then span the item.
                    let mut k = close + 1;
                    while self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
                        k = self.matching(k + 1, "[", "]") + 1;
                    }
                    let start_line = self.sig_tok(i).map(|t| t.line).unwrap_or(1);
                    let end = self.item_end(k);
                    let end_line = self
                        .sig_tok(end.min(self.sig.len().saturating_sub(1)))
                        .map(|t| t.line)
                        .unwrap_or(start_line);
                    spans.push((start_line, end_line));
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
        self.test_spans = spans;
    }

    /// Sig-index of the token closing the group opened at `open_idx`
    /// (which must hold `open`). Returns the last sig index on
    /// unbalanced input.
    fn matching(&self, open_idx: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open_idx;
        while i < self.sig.len() {
            let t = self.sig_text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.sig.len().saturating_sub(1)
    }

    /// Sig-index of the last token of the item starting at `start`:
    /// either the `;` ending a declaration or the `}` closing the first
    /// top-level brace group.
    fn item_end(&self, start: usize) -> usize {
        let mut i = start;
        while i < self.sig.len() {
            match self.sig_text(i) {
                "{" => return self.matching(i, "{", "}"),
                ";" => return i,
                _ => i += 1,
            }
        }
        self.sig.len().saturating_sub(1)
    }

    /// Text of the significant token at sig-position `i` (empty past
    /// the end).
    fn sig_text(&self, i: usize) -> &str {
        self.sig_tok(i).map(|t| t.text).unwrap_or("")
    }

    /// Parse `lv-lint: allow(rule[, rule…])` directives out of comments.
    fn scan_allow_directives(&mut self) {
        let mut allows = Vec::new();
        for t in &self.tokens {
            if !t.is_comment() {
                continue;
            }
            let Some(at) = t.text.find("lv-lint:") else {
                continue;
            };
            let rest = &t.text[at + "lv-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                continue;
            };
            let args = &rest[open + "allow(".len()..];
            let Some(close) = args.find(')') else {
                continue;
            };
            for rule in args[..close].split(',') {
                allows.push((t.line, rule.trim().to_owned()));
            }
        }
        self.allows = allows;
    }
}

/// A registered rule.
pub struct Rule {
    /// Rule name, as used in configs, directives, and baselines.
    pub name: &'static str,
    /// One-line description (for `--list-rules`).
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileContext<'_>, &mut Vec<Finding>),
}

/// Every rule the analyzer knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        summary: "no Instant/SystemTime in sim-path crates (virtual time only)",
        check: check_wall_clock,
    },
    Rule {
        name: "os-random",
        summary: "no OS/thread RNG or RandomState in sim-path crates (seeded SimRng only)",
        check: check_os_random,
    },
    Rule {
        name: "hash-type",
        summary: "no std HashMap/HashSet in sim-path crates (BTreeMap/BTreeSet instead)",
        check: check_hash_type,
    },
    Rule {
        name: "hash-iter",
        summary: "no iteration over HashMap/HashSet (order leaks hasher state)",
        check: check_hash_iter,
    },
    Rule {
        name: "no-panic",
        summary: "no unwrap/expect/panic!/unreachable! in kernel and radio non-test code",
        check: check_no_panic,
    },
    Rule {
        name: "hot-path-alloc",
        summary: "no Box::new/Vec::new/to_string in functions tagged `// lv-lint: hot`",
        check: check_hot_path_alloc,
    },
    Rule {
        name: "counter-name",
        summary: "counter ids must be namespaced: `ns.name` (e.g. dyn.node_down)",
        check: check_counter_name,
    },
    Rule {
        name: "trace-coverage",
        summary: "kernel functions counting dyn.* mutations must emit a trace event",
        check: check_trace_coverage,
    },
    Rule {
        name: "pub-doc",
        summary: "pub items need doc comments",
        check: check_pub_doc,
    },
];

/// Look up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Run every rule enabled for the file's crate, returning findings
/// sorted by position.
pub fn check_file(ctx: &FileContext<'_>, config: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for name in config.rules_for(ctx.crate_key) {
        if let Some(rule) = rule_by_name(name) {
            (rule.check)(ctx, &mut out);
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------

fn check_wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            ctx.push(
                out,
                "wall-clock",
                t,
                format!(
                    "`{}` is a wall-clock time source; simulation paths must use SimTime",
                    t.text
                ),
            );
        }
    }
}

fn check_os_random(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "OsRng",
        "RandomState",
        "from_entropy",
        "getrandom",
    ];
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind == TokenKind::Ident && BANNED.contains(&t.text) {
            ctx.push(
                out,
                "os-random",
                t,
                format!(
                    "`{}` draws OS entropy; simulation paths must use the seeded SimRng streams",
                    t.text
                ),
            );
        }
    }
}

fn check_hash_type(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            ctx.push(
                out,
                "hash-type",
                t,
                format!(
                    "`{}` iteration order depends on RandomState; this crate feeds serialized \
                     output — use BTreeMap/BTreeSet",
                    t.text
                ),
            );
        }
    }
}

fn check_hash_iter(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const ITERATORS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "retain",
    ];
    // Pass 1: identifiers declared with a hash-collection type in this
    // file — `name: HashMap<…>` fields/params and
    // `let name = HashMap::new()` bindings.
    let mut hashed: Vec<&str> = Vec::new();
    for i in 0..ctx.sig.len() {
        let t = ctx.sig_text_pub(i);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        if i == 0 {
            continue;
        }
        // Walk back over a `std::collections::` path prefix (colons are
        // single-char tokens) and any `&`/`&mut` to reach the `:`
        // (field/param) or `=` (binding) that names the identifier.
        let mut j = i - 1;
        while j >= 3
            && ctx.sig_text_pub(j) == ":"
            && ctx.sig_text_pub(j - 1) == ":"
            && ctx
                .sig_tok(j - 2)
                .is_some_and(|p| p.kind == TokenKind::Ident)
        {
            j -= 3;
        }
        while j >= 1 && matches!(ctx.sig_text_pub(j), "&" | "mut") {
            j -= 1;
        }
        let is_decl_colon =
            ctx.sig_text_pub(j) == ":" && (j == 0 || ctx.sig_text_pub(j - 1) != ":");
        let is_binding_eq = ctx.sig_text_pub(j) == "=";
        if j >= 1
            && (is_decl_colon || is_binding_eq)
            && ctx
                .sig_tok(j - 1)
                .is_some_and(|p| p.kind == TokenKind::Ident)
        {
            hashed.push(ctx.sig_tok(j - 1).map(|p| p.text).unwrap_or(""));
        }
    }
    if hashed.is_empty() {
        return;
    }
    // Track the spans of `for … in <expr> {` headers: any hashed
    // identifier named in the iterated expression is a finding
    // (`for k in &m`, `for e in &mut self.m`, `for x in m`).
    let mut for_header_until = 0usize; // sig index of the header's `{`
                                       // Pass 2: iteration over any of those identifiers.
    for i in 0..ctx.sig.len() {
        if ctx.sig_text_pub(i) == "for" {
            let mut j = i + 1;
            while j < ctx.sig.len()
                && ctx.sig_text_pub(j) != "in"
                && ctx.sig_text_pub(j) != "{"
                && ctx.sig_text_pub(j) != ";"
            {
                j += 1;
            }
            if ctx.sig_text_pub(j) == "in" {
                let mut k = j + 1;
                while k < ctx.sig.len() && ctx.sig_text_pub(k) != "{" {
                    k += 1;
                }
                for_header_until = for_header_until.max(k);
            }
        }
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind != TokenKind::Ident || !hashed.contains(&t.text) {
            continue;
        }
        // `name.iter()` / `.keys()` / …
        let is_method_iter = ctx.sig_text_pub(i + 1) == "."
            && ITERATORS.contains(&ctx.sig_text_pub(i + 2))
            && ctx.sig_text_pub(i + 3) == "(";
        let is_for_iter = i < for_header_until;
        if is_method_iter || is_for_iter {
            ctx.push(
                out,
                "hash-iter",
                t,
                format!(
                    "iterating hash-backed `{}` leaks hasher order; sort first or use a BTreeMap",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Robustness rules
// ---------------------------------------------------------------------

fn check_no_panic(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `.unwrap()` / `.expect(`
        if (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && ctx.sig_text_pub(i - 1) == "."
            && ctx.sig_text_pub(i + 1) == "("
        {
            ctx.push(
                out,
                "no-panic",
                t,
                format!(
                    "`.{}()` can abort a node mid-simulation; return a typed error or route \
                     through an anomaly counter",
                    t.text
                ),
            );
        }
        // `panic!(` and friends
        if MACROS.contains(&t.text) && ctx.sig_text_pub(i + 1) == "!" {
            ctx.push(
                out,
                "no-panic",
                t,
                format!(
                    "`{}!` in kernel/radio non-test code; use typed errors or an anomaly path",
                    t.text
                ),
            );
        }
    }
}

/// Heap allocation in declared hot paths. A `// lv-lint: hot` comment
/// on the line of (or directly above) a `fn` declares the function a
/// per-event hot path; inside its body, `Box::new`, `Vec::new` and
/// `.to_string()` are flagged — the raw-speed kernel pass moved those
/// onto arenas, inline buffers and interned `CounterId`s, and this rule
/// keeps per-event heap traffic from creeping back in.
fn check_hot_path_alloc(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // Lines carrying a `lv-lint: hot` tag (the directive, not
    // `allow(hot-path-alloc)` — that starts with `allow(`).
    let hot_lines: Vec<u32> = ctx
        .tokens
        .iter()
        .filter(|t| t.is_comment())
        .filter_map(|t| {
            let at = t.text.find("lv-lint:")?;
            let rest = t.text[at + "lv-lint:".len()..].trim_start();
            rest.starts_with("hot").then_some(t.line)
        })
        .collect();
    if hot_lines.is_empty() {
        return;
    }
    let mut i = 0usize;
    while i < ctx.sig.len() {
        if ctx.sig_text_pub(i) != "fn" {
            i += 1;
            continue;
        }
        let fn_line = ctx.sig_tok(i).map(|t| t.line).unwrap_or(0);
        let is_hot = hot_lines.iter().any(|&l| l == fn_line || l + 1 == fn_line);
        // Body = first `{` at paren depth 0 after the signature.
        let mut j = i + 1;
        let mut paren = 0i32;
        let body_open = loop {
            if j >= ctx.sig.len() {
                break None;
            }
            match ctx.sig_text_pub(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => break Some(j),
                ";" if paren == 0 => break None, // trait method decl
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        if !is_hot {
            // Step inside: a nested tagged fn must still be scanned.
            i = open + 1;
            continue;
        }
        let close = ctx.matching_pub(open, "{", "}");
        for k in open..=close {
            let Some(t) = ctx.sig_tok(k) else { break };
            if t.kind != TokenKind::Ident {
                continue;
            }
            // `Box::new` / `Vec::new` (colons lex as single chars).
            if (t.text == "Box" || t.text == "Vec")
                && ctx.sig_text_pub(k + 1) == ":"
                && ctx.sig_text_pub(k + 2) == ":"
                && ctx.sig_text_pub(k + 3) == "new"
            {
                ctx.push(
                    out,
                    "hot-path-alloc",
                    t,
                    format!(
                        "`{}::new` allocates inside a `// lv-lint: hot` function; use the \
                         event arena / an inline buffer, or hoist the allocation out of \
                         the per-event path",
                        t.text
                    ),
                );
            }
            // `.to_string()`
            if t.text == "to_string"
                && k >= 1
                && ctx.sig_text_pub(k - 1) == "."
                && ctx.sig_text_pub(k + 1) == "("
            {
                ctx.push(
                    out,
                    "hot-path-alloc",
                    t,
                    "`.to_string()` allocates inside a `// lv-lint: hot` function; use an \
                     interned CounterId or a static str"
                        .to_owned(),
                );
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------
// Convention rules
// ---------------------------------------------------------------------

/// Counter ids must look like `ns.part` (possibly more dots): a
/// lowercase namespace, then one or more dot-separated components, as
/// in `dyn.node_down`, `padding.capped`, `net.drop.NoRoute`.
fn counter_name_ok(name: &str) -> bool {
    let mut parts = name.split('.');
    let Some(ns) = parts.next() else { return false };
    let ns_ok = !ns.is_empty()
        && ns.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && ns
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    let mut rest = 0;
    let rest_ok = parts.all(|p| {
        rest += 1;
        !p.is_empty() && p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    });
    ns_ok && rest_ok && rest >= 1
}

fn check_counter_name(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        if t.kind != TokenKind::Ident || (t.text != "incr" && t.text != "add") {
            continue;
        }
        if i < 1 || ctx.sig_text_pub(i - 1) != "." || ctx.sig_text_pub(i + 1) != "(" {
            continue;
        }
        let Some(arg) = ctx.sig_tok(i + 2) else {
            continue;
        };
        if arg.kind != TokenKind::Str || !arg.text.starts_with('"') {
            continue;
        }
        let lit = arg.text.trim_matches('"');
        if !counter_name_ok(lit) {
            ctx.push(
                out,
                "counter-name",
                arg,
                format!(
                    "counter id `{lit}` is not namespaced; use `ns.name` like `dyn.node_down` \
                     or `padding.capped`"
                ),
            );
        }
    }
}

fn check_trace_coverage(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // Walk function bodies: a body that counts a `CounterId::Dyn*`
    // state mutation must also emit a trace event (`.emit(`).
    let mut i = 0usize;
    while i < ctx.sig.len() {
        if ctx.sig_text_pub(i) != "fn" {
            i += 1;
            continue;
        }
        // Body = first `{` at paren depth 0 after the signature.
        let mut j = i + 1;
        let mut paren = 0i32;
        let body_open = loop {
            if j >= ctx.sig.len() {
                break None;
            }
            match ctx.sig_text_pub(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => break Some(j),
                ";" if paren == 0 => break None, // trait method decl
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = ctx.matching_pub(open, "{", "}");
        let mut dyn_tok: Option<&Token<'_>> = None;
        let mut has_emit = false;
        for k in open..=close {
            let Some(t) = ctx.sig_tok(k) else { break };
            if t.text == "CounterId"
                && ctx.sig_text_pub(k + 1) == ":"
                && ctx.sig_text_pub(k + 2) == ":"
                && ctx.sig_text_pub(k + 3).starts_with("Dyn")
                && dyn_tok.is_none()
            {
                dyn_tok = ctx.sig_tok(k + 3);
            }
            if t.text == "emit" && ctx.sig_text_pub(k - 1) == "." {
                has_emit = true;
            }
        }
        if let (Some(t), false) = (dyn_tok, has_emit) {
            ctx.push(
                out,
                "trace-coverage",
                t,
                format!(
                    "this function counts `CounterId::{}` but emits no trace event; kernel \
                     state mutations must be visible on the flight-recorder timeline",
                    t.text
                ),
            );
        }
        i = close + 1;
    }
}

fn check_pub_doc(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // Binaries are not API surface: their `pub` is incidental.
    if ctx.path.contains("/bin/") || ctx.path.ends_with("main.rs") {
        return;
    }
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "type", "mod", "static", "const", "union",
    ];
    // Track whether we're inside executable code: braces opened after a
    // `fn`/`macro_rules` header are bodies, and everything nested in a
    // body is a body.
    let mut stack: Vec<bool> = Vec::new(); // true = body
    let mut pending_body = false;
    let mut i = 0usize;
    while i < ctx.sig.len() {
        let Some(t) = ctx.sig_tok(i) else { break };
        match t.text {
            "fn" | "macro_rules" => pending_body = true,
            ";" => pending_body = false,
            "{" => {
                let in_body = stack.last().copied().unwrap_or(false);
                stack.push(in_body || pending_body);
                pending_body = false;
            }
            "}" => {
                stack.pop();
            }
            "pub" if !stack.last().copied().unwrap_or(false) => {
                // Skip restricted visibility: `pub(crate)` etc. are not
                // public API.
                let mut k = i + 1;
                if ctx.sig_text_pub(k) == "(" {
                    i += 1;
                    continue;
                }
                // Skip qualifiers to reach the item keyword.
                while matches!(ctx.sig_text_pub(k), "unsafe" | "async" | "extern")
                    || (ctx.sig_text_pub(k) == "const" && ctx.sig_text_pub(k + 1) == "fn")
                    || ctx.sig_tok(k).is_some_and(|t| t.kind == TokenKind::Str)
                {
                    k += 1;
                }
                let kw = ctx.sig_text_pub(k);
                // `pub mod name;` is documented by the module file's
                // own `//!` inner docs (the rustdoc gate checks those);
                // only inline `pub mod name { … }` needs outer docs.
                if kw == "mod" && ctx.sig_text_pub(k + 2) == ";" {
                    i += 1;
                    continue;
                }
                if ITEM_KEYWORDS.contains(&kw) && !has_doc_before(ctx, i) {
                    let name = ctx.sig_text_pub(k + 1);
                    ctx.push(
                        out,
                        "pub-doc",
                        t,
                        format!("public {kw} `{name}` has no doc comment"),
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Is the `pub` at sig-position `i` preceded (skipping attributes) by a
/// doc comment or a `#[doc…]` attribute?
fn has_doc_before(ctx: &FileContext<'_>, i: usize) -> bool {
    // Walk backwards over the *full* token stream from the pub token.
    let Some(&pub_ti) = ctx.sig.get(i) else {
        return false;
    };
    let mut ti = pub_ti;
    loop {
        if ti == 0 {
            return false;
        }
        ti -= 1;
        let t = &ctx.tokens[ti];
        if t.kind == TokenKind::DocComment {
            return true;
        }
        if t.is_comment() {
            // Plain comments between docs and item are fine; keep going.
            continue;
        }
        if t.text == "]" {
            // Skip the attribute group; a `#[doc = "…"]` counts.
            let mut depth = 1i32;
            let mut saw_doc = false;
            while ti > 0 && depth > 0 {
                ti -= 1;
                let a = &ctx.tokens[ti];
                match a.text {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    "doc" if a.kind == TokenKind::Ident => saw_doc = true,
                    _ => {}
                }
            }
            if saw_doc {
                return true;
            }
            // Step over the leading `#`.
            if ti > 0 && ctx.tokens[ti - 1].text == "#" {
                ti -= 1;
            }
            continue;
        }
        return false;
    }
}

impl<'a> FileContext<'a> {
    /// Public sibling of `sig_text` for rule functions in this module's
    /// tests and fixtures: text of the significant token at `i`.
    pub fn sig_text_pub(&self, i: usize) -> &str {
        self.sig_tok(i).map(|t| t.text).unwrap_or("")
    }

    /// Public sibling of `matching`: sig-index of the token closing the
    /// group opened at `open_idx`.
    pub fn matching_pub(&self, open_idx: usize, open: &str, close: &str) -> usize {
        self.matching(open_idx, open, close)
    }

    /// Inline `lv-lint: allow(rule)` directives as `(line, rule)` pairs
    /// (`"all"` allows every rule) — the item parser carries these into
    /// its owned [`crate::parse::ParsedFile`] so graph rules can honor
    /// them after the borrow ends.
    pub fn allow_directives(&self) -> &[(u32, String)] {
        &self.allows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrateSet;
    use crate::config::RuleConfig;

    fn config_all(rule: &str) -> LintConfig {
        LintConfig {
            rules: vec![RuleConfig {
                rule: rule.to_owned(),
                crates: CrateSet::All,
            }],
        }
    }

    fn findings(rule: &str, path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(path, src);
        check_file(&ctx, &config_all(rule))
    }

    #[test]
    fn wall_clock_flags_instant_not_comments() {
        let src = "// Instant::now in a comment is fine\nfn f() { let t = Instant::now(); }\n";
        let f = findings("wall-clock", "crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(findings("no-panic", "crates/kernel/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        assert_eq!(findings("no-panic", "crates/kernel/src/x.rs", src).len(), 1);
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let same = "fn f() { x.unwrap(); } // lv-lint: allow(no-panic)\n";
        assert!(findings("no-panic", "crates/kernel/src/x.rs", same).is_empty());
        let above = "// lv-lint: allow(no-panic)\nfn f() { x.unwrap(); }\n";
        assert!(findings("no-panic", "crates/kernel/src/x.rs", above).is_empty());
        let wrong = "// lv-lint: allow(wall-clock)\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            findings("no-panic", "crates/kernel/src/x.rs", wrong).len(),
            1
        );
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"e\"); }\n";
        assert!(findings("no-panic", "crates/kernel/src/x.rs", src).is_empty());
    }

    #[test]
    fn counter_names_validated() {
        let good = "fn f(c: &mut Counters) { c.incr(\"dyn.node_down\"); c.add(\"net.drop.NoRoute\", 2); }\n";
        assert!(findings("counter-name", "crates/net/src/x.rs", good).is_empty());
        let bad = "fn f(c: &mut Counters) { c.incr(\"NodeDown\"); }\n";
        let f = findings("counter-name", "crates/net/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("NodeDown"));
    }

    #[test]
    fn hash_iter_catches_method_and_for_loops() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for k in s.m.keys() { use_it(k); } }\n\
                   fn g(m2: &HashMap<u32, u32>) { let _ = m2.len(); }\n";
        let f = findings("hash-iter", "crates/testbed/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn pub_doc_requires_docs_outside_bodies() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\n\
                   fn c() { let pub_ish = 1; }\n";
        let f = findings("pub-doc", "crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains('b'));
    }

    #[test]
    fn pub_doc_skips_file_mod_decls_but_not_inline_mods() {
        let decl = "pub mod network;\n";
        assert!(findings("pub-doc", "crates/kernel/src/lib.rs", decl).is_empty());
        let inline = "pub mod helpers { pub fn x() {} }\n";
        let f = findings("pub-doc", "crates/kernel/src/lib.rs", inline);
        assert!(f.iter().any(|f| f.message.contains("mod `helpers`")));
    }

    #[test]
    fn pub_doc_accepts_doc_attr_and_skips_pub_crate() {
        let src = "#[doc = \"x\"]\npub fn a() {}\npub(crate) fn b() {}\npub use other::Thing;\n";
        assert!(findings("pub-doc", "crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn trace_coverage_pairs_dyn_counters_with_emit() {
        let bad = "fn f(&mut self) { self.counters.incr_id(CounterId::DynNodeDown); }\n";
        let f = findings("trace-coverage", "crates/kernel/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        let good = "fn f(&mut self) { self.counters.incr_id(CounterId::DynNodeDown); \
                    self.trace.emit(now, id, lvl, msg); }\n";
        assert!(findings("trace-coverage", "crates/kernel/src/x.rs", good).is_empty());
    }

    #[test]
    fn hot_path_alloc_only_fires_in_tagged_fns() {
        let cold = "fn f() { let v = Vec::new(); let b = Box::new(1); }\n";
        assert!(findings("hot-path-alloc", "crates/kernel/src/x.rs", cold).is_empty());
        let hot = "// lv-lint: hot\nfn f() { let v = Vec::new(); let b = Box::new(1); }\n";
        let f = findings("hot-path-alloc", "crates/kernel/src/x.rs", hot);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 2);
        let trailing = "fn f(x: u32) -> String { x.to_string() } // lv-lint: hot\n";
        assert_eq!(
            findings("hot-path-alloc", "crates/kernel/src/x.rs", trailing).len(),
            1
        );
        // to_string_lossy and a field named to_string are not `.to_string()`.
        let near = "// lv-lint: hot\nfn f(p: &Path) -> Cow<str> { p.to_string_lossy() }\n";
        assert!(findings("hot-path-alloc", "crates/kernel/src/x.rs", near).is_empty());
    }

    #[test]
    fn hot_path_alloc_allow_and_tests_exempt() {
        let allowed =
            "// lv-lint: hot\nfn f() { let v = Vec::new(); // lv-lint: allow(hot-path-alloc)\n}\n";
        assert!(findings("hot-path-alloc", "crates/kernel/src/x.rs", allowed).is_empty());
        let test_region =
            "#[cfg(test)]\nmod tests {\n    // lv-lint: hot\n    fn f() { let v = Vec::new(); }\n}\n";
        assert!(findings("hot-path-alloc", "crates/kernel/src/x.rs", test_region).is_empty());
    }

    #[test]
    fn findings_render_with_positions() {
        let f = findings(
            "wall-clock",
            "crates/sim/src/x.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(f.len(), 1);
        let line = f[0].render();
        assert!(line.starts_with("crates/sim/src/x.rs:1:"));
        assert!(line.contains("[wall-clock]"));
    }
}
