//! The workspace call graph.
//!
//! Built from [`crate::parse::ParsedFile`]s, entirely on `BTreeMap`s so
//! every iteration order — and therefore every finding order and every
//! DOT dump — is deterministic regardless of the order files were fed
//! in.
//!
//! ## Resolution policy
//!
//! The linter has no type information, so call edges are resolved by
//! name with crate-visibility discipline instead of by types:
//!
//! * **Path calls** (`foo(…)`, `a::b::foo(…)`) resolve to free
//!   functions and associated functions *within the caller's crate
//!   cone* — its own crate plus the transitive closure of its
//!   `Cargo.toml` dependencies. A qualified call's last qualifier must
//!   match the owner type, the module, or the crate of the candidate.
//! * **Method calls** (`recv.m(…)`) resolve to methods named `m` in
//!   the caller's cone, **plus** trait-impl methods in *any* crate
//!   whose trait is defined in a visible crate. The extension captures
//!   dynamic dispatch — the kernel invoking `Process` impls that live
//!   downstream in `core` — without fabricating edges into crates the
//!   caller cannot even name (e.g. kernel's `mac.send(…)` never
//!   resolves to `serve`'s `UdpTransport::send`, because `Transport`
//!   is invisible from `kernel`... and so is `serve` itself).
//!
//! This over-approximates within the cone (any same-named method is an
//! edge) and under-approximates across cones (function pointers,
//! closures passed downstream). Both biases are the right direction
//! for the rules built on top: taint checks want high recall inside
//! the deterministic core, and the trial-body source handles the one
//! closure boundary that matters ([`crate::parse::FnFacts::trial_caller`]).

use crate::parse::{CallKind, FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Stable identifier of a function node: index into [`Graph::fns`].
pub type FnId = usize;

/// The assembled workspace: all parsed files plus the call graph.
pub struct Graph {
    /// Every non-test function in the workspace, sorted by
    /// `(crate, path, line)` — the node table.
    pub fns: Vec<FnNode>,
    /// Forward edges: caller → sorted callee ids.
    pub calls: Vec<Vec<FnId>>,
    /// Forward edges excluding dynamic dispatch (method calls resolved
    /// to trait-impl methods). Rules that model a *lexical* region —
    /// like the hot path — stop at the dispatch boundary; rules that
    /// model taint follow `calls`.
    pub static_calls: Vec<Vec<FnId>>,
    /// Reverse edges: callee → sorted caller ids.
    pub called_by: Vec<Vec<FnId>>,
    /// Crate key → transitive dependency cone (including itself).
    pub cones: BTreeMap<String, BTreeSet<String>>,
}

/// Method names shadowed by the std collection/iterator vocabulary.
/// An unqualified `.push(…)` in kernel code is a `Vec` push, not a
/// call into some crate's `push` method; resolving these by bare name
/// would wire the graph together with noise edges. Methods with these
/// names are only reachable through qualified path calls
/// (`Type::push(…)`), never through method-call syntax.
const STD_SHADOWED_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "extend",
    "drain",
    "retain",
    "entry",
    "append",
    "truncate",
    "sort",
    "sort_by",
    "split_at",
    "join",
    "take",
    "replace",
    "swap",
    "fill",
    "resize",
    "last",
    "first",
    "min",
    "max",
    "count",
    "sum",
    "keys",
    "values",
    "write",
    "flush",
    "read",
    "cmp",
    "eq",
    "hash",
    "fmt",
    "default",
    "from",
    "into",
    "new",
    "as_ref",
    "as_mut",
    "to_owned",
    "borrow",
    "drop",
    "min_by",
    "max_by",
    "rev",
    "clamp",
    "abs",
];

/// One function node (owns the parsed item plus its file coordinates).
pub struct FnNode {
    /// The parsed function.
    pub item: FnItem,
    /// Crate key of the defining file.
    pub crate_key: String,
    /// Repo-relative path of the defining file.
    pub path: String,
}

impl FnNode {
    /// `crate::module::Owner::name` display form.
    pub fn pretty(&self) -> String {
        self.item.pretty(&self.crate_key)
    }
}

/// Compute, for every crate, the transitive closure of its
/// dependencies (including the crate itself). `deps` maps crate key →
/// direct dependency keys.
fn cones(deps: &BTreeMap<String, Vec<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for key in deps.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![key.clone()];
        while let Some(k) = stack.pop() {
            if !seen.insert(k.clone()) {
                continue;
            }
            if let Some(ds) = deps.get(&k) {
                stack.extend(ds.iter().cloned());
            }
        }
        out.insert(key.clone(), seen);
    }
    out
}

impl Graph {
    /// Build the graph from parsed files and the crate dependency map
    /// (crate key → direct dependency crate keys). Files may arrive in
    /// any order; the result is identical.
    pub fn build(mut files: Vec<ParsedFile>, deps: &BTreeMap<String, Vec<String>>) -> Graph {
        files.sort_by(|a, b| a.path.cmp(&b.path));

        let mut cones = cones(deps);
        // Traits defined per crate (for the dynamic-dispatch extension).
        let mut trait_home: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            for t in &f.traits_defined {
                trait_home
                    .entry(t.clone())
                    .or_default()
                    .insert(f.crate_key.clone());
            }
        }

        // Node table: non-test fns, in (crate, path, line) order.
        let mut fns: Vec<FnNode> = Vec::new();
        for f in &files {
            cones
                .entry(f.crate_key.clone())
                .or_insert_with(|| BTreeSet::from([f.crate_key.clone()]));
            for item in &f.fns {
                if item.is_test {
                    continue;
                }
                fns.push(FnNode {
                    item: item.clone(),
                    crate_key: f.crate_key.clone(),
                    path: f.path.clone(),
                });
            }
        }
        fns.sort_by(|a, b| {
            (&a.crate_key, &a.path, a.item.line).cmp(&(&b.crate_key, &b.path, b.item.line))
        });

        // Name indexes. Method index additionally records the trait a
        // method implements (if any) for the dispatch extension.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, n) in fns.iter().enumerate() {
            by_name.entry(n.item.name.as_str()).or_default().push(id);
        }

        let empty = BTreeSet::new();
        let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        let mut static_calls: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (id, n) in fns.iter().enumerate() {
            let cone = cones.get(&n.crate_key).unwrap_or(&empty);
            let mut out: BTreeSet<FnId> = BTreeSet::new();
            let mut out_static: BTreeSet<FnId> = BTreeSet::new();
            for c in &n.item.calls {
                if matches!(c.kind, CallKind::Method)
                    && STD_SHADOWED_METHODS.contains(&c.name.as_str())
                {
                    continue;
                }
                let Some(cands) = by_name.get(c.name.as_str()) else {
                    continue;
                };
                for &cand in cands {
                    if cand == id {
                        continue;
                    }
                    let t = &fns[cand];
                    let in_cone = cone.contains(&t.crate_key);
                    // `is_dyn`: resolved through the trait-dispatch
                    // extension or onto a trait impl — the callee runs
                    // behind a vtable-shaped boundary.
                    let (visible, is_dyn) = match &c.kind {
                        CallKind::Path { quals } => (in_cone && qualifier_matches(quals, t), false),
                        CallKind::Method => {
                            // Methods only (owner present); free fns
                            // are never method-call targets.
                            let vis = t.item.owner.is_some()
                                && (in_cone
                                    || t.item.trait_impl.as_ref().is_some_and(|tr| {
                                        trait_home.get(tr).is_some_and(|homes| {
                                            homes.iter().any(|h| cone.contains(h))
                                        })
                                    }));
                            (vis, t.item.trait_impl.is_some())
                        }
                    };
                    if visible {
                        out.insert(cand);
                        if !is_dyn {
                            out_static.insert(cand);
                        }
                    }
                }
            }
            calls[id] = out.into_iter().collect();
            static_calls[id] = out_static.into_iter().collect();
        }

        let mut called_by: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
        for (caller, outs) in calls.iter().enumerate() {
            for &callee in outs {
                called_by[callee].push(caller);
            }
        }
        for v in &mut called_by {
            v.sort_unstable();
            v.dedup();
        }

        Graph {
            fns,
            calls,
            static_calls,
            called_by,
            cones,
        }
    }

    /// BFS forward from `roots`, returning for every reached node the
    /// id of the node it was first reached *from* (roots map to
    /// themselves). Deterministic: roots are processed sorted, and
    /// edges are stored sorted.
    pub fn reach_forward(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        self.reach(roots, &self.calls)
    }

    /// BFS along reverse edges (who can *reach* these nodes).
    pub fn reach_backward(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        self.reach(roots, &self.called_by)
    }

    /// BFS forward following only static edges — stops at dynamic
    /// dispatch boundaries (see [`Graph::static_calls`]).
    pub fn reach_forward_static(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        self.reach(roots, &self.static_calls)
    }

    fn reach(&self, roots: &[FnId], edges: &[Vec<FnId>]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<FnId> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            parent.insert(r, r);
            queue.push_back(r);
        }
        while let Some(n) = queue.pop_front() {
            for &m in &edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reconstruct the path from a root to `node` using the parent map
    /// returned by [`Graph::reach_forward`] / [`Graph::reach_backward`]
    /// — root first, `node` last.
    pub fn chain_to(&self, parent: &BTreeMap<FnId, FnId>, node: FnId) -> Vec<FnId> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Ids of nodes selected by a predicate, in node order.
    pub fn select(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(n))
            .map(|(id, _)| id)
            .collect()
    }

    /// Render the graph in Graphviz DOT form: one node per function
    /// (labelled `crate::module::Owner::fn`), one edge per resolved
    /// call, clustered by crate. Deterministic output.
    pub fn to_dot(&self) -> String {
        let mut s =
            String::from("digraph lv_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, n) in self.fns.iter().enumerate() {
            by_crate.entry(n.crate_key.as_str()).or_default().push(id);
        }
        for (ck, ids) in &by_crate {
            s.push_str(&format!(
                "  subgraph \"cluster_{ck}\" {{\n    label=\"{ck}\";\n"
            ));
            for &id in ids {
                s.push_str(&format!(
                    "    n{id} [label=\"{}\"];\n",
                    self.fns[id].pretty()
                ));
            }
            s.push_str("  }\n");
        }
        for (caller, outs) in self.calls.iter().enumerate() {
            for &callee in outs {
                s.push_str(&format!("  n{caller} -> n{callee};\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Does a path call's qualifier list plausibly name this target? An
/// unqualified call matches free functions only (method-call syntax
/// would be needed otherwise); `T::f(…)` matches an associated fn whose
/// owner (or trait), module, or crate is `T` (after `lv_x`/`liteview` →
/// key normalization).
fn qualifier_matches(quals: &[String], target: &FnNode) -> bool {
    let Some(last) = quals.last() else {
        return target.item.owner.is_none();
    };
    if last == "self" || last == "crate" || last == "super" {
        // `self::f()` names a free fn in the caller's module family.
        return target.item.owner.is_none();
    }
    let as_key = crate_key_of_pkg(last);
    if let Some(owner) = &target.item.owner {
        if owner == last {
            return true;
        }
        if let Some(tr) = &target.item.trait_impl {
            if tr == last {
                return true;
            }
        }
        // `Type::method` via qualifier only; module/crate qualifiers
        // do not reach into impl blocks' methods without the type name.
        false
    } else {
        target.item.module.iter().any(|m| m == last) || target.crate_key == as_key
    }
}

/// Normalize a code-level crate name to its directory key:
/// `lv_net`/`lv-net` → `net`, `liteview` → `core`, anything else
/// unchanged.
pub fn crate_key_of_pkg(name: &str) -> String {
    let n = name.replace('-', "_");
    if n == "liteview" {
        return "core".to_owned();
    }
    n.strip_prefix("lv_").unwrap_or(&n).to_owned()
}

/// Parse the `[dependencies]` section of a `Cargo.toml`, returning the
/// dependency names normalized to crate keys. Tolerant line-based
/// parsing: `name.workspace = true`, `name = { … }`, `name = "1.0"`.
pub fn parse_manifest_deps(toml: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(['=', '.', ' '])
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('"');
        if !name.is_empty() {
            out.push(crate_key_of_pkg(name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileContext;

    fn parsed(path: &str, src: &str) -> ParsedFile {
        let ctx = FileContext::new(path, src);
        parse_file(&ctx, path)
    }

    fn deps(pairs: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        pairs
            .iter()
            .map(|(k, ds)| {
                (
                    (*k).to_owned(),
                    ds.iter().map(|s| (*s).to_owned()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn manifest_deps_parse() {
        let toml = "[package]\nname = \"lv-kernel\"\n[dependencies]\nlv-sim.workspace = true\n\
                    liteview.workspace = true\nserde.workspace = true\n[dev-dependencies]\nproptest.workspace = true\n";
        assert_eq!(parse_manifest_deps(toml), vec!["sim", "core", "serde"]);
    }

    #[test]
    fn free_calls_resolve_within_cone_only() {
        let a = parsed(
            "crates/kernel/src/lib.rs",
            "pub fn caller() { helper(); }\n",
        );
        let b = parsed("crates/sim/src/lib.rs", "pub fn helper() {}\n");
        let c = parsed("crates/serve/src/lib.rs", "pub fn helper() {}\n");
        let g = Graph::build(
            vec![a, b, c],
            &deps(&[("kernel", &["sim"]), ("sim", &[]), ("serve", &["kernel"])]),
        );
        let caller = g.select(|n| n.item.name == "caller")[0];
        let targets: Vec<&str> = g.calls[caller]
            .iter()
            .map(|&id| g.fns[id].crate_key.as_str())
            .collect();
        assert_eq!(targets, vec!["sim"], "kernel must not see serve's helper");
    }

    #[test]
    fn method_calls_reach_trait_impls_via_trait_home() {
        // kernel defines trait Process and calls p.poll(); core (which
        // kernel cannot see) implements Process for PingApp. The edge
        // must exist because the *trait* lives in kernel's cone.
        let k = parsed(
            "crates/kernel/src/lib.rs",
            "pub trait Process { fn poll(&mut self); }\n\
             pub fn step(p: &mut dyn Process) { p.poll(); }\n",
        );
        let c = parsed(
            "crates/core/src/lib.rs",
            "pub struct PingApp;\nimpl Process for PingApp { fn poll(&mut self) { work(); } }\n\
             fn work() {}\n",
        );
        // serve implements an unrelated trait also named elsewhere; a
        // same-named inherent method in an invisible crate must NOT link.
        let s = parsed(
            "crates/serve/src/lib.rs",
            "pub struct Udp;\nimpl Udp { pub fn poll(&mut self) {} }\n",
        );
        let g = Graph::build(
            vec![k, c, s],
            &deps(&[
                ("kernel", &[]),
                ("core", &["kernel"]),
                ("serve", &["core", "kernel"]),
            ]),
        );
        let step = g.select(|n| n.item.name == "step")[0];
        let mut targets: Vec<String> = g.calls[step].iter().map(|&id| g.fns[id].pretty()).collect();
        targets.sort();
        assert_eq!(
            targets,
            vec!["core::PingApp::poll", "kernel::Process::poll"],
            "dyn dispatch reaches the impl; serve's inherent poll stays invisible"
        );
    }

    #[test]
    fn qualified_calls_respect_owner() {
        let a = parsed(
            "crates/net/src/lib.rs",
            "pub struct P;\nimpl P { pub fn decode() {} }\n\
             pub struct Q;\nimpl Q { pub fn decode() {} }\n\
             pub fn go() { P::decode(); }\n",
        );
        let g = Graph::build(vec![a], &deps(&[("net", &[])]));
        let go = g.select(|n| n.item.name == "go")[0];
        let targets: Vec<String> = g.calls[go].iter().map(|&id| g.fns[id].pretty()).collect();
        assert_eq!(targets, vec!["net::P::decode"]);
    }

    #[test]
    fn build_is_deterministic_under_file_order() {
        let srcs = [
            ("crates/net/src/a.rs", "pub fn f1() { f2(); }\n"),
            ("crates/net/src/b.rs", "pub fn f2() { f3(); }\n"),
            ("crates/net/src/c.rs", "pub fn f3() {}\n"),
        ];
        let d = deps(&[("net", &[])]);
        let fwd: Vec<ParsedFile> = srcs.iter().map(|(p, s)| parsed(p, s)).collect();
        let rev: Vec<ParsedFile> = srcs.iter().rev().map(|(p, s)| parsed(p, s)).collect();
        let g1 = Graph::build(fwd, &d);
        let g2 = Graph::build(rev, &d);
        assert_eq!(g1.to_dot(), g2.to_dot());
    }

    #[test]
    fn reachability_chains_reconstruct() {
        let a = parsed(
            "crates/net/src/lib.rs",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let g = Graph::build(vec![a], &deps(&[("net", &[])]));
        let root = g.select(|n| n.item.name == "root")[0];
        let leaf = g.select(|n| n.item.name == "leaf")[0];
        let parent = g.reach_forward(&[root]);
        assert!(parent.contains_key(&leaf));
        let chain: Vec<String> = g
            .chain_to(&parent, leaf)
            .into_iter()
            .map(|id| g.fns[id].item.name.clone())
            .collect();
        assert_eq!(chain, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn test_fns_stay_out_of_the_graph() {
        let a = parsed(
            "crates/net/src/lib.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn helper() { real(); } }\n",
        );
        let g = Graph::build(vec![a], &deps(&[("net", &[])]));
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].item.name, "real");
    }
}
