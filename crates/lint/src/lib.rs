//! `lv-lint` — workspace determinism & invariant analyzer.
//!
//! A dependency-free, lexer-based static analysis pass over the
//! workspace source. It does not parse Rust; it tokenizes it
//! ([`lexer`]) and pattern-matches the significant token stream
//! ([`rules`]), which is enough to enforce the repo's determinism and
//! robustness policy with zero external crates:
//!
//! * **determinism** — no wall-clock time sources, OS randomness, or
//!   std hash collections in the simulation-path crates; no iteration
//!   over hash-backed collections anywhere results reach serialized
//!   output.
//! * **robustness** — no `unwrap`/`expect`/`panic!` in kernel and
//!   radio non-test code.
//! * **conventions** — namespaced counter ids, trace-event coverage
//!   for kernel state mutations, docs on `pub` items.
//!
//! Escape hatches: an inline `// lv-lint: allow(<rule>)` directive on
//! the offending line or the line above, and a checked-in [`baseline`]
//! file of grandfathered findings. The binary exits nonzero on any
//! finding not covered by either, making it suitable as a CI gate (see
//! `scripts/verify.sh`).

pub mod baseline;
pub mod config;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod parse;
pub mod rules;

use config::{CrateSet, LintConfig, RuleConfig};
use interproc::Analysis;
use parse::{parse_file, ParsedFile, Sink};
use rules::{check_file, FileContext, Finding};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Lint one in-memory source file under `config`.
pub fn lint_source(path: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let ctx = FileContext::new(path, src);
    check_file(&ctx, config)
}

/// Parse one in-memory source file into the call-graph item model,
/// harvesting hash-iter sinks from the per-file rule as it goes (so
/// the taint pass and the lexical pass agree on what "iterating a
/// hash collection" means — including its allow directives).
pub fn parse_source(path: &str, src: &str) -> ParsedFile {
    let ctx = FileContext::new(path, src);
    let mut parsed = parse_file(&ctx, path);
    let hash_iter_cfg = LintConfig {
        rules: vec![RuleConfig {
            rule: "hash-iter".to_owned(),
            crates: CrateSet::All,
        }],
    };
    for f in check_file(&ctx, &hash_iter_cfg) {
        for item in &mut parsed.fns {
            if f.line >= item.line && f.line <= item.end_line {
                item.facts.hash_iter.push(Sink {
                    line: f.line,
                    col: f.col,
                    what: "hash-iter".to_owned(),
                    snippet: f.snippet.clone(),
                });
                break;
            }
        }
    }
    parsed
}

/// Read every `crates/*/Cargo.toml` under `root` and return the crate
/// dependency map (directory key → direct dependency keys, package
/// names normalized via [`graph::crate_key_of_pkg`]).
pub fn workspace_deps(root: &Path) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return out;
    };
    for entry in entries.flatten() {
        let manifest = entry.path().join("Cargo.toml");
        let Ok(toml) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let key = entry.file_name().to_string_lossy().into_owned();
        out.insert(key, graph::parse_manifest_deps(&toml));
    }
    out
}

/// Build the interprocedural analysis (call graph + side tables) for
/// the workspace under `root`. Unreadable files are skipped here; the
/// lexical pass reports them.
pub fn build_analysis(root: &Path) -> Analysis {
    let deps = workspace_deps(root);
    let mut files = Vec::new();
    for rel in workspace_sources(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if let Ok(src) = std::fs::read_to_string(root.join(&rel)) {
            files.push(parse_source(&rel_str, &src));
        }
    }
    Analysis::new(files, &deps)
}

/// Collect the workspace source files to scan, repo-relative, sorted.
///
/// Scans `crates/*/src/**/*.rs` and the top-level `src/**/*.rs`.
/// Vendored stand-ins (`vendor/`), fixtures, tests, and build output
/// are deliberately out of scope: the policy governs our code, not the
/// shims around it.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out);
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    rel.sort();
    rel
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint every workspace source under `root` with the per-file rules
/// **and** the interprocedural graph rules, returning findings sorted
/// by `(path, line, col, rule)`. I/O errors on individual files are
/// reported as findings on line 0 rather than aborting the scan.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Vec<Finding> {
    let deps = workspace_deps(root);
    let mut findings = Vec::new();
    let mut parsed_files = Vec::new();
    for rel in workspace_sources(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => {
                findings.extend(lint_source(&rel_str, &src, config));
                parsed_files.push(parse_source(&rel_str, &src));
            }
            Err(e) => findings.push(Finding {
                rule: "io-error",
                path: rel_str,
                line: 0,
                col: 0,
                message: format!("could not read file: {e}"),
                snippet: String::new(),
                chain: Vec::new(),
            }),
        }
    }
    findings.extend(Analysis::new(parsed_files, &deps).run_rules());
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings
}
