//! `lv-lint` — workspace determinism & invariant analyzer.
//!
//! A dependency-free, lexer-based static analysis pass over the
//! workspace source. It does not parse Rust; it tokenizes it
//! ([`lexer`]) and pattern-matches the significant token stream
//! ([`rules`]), which is enough to enforce the repo's determinism and
//! robustness policy with zero external crates:
//!
//! * **determinism** — no wall-clock time sources, OS randomness, or
//!   std hash collections in the simulation-path crates; no iteration
//!   over hash-backed collections anywhere results reach serialized
//!   output.
//! * **robustness** — no `unwrap`/`expect`/`panic!` in kernel and
//!   radio non-test code.
//! * **conventions** — namespaced counter ids, trace-event coverage
//!   for kernel state mutations, docs on `pub` items.
//!
//! Escape hatches: an inline `// lv-lint: allow(<rule>)` directive on
//! the offending line or the line above, and a checked-in [`baseline`]
//! file of grandfathered findings. The binary exits nonzero on any
//! finding not covered by either, making it suitable as a CI gate (see
//! `scripts/verify.sh`).

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;

use config::LintConfig;
use rules::{check_file, FileContext, Finding};
use std::path::{Path, PathBuf};

/// Lint one in-memory source file under `config`.
pub fn lint_source(path: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let ctx = FileContext::new(path, src);
    check_file(&ctx, config)
}

/// Collect the workspace source files to scan, repo-relative, sorted.
///
/// Scans `crates/*/src/**/*.rs` and the top-level `src/**/*.rs`.
/// Vendored stand-ins (`vendor/`), fixtures, tests, and build output
/// are deliberately out of scope: the policy governs our code, not the
/// shims around it.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out);
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    rel.sort();
    rel
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint every workspace source under `root`, returning findings sorted
/// by `(path, line, col, rule)`. I/O errors on individual files are
/// reported as findings on line 0 rather than aborting the scan.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => findings.extend(lint_source(&rel_str, &src, config)),
            Err(e) => findings.push(Finding {
                rule: "io-error",
                path: rel_str,
                line: 0,
                col: 0,
                message: format!("could not read file: {e}"),
                snippet: String::new(),
            }),
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings
}
