//! `lv-lint` CLI: scan the workspace, apply the baseline, gate CI.

use lv_lint::baseline::Baseline;
use lv_lint::config::LintConfig;
use lv_lint::{lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
lv-lint — workspace determinism & invariant analyzer

USAGE:
    lv-lint [OPTIONS]

OPTIONS:
    --root <dir>         Workspace root to scan (default: auto-detected)
    --baseline <file>    Baseline file (default: <root>/lint-baseline.txt)
    --update-baseline    Rewrite the baseline to absorb all current findings
    --no-baseline        Ignore the baseline file entirely
    --list-rules         Print the registered rules and exit
    -h, --help           Print this help

EXIT STATUS:
    0  no findings beyond the baseline
    1  new findings (or a malformed baseline)
    2  bad usage

Suppress a single finding with `// lv-lint: allow(<rule>)` on the
offending line or the line above. See DESIGN.md §12.";

fn find_root() -> PathBuf {
    // Walk up from the CWD to the directory holding the workspace
    // Cargo.toml (the one with a `crates/` sibling).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut no_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--update-baseline" => update_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<16} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(find_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let config = LintConfig::default_for_workspace();

    let findings = lint_workspace(&root, &config);

    if update_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("lv-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "lv-lint: baseline updated with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline || !baseline_path.is_file() {
        Baseline::default()
    } else {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lv-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lv-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let scanned = lv_lint::workspace_sources(&root).len();
    let outcome = baseline.apply(findings);

    for f in &outcome.new {
        println!("{}", f.render());
    }
    for (rule, path) in &outcome.stale {
        eprintln!("lv-lint: stale baseline entry for [{rule}] in {path} — remove it");
    }
    eprintln!(
        "lv-lint: {} file(s) scanned, {} new finding(s), {} baselined, {} stale baseline entr{}",
        scanned,
        outcome.new.len(),
        outcome.absorbed,
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    );

    if outcome.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lv-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
