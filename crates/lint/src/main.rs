//! `lv-lint` CLI: scan the workspace, apply the baseline, gate CI.

use lv_lint::baseline::Baseline;
use lv_lint::config::LintConfig;
use lv_lint::rules::Finding;
use lv_lint::{build_analysis, interproc, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
lv-lint — workspace determinism & invariant analyzer

USAGE:
    lv-lint [OPTIONS]

OPTIONS:
    --root <dir>         Workspace root to scan (default: auto-detected)
    --baseline <file>    Baseline file (default: <root>/lint-baseline.txt)
    --update-baseline    Rewrite the baseline to absorb all current findings
                         (entries for deleted files are dropped)
    --no-baseline        Ignore the baseline file entirely
    --format <fmt>       Findings output: `text` (default) or `json`
    --graph <file>       Dump the workspace call graph as Graphviz DOT
                         (`-` for stdout) and exit
    --max-seconds <n>    Fail if the scan takes longer than n seconds
                         (CI timing budget)
    --list-rules         Print the registered rules and exit
    -h, --help           Print this help

EXIT STATUS:
    0  no findings beyond the baseline
    1  new findings (or a malformed baseline, or over time budget)
    2  bad usage

Suppress a single finding with `// lv-lint: allow(<rule>)` on the
offending line or the line above. See DESIGN.md §12 and §16.";

fn find_root() -> PathBuf {
    // Walk up from the CWD to the directory holding the workspace
    // Cargo.toml (the one with a `crates/` sibling).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Minimal JSON string escaping (the findings format has no nesting
/// beyond strings and numbers, so this is all we need — the lint crate
/// stays dependency-free).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (stable field order, one finding
/// per element, chain included) for the CI artifact and the problem
/// matcher's consumers.
fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\", \"chain\": [",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"func\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
                json_escape(&hop.func),
                json_escape(&hop.path),
                hop.line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    out
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut no_baseline = false;
    let mut format = String::from("text");
    let mut graph_out: Option<String> = None;
    let mut max_seconds: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--update-baseline" => update_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".to_owned(),
                Some("json") => format = "json".to_owned(),
                Some(other) => {
                    return usage_error(&format!("--format must be text or json, got `{other}`"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--graph" => match args.next() {
                Some(v) => graph_out = Some(v),
                None => return usage_error("--graph needs a value (file path or `-`)"),
            },
            "--max-seconds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_seconds = Some(n),
                None => return usage_error("--max-seconds needs an integer value"),
            },
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<28} {}", r.name, r.summary);
                }
                for r in interproc::GRAPH_RULES {
                    println!("{:<28} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(find_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let config = LintConfig::default_for_workspace();

    if let Some(dest) = graph_out {
        let dot = build_analysis(&root).graph.to_dot();
        if dest == "-" {
            print!("{dot}");
        } else if let Err(e) = std::fs::write(&dest, &dot) {
            eprintln!("lv-lint: cannot write {dest}: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let started = Instant::now();
    let findings = lint_workspace(&root, &config);
    let elapsed = started.elapsed();

    if update_baseline {
        // Start from the fresh findings, but also drop any *existing*
        // entries whose file no longer exists — deleting a file must
        // not leave its entries reported as stale forever.
        let mut merged = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => Baseline::parse(&t).unwrap_or_default(),
            Err(_) => Baseline::default(),
        };
        let dropped = merged.prune_missing_files(|p| root.join(p).is_file());
        for (rule, path) in &dropped {
            eprintln!("lv-lint: dropped baseline entry for [{rule}] in deleted {path}");
        }
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("lv-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "lv-lint: baseline updated with {} finding(s) at {} ({} deleted-file entr{} dropped)",
            findings.len(),
            baseline_path.display(),
            dropped.len(),
            if dropped.len() == 1 { "y" } else { "ies" },
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline || !baseline_path.is_file() {
        Baseline::default()
    } else {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lv-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lv-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let scanned = lv_lint::workspace_sources(&root).len();
    let outcome = baseline.apply(findings);

    if format == "json" {
        print!("{}", render_json(&outcome.new));
    } else {
        for f in &outcome.new {
            println!("{}", f.render());
            print!("{}", f.render_chain());
        }
    }
    for (rule, path) in &outcome.stale {
        if root.join(path).is_file() {
            eprintln!("lv-lint: stale baseline entry for [{rule}] in {path} — remove it");
        } else {
            eprintln!(
                "lv-lint: stale baseline entry for [{rule}] in deleted {path} — \
                 run --update-baseline to drop it"
            );
        }
    }
    eprintln!(
        "lv-lint: {} file(s) scanned, {} new finding(s), {} baselined, {} stale baseline entr{}, {:.2}s",
        scanned,
        outcome.new.len(),
        outcome.absorbed,
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
        elapsed.as_secs_f64(),
    );

    if let Some(budget) = max_seconds {
        if elapsed.as_secs_f64() > budget as f64 {
            eprintln!(
                "lv-lint: scan took {:.2}s, over the {budget}s budget",
                elapsed.as_secs_f64()
            );
            return ExitCode::FAILURE;
        }
    }

    if outcome.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lv-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
