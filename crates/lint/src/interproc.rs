//! The interprocedural rules: taint queries over the call graph.
//!
//! Where the per-file rules ([`crate::rules`]) pattern-match one
//! file's token stream, these four walk the workspace call graph
//! ([`crate::graph`]) and report *reachability* facts, each with the
//! full call chain from source to sink as evidence:
//!
//! * **determinism-taint** — wall-clock / OS-randomness / hash-order
//!   sinks in code transitively reachable from the kernel event loop,
//!   `Medium::assess*`, or a `TrialRunner` trial body. The per-file
//!   rules already ban these sinks *inside* the sim-path crates; the
//!   graph pass closes the remaining hole: harness code (where
//!   `Instant` is normally legal) that a trial body can reach.
//! * **panic-reachability** — pub API of the lib crates that can
//!   transitively hit `panic!`/`unwrap`/`expect`/unguarded slice
//!   indexing. Extends the per-file no-panic rule (kernel, radio)
//!   across crate and call boundaries.
//! * **hot-path-alloc-transitive** — allocations in *callees* of
//!   `// lv-lint: hot` functions (the per-file rule covers the tagged
//!   body itself; this covers everything it calls).
//! * **shard-readiness** — `static mut` / interior-mutable statics
//!   referenced from, and locks acquired in, event-loop-reachable
//!   code: the hazards ROADMAP item 1's per-shard event queues must
//!   not inherit.
//!
//! Suppression mirrors the per-file engine: an inline
//! `// lv-lint: allow(<rule>)` on the sink line (or the line above)
//! suppresses the finding; test functions never enter the graph.

use crate::config::{HARNESS_CRATES, LIVE_CRATES, SIM_PATH_CRATES};
use crate::graph::{FnId, Graph};
use crate::parse::{ParsedFile, Sink};
use crate::rules::{ChainHop, Finding};
use std::collections::BTreeMap;

/// A registered graph rule (name + summary, for `--list-rules` and
/// docs; the checks themselves run via [`Analysis::run_rules`]).
pub struct GraphRule {
    /// Rule name, as used in allow directives and baselines.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every interprocedural rule, in reporting order.
pub const GRAPH_RULES: &[GraphRule] = &[
    GraphRule {
        name: "determinism-taint",
        summary: "no wall-clock/os-random/hash-iter sink reachable from the event loop, \
                  Medium::assess*, or TrialRunner trial bodies (reported with call chain)",
    },
    GraphRule {
        name: "panic-reachability",
        summary: "no panic!/unwrap/expect/unguarded-index reachable from lib-crate pub API \
                  (reported with call chain)",
    },
    GraphRule {
        name: "hot-path-alloc-transitive",
        summary: "no Box::new/Vec::new/to_string in callees of `// lv-lint: hot` functions",
    },
    GraphRule {
        name: "shard-readiness",
        summary: "no static mut, interior-mutable static, or lock acquisition in \
                  event-loop-reachable code (per-shard queues must not inherit them)",
    },
];

/// Crates whose determinism sinks count: the sim path itself plus the
/// harness crates — harness code may read the clock for *benchmark
/// timing*, but not on a path a trial body or the event loop can
/// reach. The live-transport crates are exempt by scope (real time is
/// their job, and the sim never dispatches into them).
fn det_sink_crate(key: &str) -> bool {
    SIM_PATH_CRATES.contains(&key) || (HARNESS_CRATES.contains(&key) && key != "lint")
}

/// Crates whose pub API must not panic, and whose panic sites count as
/// sinks: every lib crate that serves simulation or live traffic.
/// Harness crates (testbed, bench) may fail fast on bad experiment
/// configs — that is a feature, not a hazard.
fn panic_crate(key: &str) -> bool {
    SIM_PATH_CRATES.contains(&key) || LIVE_CRATES.contains(&key)
}

/// The analysis context: the call graph plus the side tables graph
/// rules need (allow directives and statics, keyed by file).
pub struct Analysis {
    /// The workspace call graph.
    pub graph: Graph,
    /// Path → inline allow directives `(line, rule)`.
    allows: BTreeMap<String, Vec<(u32, String)>>,
    /// Hazardous statics: name → (path, line, why).
    hazard_statics: BTreeMap<String, (String, u32, &'static str)>,
}

impl Analysis {
    /// Build the graph and side tables from parsed files plus the
    /// crate dependency map (crate key → direct dependency keys).
    pub fn new(files: Vec<ParsedFile>, deps: &BTreeMap<String, Vec<String>>) -> Analysis {
        let mut allows: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();
        let mut hazard_statics = BTreeMap::new();
        for f in &files {
            if !f.allows.is_empty() {
                allows.insert(f.path.clone(), f.allows.clone());
            }
            for s in &f.statics {
                if s.is_test {
                    continue;
                }
                let why = if s.mutable {
                    "`static mut`"
                } else if s.interior_mutable {
                    "interior-mutable static"
                } else {
                    continue;
                };
                hazard_statics.insert(s.name.clone(), (f.path.clone(), s.line, why));
            }
        }
        Analysis {
            graph: Graph::build(files, deps),
            allows,
            hazard_statics,
        }
    }

    /// True when `rule` is suppressed at `path:line` by an inline
    /// directive (same line or the line above — the per-file engine's
    /// semantics).
    fn is_allowed(&self, rule: &str, path: &str, line: u32) -> bool {
        self.allows.get(path).is_some_and(|list| {
            list.iter()
                .any(|(l, r)| (*l == line || *l + 1 == line) && (r == rule || r == "all"))
        })
    }

    /// Run all four graph rules, returning findings sorted by
    /// `(path, line, col, rule)`.
    pub fn run_rules(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        self.determinism_taint(&mut out);
        self.panic_reachability(&mut out);
        self.hot_path_alloc_transitive(&mut out);
        self.shard_readiness(&mut out);
        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        out.dedup();
        out
    }

    /// Event-loop sources: the kernel scheduler entry points and the
    /// radio medium assessment (both define what "inside a simulated
    /// event" means).
    fn event_loop_sources(&self) -> Vec<FnId> {
        self.graph.select(|n| {
            (n.crate_key == "kernel"
                && n.item.owner.as_deref() == Some("Network")
                && matches!(n.item.name.as_str(), "run_until" | "run_for" | "dispatch"))
                || (n.crate_key == "radio"
                    && n.item.owner.as_deref() == Some("Medium")
                    && n.item.name.starts_with("assess"))
        })
    }

    /// Build the chain evidence for a node first reached via `parent`.
    fn chain(&self, parent: &BTreeMap<FnId, FnId>, node: FnId) -> Vec<ChainHop> {
        self.graph
            .chain_to(parent, node)
            .into_iter()
            .map(|id| {
                let n = &self.graph.fns[id];
                ChainHop {
                    func: n.pretty(),
                    path: n.path.clone(),
                    line: n.item.line,
                }
            })
            .collect()
    }

    fn push(
        &self,
        out: &mut Vec<Finding>,
        rule: &'static str,
        path: &str,
        sink: &Sink,
        message: String,
        chain: Vec<ChainHop>,
    ) {
        if self.is_allowed(rule, path, sink.line) {
            return;
        }
        out.push(Finding {
            rule,
            path: path.to_owned(),
            line: sink.line,
            col: sink.col,
            message,
            snippet: sink.snippet.clone(),
            chain,
        });
    }

    fn determinism_taint(&self, out: &mut Vec<Finding>) {
        let loop_roots = self.event_loop_sources();
        let trial_roots = self.graph.select(|n| n.item.facts.trial_caller);
        let mut roots = loop_roots.clone();
        roots.extend(trial_roots.iter().copied());
        if roots.is_empty() {
            return;
        }
        let parent = self.graph.reach_forward(&roots);
        for (&id, _) in &parent {
            let n = &self.graph.fns[id];
            if !det_sink_crate(&n.crate_key) {
                continue;
            }
            // A trial *driver* may time the whole run with `Instant`
            // around `TrialRunner::run`; only its callees are inside
            // trial bodies. Event-loop sources have no such carve-out.
            if n.item.facts.trial_caller && !loop_roots.contains(&id) {
                continue;
            }
            let chain = self.chain(&parent, id);
            let src = chain.first().map(|h| h.func.clone()).unwrap_or_default();
            let sinks = n
                .item
                .facts
                .wall_clock
                .iter()
                .map(|s| (s, "wall-clock"))
                .chain(n.item.facts.os_random.iter().map(|s| (s, "OS-entropy")))
                .chain(n.item.facts.hash_iter.iter().map(|s| (s, "hash-order")));
            for (sink, class) in sinks {
                self.push(
                    out,
                    "determinism-taint",
                    &n.path,
                    sink,
                    format!(
                        "`{}` is a {class} sink inside `{}`, which is reachable from \
                         deterministic root `{src}` ({} hop{}); bit-reproducible runs \
                         cannot depend on it",
                        sink.what,
                        n.pretty(),
                        chain.len() - 1,
                        if chain.len() == 2 { "" } else { "s" },
                    ),
                    chain.clone(),
                );
            }
        }
    }

    fn panic_reachability(&self, out: &mut Vec<Finding>) {
        let roots = self
            .graph
            .select(|n| n.item.is_pub && panic_crate(&n.crate_key));
        if roots.is_empty() {
            return;
        }
        let parent = self.graph.reach_forward(&roots);
        for (&id, _) in &parent {
            let n = &self.graph.fns[id];
            if !panic_crate(&n.crate_key) {
                continue;
            }
            let chain = self.chain(&parent, id);
            let src = chain.first().map(|h| h.func.clone()).unwrap_or_default();
            let sinks = n
                .item
                .facts
                .panics
                .iter()
                .chain(n.item.facts.index_sinks.iter());
            for sink in sinks {
                self.push(
                    out,
                    "panic-reachability",
                    &n.path,
                    sink,
                    format!(
                        "`{}` can abort a deployment and is reachable from pub API \
                         `{src}`; return a typed error or guard the access",
                        sink.what,
                    ),
                    chain.clone(),
                );
            }
        }
    }

    fn hot_path_alloc_transitive(&self, out: &mut Vec<Finding>) {
        let roots = self.graph.select(|n| n.item.is_hot);
        if roots.is_empty() {
            return;
        }
        // Static edges only: crossing a dyn-dispatch boundary hands
        // control to a process/application, which owns its own
        // allocation budget — the hot region is the lexical call tree.
        let parent = self.graph.reach_forward_static(&roots);
        for (&id, _) in &parent {
            // The hot body itself is the per-file rule's job; this rule
            // owns the callees.
            if roots.contains(&id) {
                continue;
            }
            let n = &self.graph.fns[id];
            let chain = self.chain(&parent, id);
            let src = chain.first().map(|h| h.func.clone()).unwrap_or_default();
            for sink in &n.item.facts.allocs {
                // `Vec::new()` is capacity-zero and never touches the
                // heap (growth allocates at the push site, which flow
                // analysis would be needed to attribute). The per-file
                // rule still bans it inside tagged bodies outright;
                // transitively, only true allocations count.
                if sink.what == "Vec::new" {
                    continue;
                }
                self.push(
                    out,
                    "hot-path-alloc-transitive",
                    &n.path,
                    sink,
                    format!(
                        "`{}` allocates inside `{}`, a callee of hot function `{src}`; \
                         hoist the allocation or take a buffer from the caller",
                        sink.what,
                        n.pretty(),
                    ),
                    chain.clone(),
                );
            }
        }
    }

    fn shard_readiness(&self, out: &mut Vec<Finding>) {
        let roots = self.event_loop_sources();
        if roots.is_empty() {
            return;
        }
        let parent = self.graph.reach_forward(&roots);
        for (&id, _) in &parent {
            let n = &self.graph.fns[id];
            let chain = self.chain(&parent, id);
            for sink in &n.item.facts.locks {
                self.push(
                    out,
                    "shard-readiness",
                    &n.path,
                    sink,
                    format!(
                        "`{}` acquires a lock in event-loop-reachable `{}`; per-shard \
                         event queues (ROADMAP item 1) cannot tolerate cross-shard \
                         blocking here",
                        sink.what,
                        n.pretty(),
                    ),
                    chain.clone(),
                );
            }
            for sink in &n.item.facts.caps_refs {
                let Some((decl_path, decl_line, why)) = self.hazard_statics.get(&sink.what) else {
                    continue;
                };
                self.push(
                    out,
                    "shard-readiness",
                    &n.path,
                    sink,
                    format!(
                        "`{}` ({why}, declared {decl_path}:{decl_line}) is shared mutable \
                         state referenced from event-loop-reachable `{}`; shard-local \
                         state must be owned by the shard",
                        sink.what,
                        n.pretty(),
                    ),
                    chain.clone(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileContext;

    fn analyze(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| parse_file(&FileContext::new(p, s), p))
            .collect();
        let deps: BTreeMap<String, Vec<String>> = deps
            .iter()
            .map(|(k, ds)| {
                (
                    (*k).to_owned(),
                    ds.iter().map(|s| (*s).to_owned()).collect(),
                )
            })
            .collect();
        Analysis::new(parsed, &deps).run_rules()
    }

    #[test]
    fn determinism_taint_crosses_into_harness_code() {
        let findings = analyze(
            &[(
                "crates/testbed/src/drive.rs",
                "pub fn drive() { let r = TrialRunner::new(1, 4); r.run(|t| body(t)); }\n\
                     fn body(t: u32) -> u32 { stamp(); t }\n\
                     fn stamp() { let _ = Instant::now(); }\n",
            )],
            &[("testbed", &[])],
        );
        let taint: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .collect();
        assert_eq!(taint.len(), 1, "{findings:?}");
        assert_eq!(taint[0].line, 3);
        assert!(taint[0].message.contains("wall-clock"));
        let funcs: Vec<&str> = taint[0].chain.iter().map(|h| h.func.as_str()).collect();
        assert_eq!(
            funcs,
            vec![
                "testbed::drive::drive",
                "testbed::drive::body",
                "testbed::drive::stamp"
            ],
            "full chain from trial driver to sink"
        );
    }

    #[test]
    fn trial_driver_may_time_the_whole_run() {
        // `Instant` around `TrialRunner::run` in the driver itself is
        // benchmark timing, not trial-body taint.
        let findings = analyze(
            &[(
                "crates/testbed/src/drive.rs",
                "pub fn drive() { let t0 = Instant::now(); let r = TrialRunner::new(1, 4); \
                 r.run(|t| t); let _ = t0.elapsed(); }\n",
            )],
            &[("testbed", &[])],
        );
        assert!(
            findings.iter().all(|f| f.rule != "determinism-taint"),
            "{findings:?}"
        );
    }

    #[test]
    fn panic_reachability_crosses_crates_with_chain() {
        let findings = analyze(
            &[
                (
                    "crates/kernel/src/lib.rs",
                    "pub struct Network;\nimpl Network { pub fn run_until(&mut self) { helper(); } }\n\
                     fn helper() { lv_net::decode(); }\n",
                ),
                (
                    "crates/net/src/lib.rs",
                    "pub fn decode() { inner(); }\nfn inner(x: Option<u32>) { x.unwrap(); }\n",
                ),
            ],
            &[("kernel", &["net"]), ("net", &[])],
        );
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "panic-reachability")
            .collect();
        assert!(!hits.is_empty(), "{findings:?}");
        let with_chain = hits.iter().find(|f| f.chain.len() >= 2).expect("chained");
        assert!(with_chain.path.ends_with("crates/net/src/lib.rs"));
        assert!(with_chain.message.contains(".unwrap()"));
    }

    #[test]
    fn unguarded_index_in_byte_parser_is_a_sink() {
        let findings = analyze(
            &[(
                "crates/net/src/lib.rs",
                "pub fn decode(buf: &[u8]) -> u8 { buf[0] }\n\
                 pub fn safe(buf: &[u8]) -> u8 { if buf.len() < 1 { return 0; } buf[0] }\n",
            )],
            &[("net", &[])],
        );
        let hits: Vec<u32> = findings
            .iter()
            .filter(|f| f.rule == "panic-reachability")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1], "unguarded flagged, guarded exempt");
    }

    #[test]
    fn hot_path_alloc_found_in_callees_only() {
        let findings = analyze(
            &[(
                "crates/kernel/src/lib.rs",
                "// lv-lint: hot\nfn on_rx() { build(); }\n\
                 fn build() { let v = Box::new(1u8); let _ = v; let z: Vec<u8> = Vec::new(); let _ = z; }\n",
            )],
            &[("kernel", &[])],
        );
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "hot-path-alloc-transitive")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("Box::new"));
    }

    #[test]
    fn shard_readiness_flags_locks_and_statics() {
        let findings = analyze(
            &[
                (
                    "crates/kernel/src/lib.rs",
                    "pub struct Network;\nimpl Network { pub fn dispatch(&mut self) { tick(); } }\n\
                     fn tick() { let _g = QUEUE.lock(); let _n = COUNT; }\n",
                ),
                (
                    "crates/sim/src/lib.rs",
                    "static QUEUE: Mutex<u32> = Mutex::new(0);\nstatic mut COUNT: u32 = 0;\n",
                ),
            ],
            &[("kernel", &["sim"]), ("sim", &[])],
        );
        let hits: Vec<&str> = findings
            .iter()
            .filter(|f| f.rule == "shard-readiness")
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(hits.len(), 3, "{findings:?}");
        assert!(hits.iter().any(|m| m.contains(".lock()")));
        assert!(hits.iter().any(|m| m.contains("static mut")));
        assert!(hits.iter().any(|m| m.contains("interior-mutable")));
    }

    #[test]
    fn allow_directive_suppresses_each_graph_rule() {
        // One specimen per rule, each silenced by its own allow.
        let findings = analyze(
            &[
                (
                    "crates/testbed/src/a.rs",
                    "pub fn drive() { let r = TrialRunner::new(1, 4); r.run(|t| body(t)); }\n\
                     fn body(t: u32) -> u32 { // lv-lint: allow(determinism-taint)\n\
                     let _ = Instant::now(); t }\n",
                ),
                (
                    "crates/kernel/src/b.rs",
                    "pub struct Network;\nimpl Network { pub fn dispatch(&mut self) { f(); } }\n\
                     fn f(x: Option<u32>) { // lv-lint: allow(panic-reachability)\n\
                     x.unwrap();\n\
                     let _g = G.lock(); // lv-lint: allow(shard-readiness)\n}\n\
                     // lv-lint: hot\nfn hot() { g(); }\n\
                     fn g() { let _v = Vec::new(); // lv-lint: allow(hot-path-alloc-transitive)\n}\n",
                ),
                (
                    "crates/sim/src/c.rs",
                    "static G: Mutex<u32> = Mutex::new(0); // lv-lint: allow(shard-readiness)\n",
                ),
            ],
            &[("testbed", &[]), ("kernel", &["sim"]), ("sim", &[])],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn event_loop_taint_has_no_driver_carve_out() {
        let findings = analyze(
            &[(
                "crates/kernel/src/lib.rs",
                "pub struct Network;\n\
                 impl Network { pub fn run_until(&mut self) { let _ = Instant::now(); } }\n",
            )],
            &[("kernel", &[])],
        );
        assert!(
            findings.iter().any(|f| f.rule == "determinism-taint"),
            "{findings:?}"
        );
    }
}
