//! Per-crate rule configuration.
//!
//! Every rule is enabled for an explicit set of crates (identified by
//! their directory name under `crates/`, with `root` naming the
//! workspace's top-level `src/`). The default configuration encodes the
//! repo policy from `DESIGN.md` §12; tests build custom configs to
//! exercise rules against fixture files.

/// Which crates a rule applies to.
#[derive(Debug, Clone)]
pub enum CrateSet {
    /// Every scanned crate.
    All,
    /// Only the named crates (directory names, e.g. `"kernel"`).
    Only(Vec<String>),
}

impl CrateSet {
    /// True when the rule applies to `crate_key`.
    pub fn contains(&self, crate_key: &str) -> bool {
        match self {
            CrateSet::All => true,
            CrateSet::Only(list) => list.iter().any(|c| c == crate_key),
        }
    }

    /// Convenience constructor from string slices.
    pub fn only(names: &[&str]) -> CrateSet {
        CrateSet::Only(names.iter().map(|s| (*s).to_owned()).collect())
    }
}

/// One rule's enablement.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Rule name (must match a registered rule).
    pub rule: String,
    /// Crates the rule runs on.
    pub crates: CrateSet,
}

/// The analyzer's configuration: which rules run where.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Enabled rules and their crate sets.
    pub rules: Vec<RuleConfig>,
}

/// The crates whose results reach serialized output (reports, figures,
/// digests) or whose control flow feeds the deterministic replay: the
/// simulation path proper.
pub const SIM_PATH_CRATES: &[&str] = &["sim", "radio", "mac", "net", "kernel", "core"];

/// Crates that consume the simulation and emit artifacts; wall-clock
/// timing is legitimate here (benchmark wall time), but hash-ordered
/// iteration still must not leak into what they serialize.
pub const HARNESS_CRATES: &[&str] = &["testbed", "bench", "root", "lint"];

/// The live-transport crates: real sockets, real threads, real time.
/// Wall-clock reads (pacing, timeouts, idle eviction) are the *point*
/// here, so the sim-path determinism rules do not apply — but the
/// exemption is this explicit crate scope, never an inline allow, so
/// adding a new crate to the live side is a reviewed policy change.
/// Hash-ordered iteration is still banned: session bookkeeping that
/// reaches responses or stats must not depend on hasher state.
pub const LIVE_CRATES: &[&str] = &["serve"];

impl LintConfig {
    /// The repo's default policy.
    ///
    /// * `wall-clock`, `os-random`, `hash-type` — sim-path crates only:
    ///   no `Instant`/`SystemTime`, no OS randomness, no std hash
    ///   collections (their iteration order depends on `RandomState`).
    ///   The live-transport crates ([`LIVE_CRATES`]) are exempt by
    ///   crate scope — real time is their job — not by inline allows.
    /// * `hash-iter` — harness and live-transport crates:
    ///   `HashMap`/`HashSet` may exist, but iterating one is flagged
    ///   (sort first or use `BTreeMap`).
    /// * `no-panic` — kernel and radio: `unwrap`/`expect`/`panic!` are
    ///   forbidden in non-test code; use typed errors or anomaly paths.
    /// * `hot-path-alloc` — everywhere (tag-driven): a function marked
    ///   `// lv-lint: hot` must not call `Box::new`/`Vec::new`/
    ///   `.to_string()`; hot paths allocate from arenas and inline
    ///   buffers only.
    /// * `counter-name` — everywhere: counter ids must be namespaced
    ///   (`dyn.node_down`, `padding.capped`).
    /// * `trace-coverage` — kernel: a function counting a `dyn.*`
    ///   mutation must also emit a trace event.
    /// * `pub-doc` — everywhere: `pub` items need doc comments.
    pub fn default_for_workspace() -> LintConfig {
        let rule = |rule: &str, crates: CrateSet| RuleConfig {
            rule: rule.to_owned(),
            crates,
        };
        let hash_iter_crates: Vec<&str> =
            HARNESS_CRATES.iter().chain(LIVE_CRATES).copied().collect();
        LintConfig {
            rules: vec![
                rule("wall-clock", CrateSet::only(SIM_PATH_CRATES)),
                rule("os-random", CrateSet::only(SIM_PATH_CRATES)),
                rule("hash-type", CrateSet::only(SIM_PATH_CRATES)),
                rule("hash-iter", CrateSet::only(&hash_iter_crates)),
                rule("no-panic", CrateSet::only(&["kernel", "radio"])),
                rule("hot-path-alloc", CrateSet::All),
                rule("counter-name", CrateSet::All),
                rule("trace-coverage", CrateSet::only(&["kernel"])),
                rule("pub-doc", CrateSet::All),
            ],
        }
    }

    /// Rules enabled for `crate_key`, in configuration order.
    pub fn rules_for(&self, crate_key: &str) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|r| r.crates.contains(crate_key))
            .map(|r| r.rule.as_str())
            .collect()
    }
}

/// Derive the crate key from a repo-relative path:
/// `crates/kernel/src/network.rs` → `kernel`, `src/lib.rs` → `root`.
pub fn crate_key_of(path: &str) -> &str {
    let path = path.strip_prefix("./").unwrap_or(path);
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("root")
    } else {
        "root"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key_of("crates/kernel/src/network.rs"), "kernel");
        assert_eq!(crate_key_of("./crates/radio/src/medium.rs"), "radio");
        assert_eq!(crate_key_of("src/lib.rs"), "root");
    }

    #[test]
    fn default_policy_scopes() {
        let cfg = LintConfig::default_for_workspace();
        assert!(cfg.rules_for("kernel").contains(&"no-panic"));
        assert!(!cfg.rules_for("testbed").contains(&"no-panic"));
        assert!(cfg.rules_for("testbed").contains(&"hash-iter"));
        assert!(!cfg.rules_for("kernel").contains(&"hash-iter"));
        assert!(cfg.rules_for("kernel").contains(&"hash-type"));
        assert!(cfg.rules_for("bench").contains(&"pub-doc"));
    }

    /// The live-transport crate is exempt from the sim-path determinism
    /// rules by scope, but still subject to hash-iter, counter-name and
    /// pub-doc.
    #[test]
    fn live_crate_scoping() {
        let cfg = LintConfig::default_for_workspace();
        for rule in ["wall-clock", "os-random", "hash-type", "no-panic"] {
            assert!(
                !cfg.rules_for("serve").contains(&rule),
                "{rule} must not apply to the live crate"
            );
        }
        for rule in ["hash-iter", "counter-name", "pub-doc"] {
            assert!(
                cfg.rules_for("serve").contains(&rule),
                "{rule} must still apply to the live crate"
            );
        }
        // The exemption is narrow: every sim-path crate keeps the full
        // determinism set.
        for key in SIM_PATH_CRATES {
            assert!(cfg.rules_for(key).contains(&"wall-clock"));
            assert!(cfg.rules_for(key).contains(&"os-random"));
            assert!(cfg.rules_for(key).contains(&"hash-type"));
        }
    }
}
