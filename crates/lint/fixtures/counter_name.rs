//! Fixture for the `counter-name` rule. Not compiled — scanned by
//! `tests/fixtures.rs` (rule applies to every crate).

fn violation(c: &mut Counters) {
    c.incr("NodeDown"); // finding (line 5): not namespaced
}

fn also_violation(c: &mut Counters) {
    c.add("retries", 3); // finding (line 9): no namespace dot
}

fn allowed(c: &mut Counters) {
    c.incr("LegacyCounter"); // lv-lint: allow(counter-name)
}

fn fine(c: &mut Counters) {
    c.incr("dyn.node_down");
    c.add("padding.capped", 2);
    c.incr("net.drop.NoRoute");
}
