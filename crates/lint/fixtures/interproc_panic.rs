//! Fixture for the `panic-reachability` graph rule. Not compiled —
//! parsed by `tests/interproc.rs` with the net crate key. Sinks are
//! private helpers reached from pub API; the allowed twin and the
//! helper no pub function calls stay silent.

pub fn decode(buf: &[u8]) -> u8 {
    first_byte(buf)
}

fn first_byte(buf: &[u8]) -> u8 {
    buf[0] // finding (line 11): unguarded byte-slice index
}

pub fn parse(x: Option<u8>) -> u8 {
    force(x)
}

fn force(x: Option<u8>) -> u8 {
    x.unwrap() // finding (line 19)
}

pub fn parse_allowed(x: Option<u8>) -> u8 {
    force_allowed(x)
}

fn force_allowed(x: Option<u8>) -> u8 {
    x.unwrap() // lv-lint: allow(panic-reachability)
}

fn private_only(x: Option<u8>) -> u8 {
    // No pub caller reaches this: no finding.
    x.unwrap()
}

fn guarded(buf: &[u8]) -> u8 {
    if buf.is_empty() {
        return 0;
    }
    buf[0]
}
