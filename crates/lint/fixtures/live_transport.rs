//! Fixture for live-crate scoping. Not compiled — scanned by
//! `tests/fixtures.rs` under the *default workspace policy* with two
//! different crate keys: under `crates/serve/...` (the live-transport
//! crate) these constructs are clean; under a sim-path key the same
//! source trips `wall-clock` and `hash-type`.

use std::collections::HashMap;
use std::time::Instant;

struct Pacer {
    last_send: Option<Instant>,
    partials: HashMap<u64, Vec<u8>>,
}

fn pace(p: &mut Pacer) -> bool {
    let now = Instant::now();
    let due = p
        .last_send
        .map_or(true, |t| now.duration_since(t).as_millis() >= 1);
    if due {
        p.last_send = Some(now);
    }
    due
}

fn lookup(p: &Pacer, id: u64) -> Option<&Vec<u8>> {
    // Keyed access — legal in every crate; only *iterating* a hash
    // collection leaks hasher state.
    p.partials.get(&id)
}
