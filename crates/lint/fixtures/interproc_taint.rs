//! Fixture for the `determinism-taint` graph rule. Not compiled —
//! parsed by `tests/interproc.rs` with the kernel crate key. The sink
//! sits two hops below the event loop; the allowed twin is suppressed
//! by an inline directive on the sink line.

pub struct Network;

impl Network {
    pub fn dispatch(&mut self) {
        deliver();
    }
}

fn deliver() {
    stamp();
    stamp_allowed();
}

fn stamp() {
    let t = Instant::now(); // finding (line 20)
    let _ = t;
}

fn stamp_allowed() {
    let t = Instant::now(); // lv-lint: allow(determinism-taint)
    let _ = t;
}

fn unreached() {
    // Not reachable from the event loop: no finding, even though the
    // sink is real.
    let t = Instant::now();
    let _ = t;
}
