//! Fixture for the `hash-type` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with a sim-path crate key.

struct Violation {
    map: HashMap<u32, u32>, // finding (line 5)
}

struct Allowed {
    set: HashSet<u32>, // lv-lint: allow(hash-type)
}

struct Fine {
    map: BTreeMap<u32, u32>,
}
