//! Fixture for the `shard-readiness` graph rule. Not compiled —
//! parsed by `tests/interproc.rs` with the kernel crate key. Hazards:
//! a lock acquisition and references to a `static mut` and an
//! interior-mutable static, all in event-loop-reachable code.

pub struct Network;

impl Network {
    pub fn run_until(&mut self) {
        tick();
        tick_allowed();
    }
}

static REGISTRY: Mutex<u32> = Mutex::new(0);
static mut SLOT: u32 = 0;

fn tick() {
    let _g = REGISTRY.lock(); // findings (line 19): lock + static ref
    let _n = SLOT; // finding (line 20): static mut ref
}

fn tick_allowed() {
    // lv-lint: allow(shard-readiness)
    let _g = REGISTRY.lock();
}

fn offline() {
    // Not reachable from the event loop: no finding.
    let _g = REGISTRY.lock();
}
