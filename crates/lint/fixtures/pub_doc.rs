//! Fixture for the `pub-doc` rule. Not compiled — scanned by
//! `tests/fixtures.rs` (rule applies to every crate).

/// Documented: no finding.
pub fn documented() {}

pub fn violation() {} // finding (line 7)

pub struct AlsoViolation; // finding (line 9)

// lv-lint: allow(pub-doc)
pub fn allowed() {}

#[doc = "Attribute docs count."]
pub fn attr_documented() {}

pub(crate) fn restricted_is_fine() {}

pub mod file_mod_decl_is_fine;

fn private_is_fine() {}
