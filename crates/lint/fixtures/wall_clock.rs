//! Fixture for the `wall-clock` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with a sim-path crate key.

fn violation() -> f64 {
    let t = std::time::Instant::now(); // finding (line 5)
    t.elapsed().as_secs_f64()
}

fn allowed() {
    let _ = std::time::SystemTime::now(); // lv-lint: allow(wall-clock)
}

// Instant mentioned only in a comment is never a finding.

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let _ = std::time::Instant::now();
    }
}
