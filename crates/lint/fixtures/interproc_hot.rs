//! Fixture for the `hot-path-alloc-transitive` graph rule. Not
//! compiled — parsed by `tests/interproc.rs` with the kernel crate
//! key. The tagged function itself is the per-file rule's job; only
//! its callees are this rule's findings.

// lv-lint: hot
fn on_rx() {
    build();
    label();
    label_allowed();
    empty();
}

fn build() -> Box<u32> {
    Box::new(1) // finding (line 15)
}

fn label() -> String {
    1.to_string() // finding (line 19)
}

fn label_allowed() -> String {
    1.to_string() // lv-lint: allow(hot-path-alloc-transitive)
}

fn empty() -> Vec<u8> {
    // Capacity-zero `Vec::new` never touches the heap: exempt
    // transitively (the per-file rule still bans it in tagged bodies).
    Vec::new()
}

fn cold() -> Box<u32> {
    // Not reachable from a hot function: no finding.
    Box::new(2)
}
