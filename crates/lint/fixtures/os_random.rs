//! Fixture for the `os-random` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with a sim-path crate key.

fn violation() -> u64 {
    let mut rng = thread_rng(); // finding (line 5)
    rng.next_u64()
}

fn also_violation() {
    let _state = RandomState::new(); // finding (line 10)
}

fn allowed() {
    let _ = OsRng; // lv-lint: allow(os-random)
}

fn fine(seed: u64) -> u64 {
    // The seeded SimRng streams are the sanctioned source.
    seed.wrapping_mul(0x9e3779b97f4a7c15)
}
