//! Fixture for the `trace-coverage` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with the kernel crate key.

fn violation(&mut self) {
    // Counts a dynamics mutation but never emits a trace event.
    self.counters.incr_id(CounterId::DynNodeDown); // finding (line 6)
    self.nodes[0].alive = false;
}

fn fine(&mut self) {
    self.counters.incr_id(CounterId::DynNodeUp);
    self.trace.emit(self.now, 0, TraceLevel::Info, "dyn.node_up".to_owned());
}

fn allowed(&mut self) {
    self.counters.incr_id(CounterId::DynReconfig); // lv-lint: allow(trace-coverage)
}

fn unrelated(&mut self) {
    // Non-dynamics counters need no trace pairing.
    self.counters.incr_id(CounterId::NetDeliver);
}
