//! Fixture: hot-path-alloc — heap allocation inside functions tagged
//! `// lv-lint: hot` (positive, allowed, cold and test-region cases).

// lv-lint: hot
fn hot_scan(n: u32) -> u32 {
    let boxed = Box::new(n); // finding (line 6)
    let mut scratch = Vec::new(); // finding (line 7)
    let label = n.to_string(); // finding (line 8)
    scratch.push(*boxed);
    (scratch.len() as u32) + (label.len() as u32)
}

// lv-lint: hot
fn hot_with_allow(n: u32) -> u32 {
    let once = Box::new(n); // lv-lint: allow(hot-path-alloc)
    *once
}

fn cold_setup(n: u32) -> Vec<u32> {
    let mut v = Vec::new();
    v.push(n);
    v
}

#[cfg(test)]
mod tests {
    // lv-lint: hot
    fn hot_in_tests(n: u32) -> String {
        n.to_string()
    }
}
