//! Fixture for the `hash-iter` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with a harness crate key (where owning a
//! HashMap is fine but iterating it is not).

struct Harness {
    stats: HashMap<String, u64>,
}

fn violation(h: &Harness) -> Vec<String> {
    h.stats.keys().cloned().collect() // finding (line 10): stats.keys()
}

fn also_violation(h: &Harness) {
    for entry in &h.stats {
        // finding (line 14): for … in &stats
        drop(entry);
    }
}

fn allowed(h: &Harness) -> Vec<String> {
    let mut v: Vec<String> = h.stats.keys().cloned().collect(); // lv-lint: allow(hash-iter)
    v.sort();
    v
}

fn fine(h: &Harness, key: &str) -> Option<u64> {
    h.stats.get(key).copied() // keyed access never leaks order
}
