//! Fixture for the `no-panic` rule. Not compiled — scanned by
//! `tests/fixtures.rs` with the kernel crate key.

fn violation(x: Option<u32>) -> u32 {
    x.unwrap() // finding (line 5)
}

fn also_violation(x: Option<u32>) -> u32 {
    x.expect("present") // finding (line 9)
}

fn macro_violation() {
    panic!("boom"); // finding (line 13)
}

fn unreachable_violation(n: u8) -> u8 {
    match n {
        0 => 1,
        _ => unreachable!(), // finding (line 19)
    }
}

fn allowed(x: Option<u32>) -> u32 {
    x.unwrap() // lv-lint: allow(no-panic)
}

fn fine(x: Option<u32>) -> u32 {
    // unwrap_or and friends are not panics.
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        panic!("tests may panic");
    }
}
