//! Self-tests for the interprocedural (call-graph) rules against the
//! checked-in `fixtures/interproc_*.rs` specimens, a property test
//! that graph construction is order-independent, and the binary-level
//! contracts of the graph-era CLI (`--format json`, `--graph`,
//! `--max-seconds`, `--update-baseline` pruning).

use lv_lint::interproc::Analysis;
use lv_lint::parse_source;
use lv_lint::rules::Finding;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Parse `(path, fixture-file)` pairs and run the graph rules with
/// `deps` as the crate dependency map.
fn analyze(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Vec<Finding> {
    analysis_of(files, deps).run_rules()
}

fn analysis_of(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> Analysis {
    let parsed = files
        .iter()
        .map(|(path, name)| parse_source(path, &fixture(name)))
        .collect();
    let deps: BTreeMap<String, Vec<String>> = deps
        .iter()
        .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
        .collect();
    Analysis::new(parsed, &deps)
}

fn lines_of<'f>(findings: &'f [Finding], rule: &str) -> Vec<&'f Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn determinism_taint_fixture() {
    let findings = analyze(
        &[("crates/kernel/src/fixture.rs", "interproc_taint.rs")],
        &[("kernel", &[])],
    );
    let hits = lines_of(&findings, "determinism-taint");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert_eq!(hits[0].line, 20, "sink line; allowed twin suppressed");
    // Chain evidence: root (dispatch) -> deliver -> stamp.
    let chain: Vec<&str> = hits[0].chain.iter().map(|h| h.func.as_str()).collect();
    assert_eq!(
        chain,
        vec![
            "kernel::fixture::Network::dispatch",
            "kernel::fixture::deliver",
            "kernel::fixture::stamp"
        ]
    );
    assert!(hits[0].message.contains("2 hops"));
}

#[test]
fn panic_reachability_fixture() {
    let findings = analyze(
        &[("crates/net/src/fixture.rs", "interproc_panic.rs")],
        &[("net", &[])],
    );
    let hits = lines_of(&findings, "panic-reachability");
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(
        lines,
        vec![11, 19],
        "index sink + unwrap; allowed, private-only and guarded stay silent: {findings:?}"
    );
    // Every finding carries its pub-API chain.
    for f in &hits {
        assert!(f.chain.len() >= 2, "chain evidence missing: {f:?}");
        assert!(f.chain[0].func.starts_with("net::fixture::"));
    }
}

#[test]
fn hot_path_alloc_transitive_fixture() {
    let findings = analyze(
        &[("crates/kernel/src/fixture.rs", "interproc_hot.rs")],
        &[("kernel", &[])],
    );
    let hits = lines_of(&findings, "hot-path-alloc-transitive");
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(
        lines,
        vec![15, 19],
        "Box::new + to_string in callees; allowed, Vec::new and cold exempt: {findings:?}"
    );
}

#[test]
fn shard_readiness_fixture() {
    let findings = analyze(
        &[("crates/kernel/src/fixture.rs", "interproc_shard.rs")],
        &[("kernel", &[])],
    );
    let hits = lines_of(&findings, "shard-readiness");
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(
        lines,
        vec![19, 19, 20],
        "lock + interior-mutable ref on 19, static-mut ref on 20; \
         allowed twin and offline helper exempt: {findings:?}"
    );
}

/// Interprocedural fixtures must trip only their own rule: cross-rule
/// noise would make the line assertions above misleading.
#[test]
fn interproc_fixtures_are_single_rule_specimens() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "crates/kernel/src/fixture.rs",
            "interproc_taint.rs",
            "determinism-taint",
        ),
        (
            "crates/net/src/fixture.rs",
            "interproc_panic.rs",
            "panic-reachability",
        ),
        (
            "crates/kernel/src/fixture.rs",
            "interproc_hot.rs",
            "hot-path-alloc-transitive",
        ),
        (
            "crates/kernel/src/fixture.rs",
            "interproc_shard.rs",
            "shard-readiness",
        ),
    ];
    for (path, file, own_rule) in cases {
        let key = path.split('/').nth(1).unwrap_or("kernel");
        let findings = analyze(&[(path, file)], &[(key, &[])]);
        for f in &findings {
            assert_eq!(
                &f.rule, own_rule,
                "{file} trips foreign rule {}: {f:?}",
                f.rule
            );
        }
    }
}

/// The full specimen set, across two crates with a dependency edge,
/// used by the order-independence property below.
const WORKSPACE: &[(&str, &str)] = &[
    ("crates/kernel/src/taint.rs", "interproc_taint.rs"),
    ("crates/kernel/src/hot.rs", "interproc_hot.rs"),
    ("crates/kernel/src/shard.rs", "interproc_shard.rs"),
    ("crates/net/src/fixture.rs", "interproc_panic.rs"),
];
const DEPS: &[(&str, &[&str])] = &[("kernel", &["net"]), ("net", &[])];

proptest! {
    /// Call-graph construction is deterministic under file-order
    /// shuffling: any permutation of the input files yields the same
    /// findings (down to chain evidence) and the same DOT dump as the
    /// canonical order.
    #[test]
    fn graph_build_is_order_independent(seed in any::<u64>()) {
        let canonical = analysis_of(WORKSPACE, DEPS);
        let expected = canonical.run_rules();
        let expected_dot = canonical.graph.to_dot();
        prop_assert!(!expected.is_empty(), "specimens must produce findings");

        // Fisher-Yates with a deterministic LCG from the proptest seed.
        let mut files: Vec<(&str, &str)> = WORKSPACE.to_vec();
        let mut state = seed | 1;
        for i in (1..files.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            files.swap(i, j);
        }

        let shuffled = analysis_of(&files, DEPS);
        let got = shuffled.run_rules();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g, e);
        }
        prop_assert_eq!(shuffled.graph.to_dot(), expected_dot);
    }
}

// ---------------------------------------------------------------------
// Binary-level contracts
// ---------------------------------------------------------------------

/// Scaffold a throwaway workspace; returns its root.
fn temp_workspace(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("lv-lint-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write");
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, src).expect("write");
    }
    root
}

fn run_lint(root: &std::path::Path, args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_lv-lint"))
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("run lv-lint")
}

/// `--format json` emits one object per finding with the chain array;
/// a graph-rule finding carries its hops.
#[test]
fn binary_json_format_carries_chains() {
    let root = temp_workspace(
        "json",
        &[(
            "crates/net/src/lib.rs",
            "//! Specimen.\npub fn api(x: Option<u8>) -> u8 { helper(x) }\n\
             fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let out = run_lint(&root, &["--no-baseline", "--format", "json"]);
    assert!(!out.status.success(), "violation must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "stdout: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"panic-reachability\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"chain\": [{\"func\": "), "{stdout}");
    assert!(stdout.contains("net::api"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

/// `--graph -` dumps a DOT call graph to stdout and exits 0 without
/// gating on findings.
#[test]
fn binary_graph_dump() {
    let root = temp_workspace(
        "graph",
        &[(
            "crates/net/src/lib.rs",
            "//! Specimen.\npub fn api() { helper() }\nfn helper() {}\n",
        )],
    );
    let out = run_lint(&root, &["--graph", "-"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"), "stdout: {stdout}");
    assert!(stdout.contains("net::api"), "{stdout}");
    assert!(stdout.contains("->"), "an edge must be present: {stdout}");
    std::fs::remove_dir_all(&root).ok();
}

/// `--max-seconds` is a hard budget: impossible budgets fail even on a
/// clean tree, generous ones pass.
#[test]
fn binary_timing_budget() {
    let root = temp_workspace(
        "budget",
        &[("crates/net/src/lib.rs", "//! Clean.\nfn ok() {}\n")],
    );
    assert!(run_lint(&root, &["--no-baseline", "--max-seconds", "600"])
        .status
        .success());
    let out = run_lint(&root, &["--no-baseline", "--max-seconds", "0"]);
    assert!(!out.status.success(), "0s budget must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("over the 0s budget"), "stderr: {stderr}");
    std::fs::remove_dir_all(&root).ok();
}

/// `--update-baseline` drops entries whose file no longer exists and
/// says so; afterwards the plain run is green with no stale noise.
#[test]
fn binary_update_baseline_prunes_deleted_files() {
    let root = temp_workspace(
        "prune",
        &[
            (
                "crates/kernel/src/gone.rs",
                "//! Doomed.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            ("crates/kernel/src/lib.rs", "//! Clean.\nfn ok() {}\n"),
        ],
    );
    assert!(run_lint(&root, &["--update-baseline"]).status.success());
    let baseline = std::fs::read_to_string(root.join("lint-baseline.txt")).expect("baseline");
    assert!(baseline.contains("gone.rs"), "entry recorded: {baseline}");

    std::fs::remove_file(root.join("crates/kernel/src/gone.rs")).expect("rm");
    let out = run_lint(&root, &["--update-baseline"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dropped baseline entry") && stderr.contains("gone.rs"),
        "stderr: {stderr}"
    );
    let baseline = std::fs::read_to_string(root.join("lint-baseline.txt")).expect("baseline");
    assert!(!baseline.contains("gone.rs"), "entry pruned: {baseline}");

    let out = run_lint(&root, &[]);
    assert!(out.status.success(), "clean after prune");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("stale baseline entry for"), "{stderr}");
    std::fs::remove_dir_all(&root).ok();
}

/// Text output prints the call chain as indented continuation lines
/// under a problem-matcher-parseable head line.
#[test]
fn binary_text_output_prints_chain() {
    let root = temp_workspace(
        "chain",
        &[(
            "crates/net/src/lib.rs",
            "//! Specimen.\npub fn api(x: Option<u8>) -> u8 { helper(x) }\n\
             fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let out = run_lint(&root, &["--no-baseline"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/net/src/lib.rs:3:") && stdout.contains("[panic-reachability]"),
        "head line: {stdout}"
    );
    assert!(stdout.contains("chain: net::api"), "chain lines: {stdout}");
    assert!(stdout.contains("-> net::helper"), "chain lines: {stdout}");
    std::fs::remove_dir_all(&root).ok();
}
