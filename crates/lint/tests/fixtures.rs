//! Lint self-tests against the checked-in fixture files.
//!
//! Each fixture under `fixtures/` carries, for one rule, a positive
//! case (a violation the rule must find), an allowed case (suppressed
//! by an inline `lv-lint: allow(...)` directive), and where relevant a
//! test-region case (exempt). The fixtures live outside `src/` so the
//! workspace scan never picks them up; these tests feed them through
//! `lint_source` with a hand-picked crate path and assert the exact
//! finding lines. A final test exercises the baseline flow end to end
//! on real fixture findings.

use lv_lint::baseline::Baseline;
use lv_lint::config::{CrateSet, LintConfig, RuleConfig};
use lv_lint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn single_rule(rule: &str) -> LintConfig {
    LintConfig {
        rules: vec![RuleConfig {
            rule: rule.to_owned(),
            crates: CrateSet::All,
        }],
    }
}

/// Lint `fixtures/<name>` with one rule and return the finding lines.
fn finding_lines(name: &str, rule: &str, as_path: &str) -> Vec<u32> {
    let src = fixture(name);
    lint_source(as_path, &src, &single_rule(rule))
        .iter()
        .map(|f| f.line)
        .collect()
}

#[test]
fn wall_clock_fixture() {
    let lines = finding_lines("wall_clock.rs", "wall-clock", "crates/sim/src/fixture.rs");
    assert_eq!(lines, vec![5], "positive hit; allow + test region exempt");
}

#[test]
fn os_random_fixture() {
    let lines = finding_lines("os_random.rs", "os-random", "crates/radio/src/fixture.rs");
    assert_eq!(lines, vec![5, 10]);
}

#[test]
fn hash_type_fixture() {
    let lines = finding_lines("hash_type.rs", "hash-type", "crates/net/src/fixture.rs");
    assert_eq!(lines, vec![5]);
}

#[test]
fn hash_iter_fixture() {
    let lines = finding_lines("hash_iter.rs", "hash-iter", "crates/testbed/src/fixture.rs");
    assert_eq!(
        lines,
        vec![10, 14],
        "method iteration and for-loop iteration; allow + keyed access exempt"
    );
}

#[test]
fn no_panic_fixture() {
    let lines = finding_lines("no_panic.rs", "no-panic", "crates/kernel/src/fixture.rs");
    assert_eq!(
        lines,
        vec![5, 9, 13, 19],
        "unwrap, expect, panic!, unreachable!; allow + unwrap_or + tests exempt"
    );
}

#[test]
fn hot_path_alloc_fixture() {
    let lines = finding_lines(
        "hot_path_alloc.rs",
        "hot-path-alloc",
        "crates/kernel/src/fixture.rs",
    );
    assert_eq!(
        lines,
        vec![6, 7, 8],
        "Box::new, Vec::new, to_string in the tagged fn; allow + untagged + tests exempt"
    );
}

#[test]
fn counter_name_fixture() {
    let lines = finding_lines(
        "counter_name.rs",
        "counter-name",
        "crates/net/src/fixture.rs",
    );
    assert_eq!(lines, vec![5, 9]);
}

#[test]
fn trace_coverage_fixture() {
    let lines = finding_lines(
        "trace_coverage.rs",
        "trace-coverage",
        "crates/kernel/src/fixture.rs",
    );
    assert_eq!(lines, vec![6]);
}

#[test]
fn pub_doc_fixture() {
    let lines = finding_lines("pub_doc.rs", "pub-doc", "crates/sim/src/fixture.rs");
    assert_eq!(
        lines,
        vec![7, 9],
        "undocumented fn + struct; docs, attr docs, pub(crate), mod decl exempt"
    );
}

/// Live-crate scoping under the *default workspace policy*: the same
/// source is clean when it lives in `crates/serve` (real time is the
/// live transport's job) and a determinism violation anywhere on the
/// sim path. The exemption must come from the crate scope — the
/// fixture carries no inline allows.
#[test]
fn live_transport_fixture_scoped_by_crate() {
    let src = fixture("live_transport.rs");
    assert!(
        !src.contains("lv-lint: allow"),
        "the live-crate exemption must be scoping, not inline allows"
    );
    let cfg = lv_lint::config::LintConfig::default_for_workspace();

    let live = lint_source("crates/serve/src/fixture.rs", &src, &cfg);
    assert!(live.is_empty(), "clean under the live crate key: {live:?}");

    let sim = lint_source("crates/kernel/src/fixture.rs", &src, &cfg);
    let mut rules: Vec<&str> = sim.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(
        rules,
        vec!["hash-type", "wall-clock"],
        "sim-path key must flag the determinism violations: {sim:?}"
    );
    // No hash-iter findings under either key: the fixture only does
    // keyed lookups.
    assert!(sim.iter().all(|f| f.rule != "hash-iter"));
}

/// The baseline flow on real findings: grandfather the fixture's
/// current violations, then verify (a) a re-scan is clean through the
/// baseline, (b) a *new* violation still surfaces, (c) fixing a
/// grandfathered site turns its entry stale.
#[test]
fn baseline_grandfathers_fixture_findings() {
    let src = fixture("no_panic.rs");
    let path = "crates/kernel/src/fixture.rs";
    let config = single_rule("no-panic");
    let findings = lint_source(path, &src, &config);
    assert_eq!(findings.len(), 4);

    let baseline = Baseline::parse(&Baseline::render(&findings)).expect("roundtrip");

    // (a) Unchanged source: everything absorbed.
    let again = lint_source(path, &src, &config);
    let outcome = baseline.apply(again);
    assert!(outcome.new.is_empty());
    assert_eq!(outcome.absorbed, 4);
    assert!(outcome.stale.is_empty());

    // (b) A new violation on top still fails the gate.
    let more = format!("{src}\nfn extra(y: Option<u32>) -> u32 {{ y.unwrap() }}\n");
    let outcome = baseline.apply(lint_source(path, &more, &config));
    assert_eq!(outcome.new.len(), 1);
    assert!(outcome.new[0].snippet.contains("extra"));

    // (c) Fixing a grandfathered site leaves a stale entry to clean up.
    let fixed = src.replacen("x.unwrap() // finding (line 5)", "x.unwrap_or(0)", 1);
    let outcome = baseline.apply(lint_source(path, &fixed, &config));
    assert!(outcome.new.is_empty());
    assert_eq!(outcome.absorbed, 3);
    assert_eq!(outcome.stale.len(), 1);
}

/// The binary contract the CI gate relies on: exit 0 on a clean tree,
/// exit nonzero once a violation is injected, exit 0 again when the
/// violation is baselined.
#[test]
fn binary_gates_on_injected_violation() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_lv-lint");
    let root = std::env::temp_dir().join(format!("lv-lint-gate-{}", std::process::id()));
    let src_dir = root.join("crates").join("kernel").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write");

    // Clean tree: documented module, no violations.
    std::fs::write(src_dir.join("lib.rs"), "//! Clean.\nfn ok() {}\n").expect("write");
    let run = |args: &[&str]| {
        Command::new(bin)
            .arg("--root")
            .arg(&root)
            .args(args)
            .output()
            .expect("run lv-lint")
    };
    assert!(
        run(&["--no-baseline"]).status.success(),
        "clean tree must pass"
    );

    // Inject a violation: the gate must go red.
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Dirty.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write");
    let out = run(&["--no-baseline"]);
    assert!(
        !out.status.success(),
        "injected violation must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[no-panic]"), "stdout: {stdout}");

    // Grandfather it: green again, and the report says one baselined.
    assert!(run(&["--update-baseline"]).status.success());
    assert!(run(&[]).status.success(), "baselined finding must pass");

    std::fs::remove_dir_all(&root).ok();
}

/// `--list-rules` names every registered rule (the doc cross-checks
/// DESIGN.md §12 against this).
#[test]
fn binary_lists_all_rules() {
    use std::process::Command;
    let out = Command::new(env!("CARGO_BIN_EXE_lv-lint"))
        .arg("--list-rules")
        .output()
        .expect("run lv-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in lv_lint::rules::RULES {
        assert!(stdout.contains(rule.name), "missing {}", rule.name);
    }
    for rule in lv_lint::interproc::GRAPH_RULES {
        assert!(
            stdout.contains(rule.name),
            "missing graph rule {}",
            rule.name
        );
    }
}

/// Fixtures must stay violation-free for every rule *other* than their
/// own: each file is a minimal, single-rule specimen, so cross-rule
/// noise (say a stray `unwrap` in the hash-iter fixture) would make the
/// per-rule assertions above misleading.
#[test]
fn fixtures_are_single_rule_specimens() {
    let cases: &[(&str, &str)] = &[
        ("wall_clock.rs", "wall-clock"),
        ("os_random.rs", "os-random"),
        ("hash_type.rs", "hash-type"),
        ("hash_iter.rs", "hash-iter"),
        ("no_panic.rs", "no-panic"),
        ("hot_path_alloc.rs", "hot-path-alloc"),
        ("counter_name.rs", "counter-name"),
        ("trace_coverage.rs", "trace-coverage"),
        ("pub_doc.rs", "pub-doc"),
    ];
    for (file, own_rule) in cases {
        let src = fixture(file);
        for rule in lv_lint::rules::RULES {
            if rule.name == *own_rule || rule.name == "pub-doc" {
                // pub-doc intentionally has no opinion here: fixtures
                // use private items except in its own specimen.
                continue;
            }
            if *file == "hash_iter.rs" && rule.name == "hash-type" {
                // The hash-iter fixture models a harness crate, where
                // owning a HashMap is legal (hash-type is scoped to
                // sim-path crates) and only iterating it is flagged.
                continue;
            }
            let findings = lint_source(
                "crates/kernel/src/fixture.rs",
                &src,
                &single_rule(rule.name),
            );
            assert!(
                findings.is_empty(),
                "{file} trips foreign rule {}: {:?}",
                rule.name,
                findings
            );
        }
    }
}
