//! Property tests at the whole-network level: for arbitrary topologies
//! and seeds, the event loop neither panics nor diverges, stays
//! deterministic, and keeps its counters self-consistent.

use lv_kernel::{DynamicsAction, Network, NetworkConfig};
use lv_radio::propagation::PropagationConfig;
use lv_radio::units::Position;
use lv_radio::Medium;
use lv_sim::SimDuration;
use proptest::prelude::*;

fn build(positions: Vec<(f64, f64)>, seed: u64) -> Network {
    let medium = Medium::new(
        positions
            .into_iter()
            .map(|(x, y)| Position::new(x, y))
            .collect(),
        PropagationConfig::default(),
        seed,
    );
    Network::new(medium, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random deployment runs 10 virtual seconds without panicking,
    /// and its counters obey basic conservation: a node cannot receive
    /// more beacon frames than `(n−1) ×` beacons transmitted, and every
    /// reception implies a transmission.
    #[test]
    fn random_topology_counters_consistent(
        positions in proptest::collection::vec((-60.0f64..60.0, -60.0f64..60.0), 2..12),
        seed in 0u64..1000,
    ) {
        let n = positions.len() as u64;
        let mut net = build(positions, seed);
        net.run_for(SimDuration::from_secs(10));
        let tx_beacon = net.counters.get("tx.beacon");
        let rx_frames = net.counters.get("rx.frames");
        let rx_corrupt = net.counters.get("rx.corrupt");
        let tx_total = net.counters.get("tx.beacon")
            + net.counters.get("tx.data")
            + net.counters.get("tx.ack");
        // ~10 s at a 2 s period: each node beacons at most ~7 times.
        prop_assert!(tx_beacon <= 8 * n, "beacons: {tx_beacon} for {n} nodes");
        // Every reception (good or corrupt) traces back to a transmission
        // heard by at most n−1 receivers.
        prop_assert!(
            rx_frames + rx_corrupt <= tx_total * (n.saturating_sub(1)).max(1),
            "rx {rx_frames}+{rx_corrupt} vs tx {tx_total}"
        );
    }

    /// Bit-for-bit determinism for arbitrary topologies.
    #[test]
    fn random_topology_deterministic(
        positions in proptest::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 2..8),
        seed in 0u64..1000,
    ) {
        let run = |p: Vec<(f64, f64)>, s: u64| {
            let mut net = build(p, s);
            net.run_for(SimDuration::from_secs(8));
            format!("{:?}", net.counters.iter().collect::<Vec<_>>())
        };
        prop_assert_eq!(run(positions.clone(), seed), run(positions, seed));
    }

    /// Neighbor tables only ever contain ids that exist in the network,
    /// and quality values stay in range, whatever the geometry.
    #[test]
    fn neighbor_tables_well_formed(
        positions in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 2..10),
        seed in 0u64..500,
    ) {
        let n = positions.len() as u16;
        let mut net = build(positions, seed);
        net.run_for(SimDuration::from_secs(12));
        for i in 0..n {
            for e in net.node(i).stack.neighbors.entries() {
                prop_assert!(e.id < n, "ghost neighbor {}", e.id);
                prop_assert_ne!(e.id, i, "self-neighbor");
                let q = e.inbound();
                prop_assert!((0.0..=1.0).contains(&q));
                if let Some(o) = e.outbound {
                    prop_assert!((0.0..=1.0).contains(&o));
                }
            }
        }
    }

    /// The event arena drains back to empty: payload slots (packets,
    /// frames, dynamics actions) are allocated when an event is queued
    /// and reclaimed exactly once when it pops, so once a network goes
    /// quiet every slot has been recycled. Random topologies, random
    /// churn points, beacon traffic throughout — after the last queued
    /// payload event has popped, `arena_live()` must be zero.
    #[test]
    fn full_sim_drains_arena_to_empty(
        positions in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..10),
        seed in 0u64..500,
    ) {
        let mut net = build(positions, seed);
        net.run_for(SimDuration::from_secs(15));
        // Mid-run the arena tracks exactly the queued payload events;
        // stop the traffic sources and let everything in flight pop.
        for i in 0..net.node_count() {
            net.schedule_dynamics(net.now(), DynamicsAction::NodeDown { id: i as u16 });
        }
        net.run_for(SimDuration::from_secs(30));
        prop_assert_eq!(
            net.arena_live(),
            0,
            "arena must drain once every queued payload event has popped"
        );
    }

    /// Disabling beacons really silences the network (no spontaneous
    /// traffic of any kind).
    #[test]
    fn beaconless_network_is_silent(
        positions in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 2..6),
        seed in 0u64..200,
    ) {
        let medium = Medium::new(
            positions
                .into_iter()
                .map(|(x, y)| Position::new(x, y))
                .collect(),
            PropagationConfig::default(),
            seed,
        );
        let mut net = Network::with_config(
            medium,
            seed,
            NetworkConfig {
                beacons_enabled: false,
                ..NetworkConfig::default()
            },
        );
        net.run_for(SimDuration::from_secs(10));
        prop_assert_eq!(net.counters.sum_prefix("tx."), 0);
        prop_assert_eq!(net.counters.get("rx.frames"), 0);
    }
}
