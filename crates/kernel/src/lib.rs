#![warn(missing_docs)]

//! # lv-kernel — the LiteOS-like node substrate and network orchestrator
//!
//! LiteView is built on LiteOS, an operating system offering "Unix-like
//! abstractions for wireless sensor networks": nodes mount as
//! directories, programs run as threads with system calls, and the
//! kernel owns shared services such as the neighbor table. This crate
//! reproduces the parts of that substrate LiteView relies on:
//!
//! * [`process`] — processes ("LiteView commands are executed as
//!   individual processes") and the syscall surface, including the
//!   parameter-buffer mechanism of Section IV.C.4.
//! * [`node`] — one mote: radio configuration, MAC, stack, processes,
//!   resource ledger, event log.
//! * [`resources`] — MicaZ flash/RAM accounting, against which the
//!   paper's footprint numbers (T-foot in `DESIGN.md`) are checked.
//! * [`names`] — IP-convention node naming and `/sn01/...` shell paths.
//! * [`log`] — per-node on-demand event logging.
//! * [`network`] — the deterministic event loop coupling every node
//!   through the shared radio medium: airtime, CCA, collisions,
//!   acknowledgements, beacons, timers, and process hooks.
//! * [`audit`] — the runtime invariant auditor: event-time
//!   monotonicity, stale-transmission detection after churn, and
//!   flash/RAM ledger balance, enabled by tests and the nightly soak.

pub mod audit;
pub mod log;
pub mod names;
pub mod network;
pub mod node;
pub mod process;
pub mod resources;

pub use audit::{AuditLog, AuditViolation};
pub use log::{EventLog, LogEntry};
pub use names::{default_name, parse_name, shell_path, NameRegistry};
pub use network::{DynamicsAction, LinkObs, Network, NetworkConfig};
pub use node::{Node, NodeStats};
pub use process::{Effect, NeighborInfo, Process, RxMeta, SysCtx};
pub use resources::{ProcessImage, ResourceAccount, ResourceError};
