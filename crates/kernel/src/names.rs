//! Node naming, IP-convention style.
//!
//! "In our testbed, we assign names following IP conventions to each
//! node as their names" — node ids map to `192.168.0.<id+1>` and the
//! LiteOS shell mounts the network under `/sn01`, so node 0's working
//! directory prints as `/sn01/192.168.0.1` (the paper's `$pwd` output).

/// The default sensor-network mount point.
pub const MOUNT: &str = "/sn01";

/// The default IP-convention name for node `id`.
pub fn default_name(id: u16) -> String {
    format!("192.168.0.{}", id as u32 + 1)
}

/// The shell path for node `id` (what `pwd` prints).
pub fn shell_path(name: &str) -> String {
    format!("{MOUNT}/{name}")
}

/// Parse a default-convention name back to a node id.
pub fn parse_name(name: &str) -> Option<u16> {
    let suffix = name.strip_prefix("192.168.0.")?;
    let host: u32 = suffix.parse().ok()?;
    if host == 0 || host > u16::MAX as u32 + 1 {
        return None;
    }
    Some((host - 1) as u16)
}

/// A bidirectional id ↔ name registry for one deployment.
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    names: Vec<String>,
}

impl NameRegistry {
    /// Default-named registry for `n` nodes.
    pub fn with_defaults(n: usize) -> Self {
        NameRegistry {
            names: (0..n).map(|i| default_name(i as u16)).collect(),
        }
    }

    /// Name of node `id`.
    pub fn name(&self, id: u16) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Rename a node.
    pub fn set_name(&mut self, id: u16, name: impl Into<String>) {
        if let Some(slot) = self.names.get_mut(id as usize) {
            *slot = name.into();
        }
    }

    /// Find a node by name (also accepts the default convention even if
    /// not materialized).
    pub fn resolve(&self, name: &str) -> Option<u16> {
        if let Some(idx) = self.names.iter().position(|n| n == name) {
            return Some(idx as u16);
        }
        parse_name(name).filter(|&id| (id as usize) < self.names.len())
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names_follow_ip_convention() {
        assert_eq!(default_name(0), "192.168.0.1");
        assert_eq!(default_name(29), "192.168.0.30");
    }

    #[test]
    fn shell_path_matches_paper_pwd() {
        assert_eq!(shell_path("192.168.0.1"), "/sn01/192.168.0.1");
    }

    #[test]
    fn parse_inverts_default_name() {
        for id in [0u16, 1, 29, 254] {
            assert_eq!(parse_name(&default_name(id)), Some(id));
        }
        assert_eq!(parse_name("192.168.0.0"), None);
        assert_eq!(parse_name("192.168.1.5"), None);
        assert_eq!(parse_name("not-an-ip"), None);
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = NameRegistry::with_defaults(30);
        assert_eq!(reg.name(4), Some("192.168.0.5"));
        assert_eq!(reg.resolve("192.168.0.5"), Some(4));
        reg.set_name(4, "gateway");
        assert_eq!(reg.resolve("gateway"), Some(4));
        // Default-convention fallback still resolves after rename of
        // another node.
        assert_eq!(reg.resolve("192.168.0.7"), Some(6));
        assert_eq!(reg.resolve("192.168.0.31"), None); // out of range
    }
}
