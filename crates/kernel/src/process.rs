//! Processes and the syscall surface.
//!
//! LiteView commands "are executed as individual processes" (Section
//! IV.B). A process here is an event-driven state machine implementing
//! [`Process`]; the kernel invokes its hooks and hands it a [`SysCtx`] —
//! the system-call interface. To keep the borrow structure simple and
//! the kernel re-entrant-free, *mutating* syscalls are recorded as
//! [`Effect`]s inside the context and applied by the kernel after the
//! hook returns (the moral equivalent of a syscall trapping out of the
//! process).

use crate::log::LogEntry;
use crate::resources::ProcessImage;
use lv_net::packet::{NetPacket, Port};
use lv_net::ports::ProcessId;
use lv_radio::{Channel, PowerLevel};
use lv_sim::{SimDuration, SimRng, SimTime};

/// Link-layer metadata accompanying a delivered packet.
#[derive(Debug, Clone, Copy)]
pub struct RxMeta {
    /// Link-layer sender of the final hop.
    pub from: u16,
    /// RSSI register value of the final hop.
    pub rssi: i8,
    /// LQI of the final hop.
    pub lqi: u8,
}

/// A read-only snapshot of one neighbor entry, as syscalls expose it.
#[derive(Debug, Clone)]
pub struct NeighborInfo {
    /// Neighbor id.
    pub id: u16,
    /// Neighbor name.
    pub name: String,
    /// Inbound quality `[0, 1]`.
    pub inbound: f64,
    /// Outbound quality `[0, 1]`, if learned.
    pub outbound: Option<f64>,
    /// Blacklist bit.
    pub blacklisted: bool,
    /// When last heard.
    pub last_heard: SimTime,
    /// Collection-tree gradient they advertise.
    pub tree_hops: u8,
}

/// Mutations a process requested during a hook.
pub enum Effect {
    /// Send a packet (the stack assigns the sequence number).
    Send {
        /// Final destination node.
        dst: u16,
        /// Carrying (routing or application) port.
        carrying_port: Port,
        /// Application port at the destination.
        app_port: Port,
        /// Payload bytes (≤ 64).
        payload: Vec<u8>,
        /// Enable link-quality padding.
        padding: bool,
    },
    /// Arm a timer for this process.
    Timer {
        /// Returned to `on_timer`.
        token: u32,
        /// Delay from now.
        after: SimDuration,
    },
    /// Subscribe this process to an application port.
    Subscribe(Port),
    /// Unsubscribe a port.
    Unsubscribe(Port),
    /// Spawn a new process with a parameter buffer.
    Spawn {
        /// The process.
        process: Box<dyn Process>,
        /// Its parameter string (the paper's parameter-buffer syscall).
        params: Vec<u8>,
    },
    /// Terminate this process (ports unsubscribed, RAM released).
    Exit,
    /// Toggle a neighbor's blacklist bit.
    Blacklist {
        /// Neighbor id.
        id: u16,
        /// New state.
        value: bool,
    },
    /// Retune the radio's transmission power.
    SetPower(PowerLevel),
    /// Retune the radio channel.
    SetChannel(Channel),
    /// Reconfigure the neighbor-beacon period (the `update` command).
    SetBeaconPeriod(SimDuration),
    /// Enable/disable the node's on-demand event logging.
    SetLogging(bool),
    /// Append to the node's event log.
    Log {
        /// Event code.
        code: &'static str,
        /// Detail text.
        detail: String,
    },
}

/// The system-call interface handed to every process hook.
pub struct SysCtx<'a> {
    /// Current virtual time (the "high-resolution, cycle-accurate
    /// timer" ping reads).
    pub now: SimTime,
    /// This node's id.
    pub node_id: u16,
    /// This node's name.
    pub node_name: &'a str,
    /// This process's id.
    pub pid: ProcessId,
    /// The parameter buffer supplied at spawn (paper Section IV.C.4).
    pub params: &'a [u8],
    /// Current radio power level.
    pub power: PowerLevel,
    /// Current radio channel.
    pub channel: Channel,
    /// Current MAC transmit-queue occupancy.
    pub queue_len: usize,
    /// Snapshot of the kernel neighbor table.
    pub neighbors: &'a [NeighborInfo],
    /// Snapshot of the node's on-demand event log.
    pub log_entries: &'a [LogEntry],
    /// Per-process deterministic RNG (for the protocol's random
    /// response backoffs).
    pub rng: &'a mut SimRng,
    /// Routing protocols installed on this node: `(port, name)`.
    pub routers: &'a [(Port, &'static str)],
    /// Read-only next-hop query: `(carrying port, destination)` → the
    /// neighbor the router on that port would forward to.
    next_hop: &'a dyn Fn(Port, u16) -> Option<u16>,
    effects: Vec<Effect>,
}

impl<'a> SysCtx<'a> {
    /// Construct a context (kernel-internal).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        now: SimTime,
        node_id: u16,
        node_name: &'a str,
        pid: ProcessId,
        params: &'a [u8],
        power: PowerLevel,
        channel: Channel,
        queue_len: usize,
        neighbors: &'a [NeighborInfo],
        log_entries: &'a [LogEntry],
        rng: &'a mut SimRng,
        routers: &'a [(Port, &'static str)],
        next_hop: &'a dyn Fn(Port, u16) -> Option<u16>,
    ) -> Self {
        SysCtx {
            now,
            node_id,
            node_name,
            pid,
            params,
            power,
            channel,
            queue_len,
            neighbors,
            log_entries,
            rng,
            routers,
            next_hop,
            effects: Vec::new(),
        }
    }

    /// Name of the routing protocol on `port`, if any.
    pub fn router_name(&self, port: Port) -> Option<&'static str> {
        self.routers
            .iter()
            .find(|&&(p, _)| p == port)
            .map(|&(_, n)| n)
    }

    /// Ask the routing protocol on `port` which neighbor it would use
    /// next toward `dst` (read-only; `None` when no route or no router).
    pub fn next_hop(&self, port: Port, dst: u16) -> Option<u16> {
        (self.next_hop)(port, dst)
    }

    /// Parameter buffer parsed as whitespace-separated tokens ("Multiple
    /// parameters could be separated by space, so that the process can
    /// parse them correctly").
    pub fn param_tokens(&self) -> Vec<&str> {
        std::str::from_utf8(self.params)
            .map(|s| s.split_whitespace().collect())
            .unwrap_or_default()
    }

    /// Send a packet.
    pub fn send(
        &mut self,
        dst: u16,
        carrying_port: Port,
        app_port: Port,
        payload: Vec<u8>,
        padding: bool,
    ) {
        self.effects.push(Effect::Send {
            dst,
            carrying_port,
            app_port,
            payload,
            padding,
        });
    }

    /// Arm a timer.
    pub fn set_timer(&mut self, token: u32, after: SimDuration) {
        self.effects.push(Effect::Timer { token, after });
    }

    /// Subscribe to a port.
    pub fn subscribe(&mut self, port: Port) {
        self.effects.push(Effect::Subscribe(port));
    }

    /// Unsubscribe from a port.
    pub fn unsubscribe(&mut self, port: Port) {
        self.effects.push(Effect::Unsubscribe(port));
    }

    /// Spawn a child process with a parameter buffer.
    pub fn spawn(&mut self, process: Box<dyn Process>, params: Vec<u8>) {
        self.effects.push(Effect::Spawn { process, params });
    }

    /// Terminate this process after the hook returns.
    pub fn exit(&mut self) {
        self.effects.push(Effect::Exit);
    }

    /// Toggle a neighbor's blacklist bit.
    pub fn blacklist(&mut self, id: u16, value: bool) {
        self.effects.push(Effect::Blacklist { id, value });
    }

    /// Set the radio power level.
    pub fn set_power(&mut self, level: PowerLevel) {
        self.effects.push(Effect::SetPower(level));
    }

    /// Set the radio channel.
    pub fn set_channel(&mut self, channel: Channel) {
        self.effects.push(Effect::SetChannel(channel));
    }

    /// Reconfigure the beacon period.
    pub fn set_beacon_period(&mut self, period: SimDuration) {
        self.effects.push(Effect::SetBeaconPeriod(period));
    }

    /// Enable/disable the node's event logging.
    pub fn set_logging(&mut self, enabled: bool) {
        self.effects.push(Effect::SetLogging(enabled));
    }

    /// Write to the node event log.
    pub fn log(&mut self, code: &'static str, detail: impl Into<String>) {
        self.effects.push(Effect::Log {
            code,
            detail: detail.into(),
        });
    }

    /// Drain requested effects (kernel-internal).
    pub fn take_effects(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.effects)
    }
}

/// An event-driven process (thread) on a node.
pub trait Process {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Static image cost charged against the node's flash/RAM budgets.
    fn image(&self) -> ProcessImage {
        ProcessImage::default()
    }

    /// Called once when the process starts.
    fn on_start(&mut self, ctx: &mut SysCtx<'_>);

    /// A packet arrived on a port this process subscribed to.
    fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, _packet: &NetPacket, _meta: RxMeta) {}

    /// A timer armed with `set_timer` fired.
    fn on_timer(&mut self, _ctx: &mut SysCtx<'_>, _token: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_route(_port: Port, _dst: u16) -> Option<u16> {
        None
    }

    fn ctx<'a>(params: &'a [u8], rng: &'a mut SimRng) -> SysCtx<'a> {
        SysCtx::new(
            SimTime::ZERO,
            1,
            "192.168.0.2",
            7,
            params,
            PowerLevel::MAX,
            Channel::DEFAULT,
            0,
            &[],
            &[],
            rng,
            &[],
            &no_route,
        )
    }

    #[test]
    fn param_tokens_split_on_whitespace() {
        let mut rng = SimRng::stream(1, 1);
        let c = ctx(b"192.168.0.2 round=1 length=32", &mut rng);
        assert_eq!(
            c.param_tokens(),
            vec!["192.168.0.2", "round=1", "length=32"]
        );
    }

    #[test]
    fn empty_params_like_nul_buffer() {
        // "If no parameter is supplied, the buffer will start with \0".
        let mut rng = SimRng::stream(1, 1);
        let c = ctx(b"", &mut rng);
        assert!(c.param_tokens().is_empty());
    }

    #[test]
    fn invalid_utf8_params_are_no_tokens() {
        let mut rng = SimRng::stream(1, 1);
        let c = ctx(&[0xFF, 0xFE], &mut rng);
        assert!(c.param_tokens().is_empty());
    }

    #[test]
    fn effects_accumulate_and_drain() {
        let mut rng = SimRng::stream(1, 1);
        let mut c = ctx(b"", &mut rng);
        c.send(2, Port::PING, Port::PING, vec![1], false);
        c.set_timer(9, SimDuration::from_millis(500));
        c.log("cmd", "ping issued");
        let effects = c.take_effects();
        assert_eq!(effects.len(), 3);
        assert!(matches!(effects[0], Effect::Send { dst: 2, .. }));
        assert!(matches!(effects[1], Effect::Timer { token: 9, .. }));
        assert!(c.take_effects().is_empty());
    }
}
