//! Per-node on-demand event logging.
//!
//! LiteOS provides "support for understanding system dynamics based on
//! on-demand logging of internal events"; LiteView's runtime controller
//! reads this log back to the workstation. Logging is off by default
//! (zero overhead) and bounded when on.

use lv_sim::SimTime;

/// One logged kernel event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// When it happened.
    pub at: SimTime,
    /// Short event code ("tx", "rx", "spawn", …).
    pub code: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded, switchable event log.
///
/// Like the simulator's trace sink, eviction is batched: the backing
/// buffer may grow to twice the retention capacity and is compacted in
/// one `drain` per `capacity` records — amortized O(1) per record.
#[derive(Debug, Clone)]
pub struct EventLog {
    enabled: bool,
    capacity: usize,
    entries: Vec<LogEntry>,
    recorded: u64,
}

impl EventLog {
    /// A disabled log with the given capacity once enabled.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            enabled: false,
            capacity: capacity.max(1),
            entries: Vec::new(),
            recorded: 0,
        }
    }

    /// Turn logging on or off (the on-demand part).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Is logging currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The last `capacity` entries of the backing buffer (anything older
    /// is logically evicted, pending compaction).
    fn retained(&self) -> &[LogEntry] {
        let start = self.entries.len().saturating_sub(self.capacity);
        &self.entries[start..]
    }

    /// Record an event if enabled.
    pub fn record(&mut self, at: SimTime, code: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.capacity * 2 {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
        }
        self.entries.push(LogEntry {
            at,
            code,
            detail: detail.into(),
        });
        self.recorded += 1;
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        self.retained()
    }

    /// Entries with a given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a LogEntry> + 'a {
        self.retained().iter().filter(move |e| e.code == code)
    }

    /// How many entries have been lost to the capacity bound.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.retained().len() as u64
    }

    /// Drop everything recorded so far.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recorded = 0;
    }
}

impl Default for EventLog {
    /// A small mote-appropriate default (64 entries).
    fn default() -> Self {
        Self::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let mut log = EventLog::default();
        log.record(SimTime::ZERO, "tx", "frame 1");
        assert!(log.entries().is_empty());
    }

    #[test]
    fn records_when_enabled() {
        let mut log = EventLog::default();
        log.set_enabled(true);
        log.record(SimTime::from_millis(1), "tx", "frame 1");
        log.record(SimTime::from_millis(2), "rx", "frame 2");
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.with_code("tx").count(), 1);
    }

    #[test]
    fn bounded_with_overwrite_count() {
        let mut log = EventLog::new(2);
        log.set_enabled(true);
        for i in 0..5u64 {
            log.record(SimTime::from_millis(i), "e", i.to_string());
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.overwritten(), 3);
        assert_eq!(log.entries()[0].detail, "3");
    }

    #[test]
    fn batched_compaction_preserves_ring_semantics() {
        let mut log = EventLog::new(3);
        log.set_enabled(true);
        for i in 0..50u64 {
            log.record(SimTime::from_millis(i), "e", i.to_string());
        }
        let details: Vec<&str> = log.entries().iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["47", "48", "49"]);
        assert_eq!(log.overwritten(), 47);
        assert_eq!(log.with_code("e").count(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut log = EventLog::default();
        log.set_enabled(true);
        log.record(SimTime::ZERO, "e", "x");
        log.clear();
        assert!(log.entries().is_empty());
        assert_eq!(log.overwritten(), 0);
        assert!(log.is_enabled());
    }
}
