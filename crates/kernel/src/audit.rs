//! Runtime invariant auditor.
//!
//! The static analyzer (`lv-lint`) keeps nondeterminism and panic paths
//! out of the source; this module watches the properties that only hold
//! (or break) at runtime. When auditing is enabled on a
//! [`Network`](crate::network::Network), the event loop and the
//! dynamics engine cross-check three invariants after every relevant
//! step:
//!
//! 1. **Event-time monotonicity** — the loop never dispatches an event
//!    timestamped before the current virtual time (a regression here
//!    means the queue or a scheduler handed time backwards, which
//!    silently corrupts every downstream latency figure).
//! 2. **No stale active transmissions** — after churn takes a node
//!    down, no in-flight transmission from that node may survive in the
//!    interference set (the `abort_transmissions_of` guarantee).
//! 3. **Resource-ledger balance** — each node's
//!    [`ResourceAccount`](crate::resources::ResourceAccount) must agree
//!    with ground truth: flash in use equals the stored program files'
//!    total, and RAM in use equals the live process slots' total. This
//!    is exactly the PR 4 bug class (flash charged per spawn and leaked
//!    on exit) turned into a checked property.
//!
//! Auditing is observational: violations accumulate on the network and
//! are fetched with `audit_violations()` or swept on demand with
//! `check_invariants()`, so tests and the nightly soak can assert on
//! them without the kernel itself panicking (the `no-panic` lint rule
//! applies here too). It is off by default and costs nothing when
//! disabled beyond one branch per event.

use lv_sim::SimTime;
use std::fmt;

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// The event loop popped an event timestamped before `now`.
    TimeRegression {
        /// Virtual time when the pop happened.
        now: SimTime,
        /// The (earlier) timestamp on the popped event.
        event: SimTime,
    },
    /// An active transmission from a dead node survived churn.
    StaleActiveTx {
        /// The dead sender.
        sender: u16,
        /// The surviving transmission id.
        tx_id: u64,
    },
    /// A node's flash ledger disagrees with its stored program files.
    FlashImbalance {
        /// The node.
        node: u16,
        /// `flash_used` according to the ledger.
        flash_used: u32,
        /// Sum of the stored images' flash footprints (ground truth).
        stored_total: u32,
    },
    /// A node's RAM ledger disagrees with its live process slots.
    RamImbalance {
        /// The node.
        node: u16,
        /// `ram_used` according to the ledger.
        ram_used: u32,
        /// Sum of the live slots' RAM footprints (ground truth).
        slots_total: u32,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::TimeRegression { now, event } => write!(
                f,
                "event time regression: popped t={:.3} ms while now={:.3} ms",
                event.as_millis_f64(),
                now.as_millis_f64()
            ),
            AuditViolation::StaleActiveTx { sender, tx_id } => write!(
                f,
                "stale active transmission #{tx_id} from dead node {sender}"
            ),
            AuditViolation::FlashImbalance {
                node,
                flash_used,
                stored_total,
            } => write!(
                f,
                "node {node} flash ledger imbalance: flash_used={flash_used} B but stored \
                 program files total {stored_total} B"
            ),
            AuditViolation::RamImbalance {
                node,
                ram_used,
                slots_total,
            } => write!(
                f,
                "node {node} RAM ledger imbalance: ram_used={ram_used} B but live process \
                 slots total {slots_total} B"
            ),
        }
    }
}

/// Violation accumulator attached to an audited network.
///
/// Bounded: after [`AuditLog::CAP`] entries further violations only
/// bump the overflow counter, so a systematically broken invariant in a
/// long soak cannot balloon memory.
#[derive(Debug, Default, Clone)]
pub struct AuditLog {
    violations: Vec<AuditViolation>,
    overflow: u64,
}

impl AuditLog {
    /// Maximum retained violations.
    pub const CAP: usize = 256;

    /// Record one violation (or count it as overflow past the cap).
    pub fn record(&mut self, v: AuditViolation) {
        if self.violations.len() < Self::CAP {
            self.violations.push(v);
        } else {
            self.overflow += 1;
        }
    }

    /// The retained violations, in observation order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Violations dropped past the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// True when nothing has been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.overflow == 0
    }

    /// Drop everything recorded so far.
    pub fn clear(&mut self) {
        self.violations.clear();
        self.overflow = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_caps_and_counts_overflow() {
        let mut log = AuditLog::default();
        for i in 0..(AuditLog::CAP as u64 + 10) {
            log.record(AuditViolation::StaleActiveTx {
                sender: 1,
                tx_id: i,
            });
        }
        assert_eq!(log.violations().len(), AuditLog::CAP);
        assert_eq!(log.overflow(), 10);
        assert!(!log.is_clean());
        log.clear();
        assert!(log.is_clean());
    }

    #[test]
    fn violations_render_readably() {
        let v = AuditViolation::FlashImbalance {
            node: 3,
            flash_used: 4296,
            stored_total: 2148,
        };
        let s = v.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("4296"));
        let t = AuditViolation::TimeRegression {
            now: SimTime::ZERO,
            event: SimTime::ZERO,
        };
        assert!(t.to_string().contains("regression"));
    }
}
