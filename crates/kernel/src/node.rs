//! One simulated mote: radio state + MAC + stack + processes.

use crate::log::EventLog;
use crate::process::{NeighborInfo, Process};
use crate::resources::{ProcessImage, ResourceAccount, ResourceError};
use lv_mac::{CsmaConfig, Mac, TxQueue};
use lv_net::ports::ProcessId;
use lv_net::stack::{Stack, StackConfig};
use lv_radio::{Channel, EnergyLedger, PowerLevel};
use lv_sim::{Counters, SimRng};
use serde::{Deserialize, Serialize};

/// A process slot. The `process` box is temporarily `take()`n while its
/// hook runs so the kernel can keep mutating the rest of the node.
pub struct ProcessSlot {
    /// The process object (absent only while a hook is executing).
    pub process: Option<Box<dyn Process>>,
    /// Registered image cost.
    pub image: ProcessImage,
    /// The parameter buffer supplied at spawn.
    pub params: Vec<u8>,
    /// Display name (cached from the process).
    pub name: String,
}

/// A point-in-time snapshot of one node's health and traffic — the
/// per-node page of the network flight recorder. JSON-serializable so
/// the workstation can embed it in its `ObservabilityReport`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node id.
    pub id: u16,
    /// Node name (IP convention).
    pub name: String,
    /// Whether the node is powered.
    pub alive: bool,
    /// Frames waiting in the MAC transmit queue.
    pub queue_len: usize,
    /// Live neighbor-table entries.
    pub neighbor_count: usize,
    /// Running processes.
    pub process_count: usize,
    /// Radio energy spent so far, in millijoules.
    pub energy_mj: f64,
    /// Merged MAC + network-layer counters for this node.
    pub counters: Counters,
}

/// One sensor node.
pub struct Node {
    /// Node id (index into the medium's position table).
    pub id: u16,
    /// Node name (IP convention by default).
    pub name: String,
    /// Whether the node is powered ("adding or removing nodes").
    pub alive: bool,
    /// Radio transmission power.
    pub power: PowerLevel,
    /// Radio channel.
    pub channel: Channel,
    /// Link layer.
    pub mac: Mac,
    /// Network stack (owns the kernel neighbor table).
    pub stack: Stack,
    /// Running processes.
    pub processes: std::collections::BTreeMap<ProcessId, ProcessSlot>,
    /// Flash/RAM ledger.
    pub resources: ResourceAccount,
    /// On-demand event log.
    pub log: EventLog,
    /// Radio energy ledger (CC2420 current model).
    pub energy: EnergyLedger,
    /// This node's deterministic RNG stream.
    pub rng: SimRng,
    next_pid: ProcessId,
}

impl Node {
    /// LiteOS-profile CSMA: the standard unslotted algorithm with a
    /// slightly smaller initial window (BE₀ = 2), matching the low-delay
    /// single-hop RTTs the paper reports (~4.7 ms for 32-byte probes).
    pub fn liteos_csma() -> CsmaConfig {
        CsmaConfig {
            min_be: 2,
            ..CsmaConfig::default()
        }
    }

    /// Create a node.
    pub fn new(id: u16, name: String, seed: u64) -> Self {
        Node {
            id,
            name: name.clone(),
            alive: true,
            power: PowerLevel::MAX,
            channel: Channel::DEFAULT,
            mac: Mac::new(id, Self::liteos_csma(), TxQueue::DEFAULT_CAPACITY),
            stack: Stack::new(id, name, StackConfig::default()),
            processes: std::collections::BTreeMap::new(),
            resources: ResourceAccount::micaz(),
            log: EventLog::default(),
            energy: EnergyLedger::default(),
            rng: SimRng::stream(seed, 0x4E4F_4445_0000_0000 | id as u64),
            next_pid: 1,
        }
    }

    /// Cold-reboot the node's volatile radio/stack state after a power
    /// cycle (node-churn dynamics). The MAC — queue, CSMA machine,
    /// sequence numbers — and the kernel neighbor table live in RAM and
    /// come back empty; installed processes, routers, the flash ledger,
    /// and the node's RNG stream survive (the stream is the node's
    /// identity in the deterministic replay, not its memory).
    pub fn reboot(&mut self) {
        self.mac = Mac::new(self.id, Self::liteos_csma(), TxQueue::DEFAULT_CAPACITY);
        self.stack.on_reboot();
        self.alive = true;
    }

    /// Register a process (image charged, pid allocated). The caller
    /// (the network) is responsible for scheduling its `on_start`.
    pub fn register_process(
        &mut self,
        process: Box<dyn Process>,
        params: Vec<u8>,
    ) -> Result<ProcessId, ResourceError> {
        let image = process.image();
        self.resources.register(image)?;
        let pid = self.next_pid;
        self.next_pid += 1;
        let name = process.name().to_owned();
        self.processes.insert(
            pid,
            ProcessSlot {
                process: Some(process),
                image,
                params,
                name,
            },
        );
        Ok(pid)
    }

    /// Remove a process: ports unsubscribed, RAM released (flash stays —
    /// the executable file remains stored).
    pub fn remove_process(&mut self, pid: ProcessId) {
        if let Some(slot) = self.processes.remove(&pid) {
            self.resources.release_ram(slot.image);
            self.stack.unsubscribe_all(pid);
        }
    }

    /// Snapshot this node's health and traffic counters (MAC and
    /// network layers merged into one namespace).
    pub fn stats(&self) -> NodeStats {
        let mut counters = Counters::new();
        counters.merge(self.mac.counters());
        counters.merge(self.stack.counters());
        NodeStats {
            id: self.id,
            name: self.name.clone(),
            alive: self.alive,
            queue_len: self.mac.queue_len(),
            neighbor_count: self.stack.neighbors.len(),
            process_count: self.processes.len(),
            energy_mj: self.energy.active_joules() * 1e3,
            counters,
        }
    }

    /// Snapshot the kernel neighbor table for syscall exposure.
    pub fn neighbor_snapshot(&self) -> Vec<NeighborInfo> {
        self.stack
            .neighbors
            .entries()
            .iter()
            .map(|e| NeighborInfo {
                id: e.id,
                name: e.name.clone(),
                inbound: e.inbound(),
                outbound: e.outbound,
                blacklisted: e.blacklisted,
                last_heard: e.last_heard,
                tree_hops: e.tree_hops,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::SysCtx;

    struct Nop;
    impl Process for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn image(&self) -> ProcessImage {
            ProcessImage {
                flash_bytes: 100,
                ram_bytes: 10,
            }
        }
        fn on_start(&mut self, _ctx: &mut SysCtx<'_>) {}
    }

    #[test]
    fn register_charges_resources_and_allocates_pids() {
        let mut n = Node::new(0, "192.168.0.1".into(), 1);
        let p1 = n.register_process(Box::new(Nop), vec![]).unwrap();
        let p2 = n.register_process(Box::new(Nop), vec![]).unwrap();
        assert_ne!(p1, p2);
        // Same stored program file: flash once, RAM per instance.
        assert_eq!(n.resources.flash_used(), 100);
        assert_eq!(n.resources.ram_used(), 20);
    }

    #[test]
    fn remove_releases_ram_keeps_flash() {
        let mut n = Node::new(0, "192.168.0.1".into(), 1);
        let pid = n.register_process(Box::new(Nop), vec![]).unwrap();
        n.stack.subscribe(lv_net::packet::Port(30), pid).unwrap();
        n.remove_process(pid);
        assert_eq!(n.resources.ram_used(), 0);
        assert_eq!(n.resources.flash_used(), 100);
        assert_eq!(n.stack.lookup(lv_net::packet::Port(30)), None);
    }

    #[test]
    fn neighbor_snapshot_reflects_table() {
        let mut n = Node::new(0, "192.168.0.1".into(), 1);
        n.stack.neighbors.touch(5, lv_sim::SimTime::from_millis(3));
        n.stack.neighbors.set_blacklisted(5, true);
        let snap = n.neighbor_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, 5);
        assert!(snap[0].blacklisted);
    }

    #[test]
    fn liteos_csma_profile() {
        let cfg = Node::liteos_csma();
        assert_eq!(cfg.min_be, 2);
        assert_eq!(cfg.max_be, 5);
    }
}
