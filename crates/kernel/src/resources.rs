//! MicaZ resource accounting.
//!
//! The paper reports exact footprints for its commands (ping: 2148 B
//! flash / 278 B RAM; traceroute: 2820 B / 272 B) and claims "zero extra
//! overhead if not activated". To keep those claims checkable, every
//! process registers a flash/RAM image with the kernel, which enforces
//! the MicaZ envelope (128 KB program flash, 4 KB SRAM).

use std::fmt;

/// Static cost of a process image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessImage {
    /// Program flash, bytes.
    pub flash_bytes: u32,
    /// Static RAM, bytes.
    pub ram_bytes: u32,
}

impl ProcessImage {
    /// The paper's measured ping command image.
    pub const PING: ProcessImage = ProcessImage {
        flash_bytes: 2148,
        ram_bytes: 278,
    };
    /// The paper's measured traceroute command image.
    pub const TRACEROUTE: ProcessImage = ProcessImage {
        flash_bytes: 2820,
        ram_bytes: 272,
    };
}

/// Why a registration was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceError {
    /// Not enough program flash left.
    FlashExhausted {
        /// Bytes requested.
        requested: u32,
        /// Bytes free.
        available: u32,
    },
    /// Not enough RAM left.
    RamExhausted {
        /// Bytes requested.
        requested: u32,
        /// Bytes free.
        available: u32,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::FlashExhausted {
                requested,
                available,
            } => write!(f, "flash exhausted: need {requested} B, {available} B free"),
            ResourceError::RamExhausted {
                requested,
                available,
            } => write!(f, "RAM exhausted: need {requested} B, {available} B free"),
        }
    }
}

/// Per-node resource ledger.
#[derive(Debug, Clone)]
pub struct ResourceAccount {
    flash_capacity: u32,
    ram_capacity: u32,
    flash_used: u32,
    ram_used: u32,
    /// Program files currently stored in flash. Flash is charged once
    /// per stored executable, not once per launch: re-spawning a
    /// command reuses the stored file (LiteOS keeps program files
    /// across process exits), so a long diagnosis session does not leak
    /// flash until every spawn fails.
    stored: Vec<ProcessImage>,
}

impl ResourceAccount {
    /// MicaZ: ATmega128 with 128 KB flash and 4 KB SRAM.
    pub fn micaz() -> Self {
        Self::new(128 * 1024, 4 * 1024)
    }

    /// IRIS: ATmega1281 with 128 KB flash and 8 KB SRAM — the paper
    /// notes LiteView "can also support the IRIS platform with moderate
    /// changes"; in this reproduction the only change is this envelope.
    pub fn iris() -> Self {
        Self::new(128 * 1024, 8 * 1024)
    }

    /// Custom envelope (IRIS motes differ slightly).
    pub fn new(flash_capacity: u32, ram_capacity: u32) -> Self {
        ResourceAccount {
            flash_capacity,
            ram_capacity,
            flash_used: 0,
            ram_used: 0,
            stored: Vec::new(),
        }
    }

    /// Charge `image`; refuses if either budget would overflow. An
    /// image already stored in flash is charged RAM only — launching a
    /// stored program again writes nothing new to the program store.
    pub fn register(&mut self, image: ProcessImage) -> Result<(), ResourceError> {
        let new_file = !self.stored.contains(&image);
        if new_file {
            let flash_free = self.flash_capacity - self.flash_used;
            if image.flash_bytes > flash_free {
                return Err(ResourceError::FlashExhausted {
                    requested: image.flash_bytes,
                    available: flash_free,
                });
            }
        }
        let ram_free = self.ram_capacity - self.ram_used;
        if image.ram_bytes > ram_free {
            return Err(ResourceError::RamExhausted {
                requested: image.ram_bytes,
                available: ram_free,
            });
        }
        if new_file {
            self.flash_used += image.flash_bytes;
            self.stored.push(image);
        }
        self.ram_used += image.ram_bytes;
        Ok(())
    }

    /// Release `image` (process exit). RAM is returned; flash stays
    /// occupied (a stored executable survives process exit, as on
    /// LiteOS's file-based program store).
    pub fn release_ram(&mut self, image: ProcessImage) {
        self.ram_used = self.ram_used.saturating_sub(image.ram_bytes);
    }

    /// Fully release `image` (program file deleted).
    pub fn release(&mut self, image: ProcessImage) {
        if let Some(idx) = self.stored.iter().position(|i| *i == image) {
            self.stored.remove(idx);
            self.flash_used = self.flash_used.saturating_sub(image.flash_bytes);
        }
        self.ram_used = self.ram_used.saturating_sub(image.ram_bytes);
    }

    /// Flash bytes in use.
    pub fn flash_used(&self) -> u32 {
        self.flash_used
    }

    /// RAM bytes in use.
    pub fn ram_used(&self) -> u32 {
        self.ram_used
    }

    /// Flash capacity.
    pub fn flash_capacity(&self) -> u32 {
        self.flash_capacity
    }

    /// RAM capacity.
    pub fn ram_capacity(&self) -> u32 {
        self.ram_capacity
    }

    /// Ground truth for the flash ledger: the stored program files'
    /// total footprint. The runtime auditor checks
    /// `flash_used() == stored_flash_total()` — the invariant the PR 4
    /// flash-leak bug violated.
    pub fn stored_flash_total(&self) -> u32 {
        self.stored.iter().map(|i| i.flash_bytes).sum()
    }

    /// Number of program files currently stored in flash.
    pub fn stored_count(&self) -> usize {
        self.stored.len()
    }

    /// Test hook: charge flash without storing a program file,
    /// re-creating the PR 4 leak pattern so auditor regression tests
    /// can prove the imbalance is caught. Not part of the model.
    #[doc(hidden)]
    pub fn corrupt_flash_for_audit_test(&mut self, bytes: u32) {
        self.flash_used = self.flash_used.saturating_add(bytes);
    }
}

impl Default for ResourceAccount {
    fn default() -> Self {
        Self::micaz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footprints_fit_micaz() {
        let mut acct = ResourceAccount::micaz();
        acct.register(ProcessImage::PING).unwrap();
        acct.register(ProcessImage::TRACEROUTE).unwrap();
        assert_eq!(acct.flash_used(), 2148 + 2820);
        assert_eq!(acct.ram_used(), 278 + 272);
    }

    #[test]
    fn zero_overhead_when_inactive() {
        // The "zero extra overhead if not activated" claim: an empty
        // ledger charges nothing.
        let acct = ResourceAccount::micaz();
        assert_eq!(acct.flash_used(), 0);
        assert_eq!(acct.ram_used(), 0);
    }

    #[test]
    fn ram_exhaustion_detected() {
        let mut acct = ResourceAccount::new(1 << 20, 512);
        let big = ProcessImage {
            flash_bytes: 100,
            ram_bytes: 400,
        };
        acct.register(big).unwrap();
        match acct.register(big) {
            Err(ResourceError::RamExhausted {
                requested,
                available,
            }) => {
                assert_eq!(requested, 400);
                assert_eq!(available, 112);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flash_exhaustion_detected() {
        let mut acct = ResourceAccount::new(1000, 1 << 20);
        acct.register(ProcessImage {
            flash_bytes: 600,
            ram_bytes: 1,
        })
        .unwrap();
        // A *different* program file no longer fits…
        assert!(matches!(
            acct.register(ProcessImage {
                flash_bytes: 601,
                ram_bytes: 1,
            }),
            Err(ResourceError::FlashExhausted { .. })
        ));
    }

    #[test]
    fn respawning_stored_image_does_not_leak_flash() {
        // The dynamics-soak regression: a diagnosis session spawns the
        // same ping/traceroute images hundreds of times. Flash must be
        // charged once per stored file, or the node wedges mid-soak.
        let mut acct = ResourceAccount::micaz();
        for _ in 0..500 {
            acct.register(ProcessImage::TRACEROUTE).unwrap();
            acct.release_ram(ProcessImage::TRACEROUTE);
        }
        assert_eq!(acct.flash_used(), ProcessImage::TRACEROUTE.flash_bytes);
        assert_eq!(acct.ram_used(), 0);
        // Deleting the file frees the flash exactly once.
        acct.release(ProcessImage::TRACEROUTE);
        assert_eq!(acct.flash_used(), 0);
    }

    #[test]
    fn exit_returns_ram_not_flash() {
        let mut acct = ResourceAccount::micaz();
        acct.register(ProcessImage::PING).unwrap();
        acct.release_ram(ProcessImage::PING);
        assert_eq!(acct.ram_used(), 0);
        assert_eq!(acct.flash_used(), 2148);
        acct.release(ProcessImage::PING);
        assert_eq!(acct.flash_used(), 0);
    }

    #[test]
    fn iris_has_twice_the_sram() {
        let iris = ResourceAccount::iris();
        let micaz = ResourceAccount::micaz();
        assert_eq!(iris.ram_capacity(), 2 * micaz.ram_capacity());
        assert_eq!(iris.flash_capacity(), micaz.flash_capacity());
        // Both fit the whole LiteView suite.
        let mut acct = ResourceAccount::iris();
        acct.register(ProcessImage::PING).unwrap();
        acct.register(ProcessImage::TRACEROUTE).unwrap();
    }

    #[test]
    fn error_messages_readable() {
        let e = ResourceError::FlashExhausted {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("flash exhausted"));
    }
}
