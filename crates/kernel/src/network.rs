//! The network orchestrator: the single event loop driving every node.
//!
//! Owns the nodes, the shared [`Medium`], and the future-event queue.
//! All physical behaviour lives here: transmissions occupy the medium
//! for their airtime, receivers get an `RxEnd` event when a frame's last
//! byte lands, collisions are resolved by SINR at each receiver,
//! CCA samples the set of in-flight transmissions, and MAC/process state
//! machines are fed their callbacks.
//!
//! The loop is strictly deterministic: one virtual clock, FIFO tie
//! breaking, and per-node RNG streams (see `DESIGN.md` §7).

use crate::audit::{AuditLog, AuditViolation};
use crate::names::{default_name, NameRegistry};
use crate::node::Node;
use crate::process::{Effect, Process, RxMeta, SysCtx};
use crate::resources::ResourceError;
use lv_mac::{Frame, FrameKind, MacAction, Reception, BROADCAST};
use lv_net::beacon::BeaconPayload;
use lv_net::packet::NetPacket;
use lv_net::padding::HopQuality;
use lv_net::ports::ProcessId;
use lv_net::routing::Router;
use lv_net::stack::RxAction;
use lv_radio::timing::PhyTiming;
use lv_radio::{Channel, Medium};
use lv_sim::{CounterId, Counters, EventQueue, SimDuration, SimTime, Trace, TraceLevel};
use std::sync::Arc;

/// Events the loop dispatches.
///
/// This is the *decoded* form handed to `dispatch`; what actually sits
/// in the future-event queue is the 16-byte [`QEvent`], with the three
/// large payloads (packets, frames, dynamics actions) parked in the
/// [`EventArena`] and referenced by slot index. Encoding happens in
/// [`Network::enqueue`], decoding right after each pop — so the binary
/// heap sifts plain-old-data instead of the full enum.
#[derive(Debug)]
enum Event {
    ProcessStart {
        node: u16,
        pid: ProcessId,
    },
    Timer {
        node: u16,
        pid: ProcessId,
        token: u32,
    },
    LocalDeliver {
        node: u16,
        pid: ProcessId,
        packet: NetPacket,
    },
    MacCca {
        node: u16,
        token: u64,
    },
    MacAckTimeout {
        node: u16,
        token: u64,
    },
    TxEnd {
        node: u16,
        tx_id: u64,
    },
    RxEnd {
        node: u16,
        tx_id: u64,
    },
    SendAck {
        node: u16,
        dst: u16,
        seq: u8,
    },
    /// A transmission deferred because the node's radio was mid-frame.
    TxStart {
        node: u16,
        frame: Frame,
    },
    Beacon {
        node: u16,
    },
    Housekeeping {
        node: u16,
    },
    /// A scheduled world mutation from the dynamics engine.
    Dynamics {
        action: DynamicsAction,
    },
}

/// One mid-run world mutation, applied at its scheduled virtual time by
/// the event loop (so it interleaves deterministically with traffic).
///
/// These are the primitive moves the testbed's `DynamicsPlan` compiles
/// ramps, bursts, and churn into. Each application bumps a `dyn.*`
/// counter and emits an `Info`-level trace event, so the flight
/// recorder can explain *what changed and when* alongside the packet
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsAction {
    /// Install a path-loss override on the directed link `from → to`
    /// (one step of a gradual attenuation ramp, or a hard block).
    SetLinkLoss {
        /// Transmitting side of the directed link.
        from: u16,
        /// Receiving side of the directed link.
        to: u16,
        /// Extra path loss in dB on top of the propagation model.
        extra_loss_db: f64,
        /// Hard-block the link regardless of loss.
        blocked: bool,
    },
    /// Remove any override on the directed link `from → to`.
    ClearLinkLoss {
        /// Transmitting side of the directed link.
        from: u16,
        /// Receiving side of the directed link.
        to: u16,
    },
    /// Raise the noise floor on `channel` by `delta_db` (the opening
    /// edge of a bursty interference window).
    SetChannelNoise {
        /// Affected 802.15.4 channel.
        channel: Channel,
        /// Noise-floor offset in dB.
        delta_db: f64,
    },
    /// End the interference window on `channel`.
    ClearChannelNoise {
        /// Affected 802.15.4 channel.
        channel: Channel,
    },
    /// Power the node off: radio dead, in-flight transmissions aborted.
    NodeDown {
        /// The node that dies.
        id: u16,
    },
    /// Power the node back on with cold-boot semantics (empty MAC queue
    /// and neighbor table; processes and routers still installed).
    NodeUp {
        /// The node that reboots.
        id: u16,
    },
    /// Retune the node's radio channel.
    SetNodeChannel {
        /// The reconfigured node.
        id: u16,
        /// New channel.
        channel: Channel,
    },
    /// Change the node's transmit power level.
    SetNodePower {
        /// The reconfigured node.
        id: u16,
        /// New power level.
        power: lv_radio::PowerLevel,
    },
    /// Physically relocate the node.
    MoveNode {
        /// The moved node.
        id: u16,
        /// New position.
        position: lv_radio::units::Position,
    },
}

/// Discriminant of a queued [`QEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QKind {
    ProcessStart,
    Timer,
    LocalDeliver,
    MacCca,
    MacAckTimeout,
    TxEnd,
    RxEnd,
    SendAck,
    TxStart,
    Beacon,
    Housekeeping,
    Dynamics,
}

/// The queued form of an [`Event`]: 16 bytes of plain data, so a heap
/// entry (with time + FIFO sequence) is 32 bytes and sift operations
/// move words, not enum payloads. Field use per kind:
///
/// | kind          | `node` | `b`                  | `c`          |
/// |---------------|--------|----------------------|--------------|
/// | ProcessStart  | node   | pid                  | —            |
/// | Timer         | node   | pid                  | token        |
/// | LocalDeliver  | node   | pid                  | packet slot  |
/// | MacCca        | node   | —                    | token        |
/// | MacAckTimeout | node   | —                    | token        |
/// | TxEnd / RxEnd | node   | —                    | tx id        |
/// | SendAck       | node   | dst \| seq << 16     | —            |
/// | TxStart       | node   | frame slot           | —            |
/// | Beacon / Hk   | node   | —                    | —            |
/// | Dynamics      | —      | action slot          | —            |
#[derive(Debug, Clone, Copy)]
struct QEvent {
    kind: QKind,
    node: u16,
    b: u32,
    c: u64,
}

/// A slab with a LIFO free list: O(1) insert/take, stable `u32` slot
/// indices, no per-item heap allocation beyond the payload itself.
#[derive(Debug)]
struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(
                    self.slots[i as usize].is_none(),
                    "free list aliased a live slot"
                );
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Reclaim slot `i`. `None` means the slot was empty — a
    /// double-take the caller must surface as an anomaly, not a panic.
    fn take(&mut self, i: u32) -> Option<T> {
        let v = self.slots.get_mut(i as usize).and_then(Option::take)?;
        self.free.push(i);
        Some(v)
    }

    /// Number of live (allocated, not yet taken) slots.
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// Payload storage for queued events: one slab per payload type. A slot
/// is allocated when its event is enqueued and reclaimed exactly once,
/// when the event pops — so `live()` always equals the number of
/// payload-carrying events currently in the queue.
#[derive(Debug)]
struct EventArena {
    packets: Slab<NetPacket>,
    frames: Slab<Frame>,
    dynamics: Slab<DynamicsAction>,
}

impl EventArena {
    fn new() -> Self {
        EventArena {
            packets: Slab::new(),
            frames: Slab::new(),
            dynamics: Slab::new(),
        }
    }

    /// Total live payload slots across all slabs.
    fn live(&self) -> usize {
        self.packets.live() + self.frames.live() + self.dynamics.live()
    }
}

/// An in-flight (or recently finished) transmission. The frame is
/// reference-counted so the fan-out to many receivers shares one
/// allocation instead of cloning the payload per receiver.
struct ActiveTx {
    sender: u16,
    channel: Channel,
    power: lv_radio::PowerLevel,
    start: SimTime,
    end: SimTime,
    frame: Arc<Frame>,
    wire_len: usize,
    /// Tombstone: the sender died mid-frame. Lookups miss and scans
    /// skip it, but the slot keeps its place so the table's start
    /// ordering (and thus the binary-searched scan floor) stays valid.
    aborted: bool,
}

/// The active-transmission table. Ids are assigned in start order and
/// only ever pruned from the front, so a `VecDeque` with a sliding
/// `base` replaces the seed's `BTreeMap`: O(1) insert and lookup,
/// binary-searchable start times, and range scans that walk
/// contiguous memory in ascending id order (preserving the float
/// accumulation order of the interference sums exactly).
///
/// Two deliberate divergences from the map, both observationally
/// inert:
/// - aborted transmissions are tombstoned in place instead of removed;
///   every reader skips them (`get` misses, scans filter), and they
///   leave with the prefix prune;
/// - a mid-table entry whose frame ended before the prune horizon
///   waits for the front to catch up instead of being retained away.
///   Such entries fail every overlap/time filter before any
///   RNG-consuming check, so keeping them changes no outcome and no
///   draw count.
struct TxTable {
    base: u64,
    slots: std::collections::VecDeque<ActiveTx>,
    /// Struct-of-arrays mirror of the fields the busy / interference /
    /// CCA scans read, kept in index lockstep with `slots`. A scan pass
    /// walks these dense 24-byte rows instead of the `Arc`-carrying
    /// `ActiveTx` structs, so the per-reception sweep stays in one or
    /// two cache lines.
    rows: std::collections::VecDeque<ScanRow>,
}

/// Compact scan-side view of one [`ActiveTx`] (see [`TxTable::rows`]).
#[derive(Clone, Copy)]
struct ScanRow {
    start: SimTime,
    end: SimTime,
    sender: u16,
    channel: Channel,
    power: lv_radio::PowerLevel,
    aborted: bool,
}

impl TxTable {
    fn new() -> Self {
        TxTable {
            base: 0,
            slots: std::collections::VecDeque::new(),
            rows: std::collections::VecDeque::new(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Append the next transmission; `id` must be the next id in order.
    fn push(&mut self, id: u64, tx: ActiveTx) {
        debug_assert_eq!(
            id,
            self.base + self.slots.len() as u64,
            "tx ids must be appended in order"
        );
        self.rows.push_back(ScanRow {
            start: tx.start,
            end: tx.end,
            sender: tx.sender,
            channel: tx.channel,
            power: tx.power,
            aborted: tx.aborted,
        });
        self.slots.push_back(tx);
    }

    /// Live entry by id (`None` for pruned, aborted, or unknown ids).
    fn get(&self, id: u64) -> Option<&ActiveTx> {
        let i = id.checked_sub(self.base)?;
        self.slots.get(i as usize).filter(|tx| !tx.aborted)
    }

    /// Iterate live entries with id ≥ `floor`, ascending by id.
    fn iter_from(&self, floor: u64) -> impl Iterator<Item = (u64, &ActiveTx)> + '_ {
        let start = (floor.saturating_sub(self.base) as usize).min(self.slots.len());
        let first_id = self.base + start as u64;
        self.slots
            .range(start..)
            .enumerate()
            .filter_map(move |(i, tx)| (!tx.aborted).then_some((first_id + i as u64, tx)))
    }

    /// Like [`TxTable::iter_from`], but over the compact scan rows —
    /// the hot-path variant used by the busy / interference / CCA
    /// passes. Identical ids, identical order, identical filtering.
    fn rows_from(&self, floor: u64) -> impl Iterator<Item = (u64, ScanRow)> + '_ {
        let start = (floor.saturating_sub(self.base) as usize).min(self.rows.len());
        let first_id = self.base + start as u64;
        self.rows
            .range(start..)
            .enumerate()
            .filter_map(move |(i, row)| (!row.aborted).then_some((first_id + i as u64, *row)))
    }

    /// First id that could still overlap an interval beginning at
    /// `from`, given no frame lasts longer than `max_airtime`. Starts
    /// are monotone in id (assigned at strictly non-decreasing virtual
    /// times), so this binary search returns exactly what the seed's
    /// reverse linear scan did: every entry below the returned id ended
    /// at or before `from`.
    fn scan_floor(&self, from: SimTime, max_airtime: SimDuration) -> u64 {
        let i = self
            .rows
            .partition_point(|row| row.start + max_airtime <= from);
        self.base + i as u64
    }

    /// Tombstone every entry from `sender`.
    fn abort_sender(&mut self, sender: u16) {
        for (tx, row) in self.slots.iter_mut().zip(self.rows.iter_mut()) {
            if tx.sender == sender {
                tx.aborted = true;
                row.aborted = true;
            }
        }
    }

    /// Prefix prune: drop leading entries that ended before `horizon`
    /// or were aborted.
    fn prune(&mut self, horizon: SimTime) {
        while let Some(front) = self.slots.front() {
            if front.aborted || front.end < horizon {
                self.slots.pop_front();
                self.rows.pop_front();
                self.base += 1;
            } else {
                break;
            }
        }
    }
}

/// Never prune the active-transmission table below this size; pruning a
/// tiny map every transmission costs more than it saves.
const ACTIVE_PRUNE_MIN: usize = 32;

/// Loop tunables.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Modeled CPU cost of handling one packet / syscall batch on the
    /// 7.37 MHz ATmega128.
    pub cpu_cost: SimDuration,
    /// Neighbor-table housekeeping period.
    pub housekeeping_period: SimDuration,
    /// Whether nodes emit neighbor beacons.
    pub beacons_enabled: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            cpu_cost: SimDuration::from_micros(100),
            housekeeping_period: SimDuration::from_secs(2),
            beacons_enabled: true,
        }
    }
}

/// One passively observed reception on a directed link, recorded when
/// the link-observation tap is armed (see [`Network::set_link_obs`]).
///
/// This is the raw signal the closed-loop diagnosis engine consumes:
/// every successfully received beacon or data frame yields one sample
/// of the link's RSSI/LQI as seen at the receiver, timestamped in
/// virtual time. The tap is off by default (capacity 0) so it costs
/// nothing and changes nothing unless a diagnostician arms it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkObs {
    /// Virtual time of the reception.
    pub at: SimTime,
    /// Transmitting node (the far end of the directed link).
    pub tx: u16,
    /// Receiving node (where the RSSI/LQI was measured).
    pub rx: u16,
    /// Link-quality indicator of the received frame (CC2420 register
    /// semantics, ~50–110).
    pub lqi: u8,
    /// Received signal strength register value, in dBm.
    pub rssi: i8,
    /// Whether the frame was a neighbor beacon (vs. a data frame).
    pub beacon: bool,
}

/// The simulated deployment.
pub struct Network {
    /// The shared wireless medium.
    pub medium: Medium,
    nodes: Vec<Node>,
    names: NameRegistry,
    queue: EventQueue<QEvent>,
    /// Payload storage for queued events (see [`EventArena`]).
    arena: EventArena,
    now: SimTime,
    active: TxTable,
    /// Struct-of-arrays mirrors of the per-node radio state the hot
    /// scans touch (fan-out liveness, channel filters, power lookups).
    /// `Node` remains the source of truth; every mutation goes through
    /// a setter (or dynamics/effect handler) that keeps these in sync,
    /// so the scans read a few contiguous bytes instead of striding
    /// across kilobyte-scale `Node` structs.
    node_alive: Vec<bool>,
    node_channel: Vec<Channel>,
    node_power: Vec<lv_radio::PowerLevel>,
    /// Per-node time until which the radio is occupied transmitting —
    /// a node is half-duplex and strictly serial on its own TX path.
    tx_busy_until: Vec<SimTime>,
    /// Per-node reservation for an immediate acknowledgement: data
    /// frames must not start inside this window, because the 802.15.4
    /// ack preempts everything right after the RX→TX turnaround.
    ack_reserved_until: Vec<SimTime>,
    next_tx: u64,
    /// Prune `active` only when it reaches this size (then re-arm a
    /// fixed step above the live set). Amortizes the retain scan to
    /// O(1) per transmission instead of O(|active|).
    prune_at: usize,
    /// Longest airtime ever inserted into `active`. Transmission ids
    /// are assigned in start order, so any entry whose start is more
    /// than this before an interval of interest — and every entry with
    /// a smaller id — can be skipped exactly: it ended too early to
    /// overlap. This keeps the per-reception scans proportional to the
    /// *overlapping* set, not the 50 ms pruning grace window.
    max_airtime: SimDuration,
    /// Total events popped by `run_until` — the scaling benchmark's
    /// denominator for events/sec.
    events_dispatched: u64,
    timing: PhyTiming,
    config: NetworkConfig,
    /// Global packet/event counters (the overhead figures read these).
    pub counters: Counters,
    /// Optional trace sink.
    pub trace: Trace,
    /// Runtime invariant auditor (`None` = disabled, the default).
    /// See [`crate::audit`].
    audit: Option<AuditLog>,
    /// Bounded ring of passive link observations (the diagnosis tap);
    /// empty and disabled unless `link_obs_cap > 0`.
    link_obs: std::collections::VecDeque<LinkObs>,
    /// Capacity of `link_obs`; 0 disables recording entirely.
    link_obs_cap: usize,
}

impl Network {
    /// Build a network with one node per position in `medium`, using
    /// default IP-convention names, and start beacons/housekeeping.
    pub fn new(medium: Medium, seed: u64) -> Self {
        Self::with_config(medium, seed, NetworkConfig::default())
    }

    /// Build with explicit config.
    pub fn with_config(medium: Medium, seed: u64, config: NetworkConfig) -> Self {
        let n = medium.node_count();
        let names = NameRegistry::with_defaults(n);
        let nodes: Vec<Node> = (0..n)
            .map(|i| Node::new(i as u16, default_name(i as u16), seed))
            .collect();
        let node_alive = nodes.iter().map(|nd| nd.alive).collect();
        let node_channel = nodes.iter().map(|nd| nd.channel).collect();
        let node_power = nodes.iter().map(|nd| nd.power).collect();
        let mut net = Network {
            medium,
            nodes,
            names,
            queue: EventQueue::new(),
            arena: EventArena::new(),
            now: SimTime::ZERO,
            active: TxTable::new(),
            node_alive,
            node_channel,
            node_power,
            tx_busy_until: vec![SimTime::ZERO; n],
            ack_reserved_until: vec![SimTime::ZERO; n],
            next_tx: 0,
            prune_at: ACTIVE_PRUNE_MIN,
            max_airtime: SimDuration::ZERO,
            events_dispatched: 0,
            timing: PhyTiming::default(),
            config,
            counters: Counters::new(),
            trace: Trace::disabled(),
            audit: None,
            link_obs: std::collections::VecDeque::new(),
            link_obs_cap: 0,
        };
        for i in 0..n as u16 {
            if net.config.beacons_enabled {
                // Desynchronized first beacons across [0, period).
                let period = net.nodes[i as usize].stack.config().beacon_period;
                let offset =
                    SimDuration::from_nanos(net.nodes[i as usize].rng.below(period.as_nanos()));
                net.enqueue(net.now + offset, Event::Beacon { node: i });
            }
            let hk = net.config.housekeeping_period;
            net.enqueue(net.now + hk, Event::Housekeeping { node: i });
        }
        net
    }

    /// Encode an event into its queued form (parking any large payload
    /// in the arena) and push it on the future-event queue.
    fn enqueue(&mut self, at: SimTime, ev: Event) {
        let q = match ev {
            Event::ProcessStart { node, pid } => QEvent {
                kind: QKind::ProcessStart,
                node,
                b: pid,
                c: 0,
            },
            Event::Timer { node, pid, token } => QEvent {
                kind: QKind::Timer,
                node,
                b: pid,
                c: token as u64,
            },
            Event::LocalDeliver { node, pid, packet } => QEvent {
                kind: QKind::LocalDeliver,
                node,
                b: pid,
                c: self.arena.packets.insert(packet) as u64,
            },
            Event::MacCca { node, token } => QEvent {
                kind: QKind::MacCca,
                node,
                b: 0,
                c: token,
            },
            Event::MacAckTimeout { node, token } => QEvent {
                kind: QKind::MacAckTimeout,
                node,
                b: 0,
                c: token,
            },
            Event::TxEnd { node, tx_id } => QEvent {
                kind: QKind::TxEnd,
                node,
                b: 0,
                c: tx_id,
            },
            Event::RxEnd { node, tx_id } => QEvent {
                kind: QKind::RxEnd,
                node,
                b: 0,
                c: tx_id,
            },
            Event::SendAck { node, dst, seq } => QEvent {
                kind: QKind::SendAck,
                node,
                b: dst as u32 | ((seq as u32) << 16),
                c: 0,
            },
            Event::TxStart { node, frame } => QEvent {
                kind: QKind::TxStart,
                node,
                b: self.arena.frames.insert(frame),
                c: 0,
            },
            Event::Beacon { node } => QEvent {
                kind: QKind::Beacon,
                node,
                b: 0,
                c: 0,
            },
            Event::Housekeeping { node } => QEvent {
                kind: QKind::Housekeeping,
                node,
                b: 0,
                c: 0,
            },
            Event::Dynamics { action } => QEvent {
                kind: QKind::Dynamics,
                node: 0,
                b: self.arena.dynamics.insert(action),
                c: 0,
            },
        };
        self.queue.push(at, q);
    }

    /// Decode a popped queue entry back into the dispatch-facing event,
    /// reclaiming its arena slot (if any) in the process. `None` means
    /// the entry referenced an empty arena slot (a double-take that
    /// should be impossible); the anomaly is counted and the event
    /// dropped rather than panicking mid-simulation.
    fn decode(&mut self, q: QEvent) -> Option<Event> {
        Some(match q.kind {
            QKind::ProcessStart => Event::ProcessStart {
                node: q.node,
                pid: q.b,
            },
            QKind::Timer => Event::Timer {
                node: q.node,
                pid: q.b,
                token: q.c as u32,
            },
            QKind::LocalDeliver => {
                let Some(packet) = self.arena.packets.take(q.c as u32) else {
                    self.counters.incr("kernel.arena_miss");
                    return None;
                };
                Event::LocalDeliver {
                    node: q.node,
                    pid: q.b,
                    packet,
                }
            }
            QKind::MacCca => Event::MacCca {
                node: q.node,
                token: q.c,
            },
            QKind::MacAckTimeout => Event::MacAckTimeout {
                node: q.node,
                token: q.c,
            },
            QKind::TxEnd => Event::TxEnd {
                node: q.node,
                tx_id: q.c,
            },
            QKind::RxEnd => Event::RxEnd {
                node: q.node,
                tx_id: q.c,
            },
            QKind::SendAck => Event::SendAck {
                node: q.node,
                dst: (q.b & 0xFFFF) as u16,
                seq: (q.b >> 16) as u8,
            },
            QKind::TxStart => {
                let Some(frame) = self.arena.frames.take(q.b) else {
                    self.counters.incr("kernel.arena_miss");
                    return None;
                };
                Event::TxStart {
                    node: q.node,
                    frame,
                }
            }
            QKind::Beacon => Event::Beacon { node: q.node },
            QKind::Housekeeping => Event::Housekeeping { node: q.node },
            QKind::Dynamics => {
                let Some(action) = self.arena.dynamics.take(q.b) else {
                    self.counters.incr("kernel.arena_miss");
                    return None;
                };
                Event::Dynamics { action }
            }
        })
    }

    /// Live payload slots in the event arena — always equal to the
    /// number of payload-carrying events currently queued. Exposed for
    /// the recycling property tests.
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Arm (`cap > 0`) or disarm (`cap = 0`) the passive link-
    /// observation tap. While armed, every successfully received beacon
    /// or data frame is recorded as a [`LinkObs`] in a ring bounded to
    /// `cap` entries (oldest dropped first); [`Network::take_link_obs`]
    /// drains it. Disarming also clears any buffered observations.
    pub fn set_link_obs(&mut self, cap: usize) {
        self.link_obs_cap = cap;
        if cap == 0 {
            self.link_obs.clear();
        } else {
            while self.link_obs.len() > cap {
                self.link_obs.pop_front();
            }
        }
    }

    /// Drain all link observations recorded since the last call, oldest
    /// first. Empty unless the tap is armed via [`Network::set_link_obs`].
    pub fn take_link_obs(&mut self) -> Vec<LinkObs> {
        self.link_obs.drain(..).collect()
    }

    fn record_link_obs(&mut self, obs: LinkObs) {
        if self.link_obs_cap == 0 {
            return;
        }
        if self.link_obs.len() >= self.link_obs_cap {
            self.link_obs.pop_front();
        }
        self.link_obs.push_back(obs);
    }

    /// Total events dispatched by the loop so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable node access.
    pub fn node(&self, id: u16) -> &Node {
        &self.nodes[id as usize]
    }

    /// Mutable node access (experiment setup: log, rng, stack, …).
    ///
    /// The alive / channel / power fields are mirrored into
    /// struct-of-arrays columns the hot dispatch paths scan; writing
    /// them through this handle would desynchronize the mirror. Use
    /// [`Network::set_node_alive`], [`Network::set_node_channel`] and
    /// [`Network::set_node_power`] for those three.
    pub fn node_mut(&mut self, id: u16) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Set a node's alive flag, keeping the SoA mirror in sync.
    pub fn set_node_alive(&mut self, id: u16, alive: bool) {
        self.nodes[id as usize].alive = alive;
        self.node_alive[id as usize] = alive;
    }

    /// Set a node's radio channel, keeping the SoA mirror in sync.
    pub fn set_node_channel(&mut self, id: u16, channel: Channel) {
        self.nodes[id as usize].channel = channel;
        self.node_channel[id as usize] = channel;
    }

    /// Set a node's transmit power, keeping the SoA mirror in sync.
    pub fn set_node_power(&mut self, id: u16, power: lv_radio::PowerLevel) {
        self.nodes[id as usize].power = power;
        self.node_power[id as usize] = power;
    }

    /// The deployment's name registry.
    pub fn names(&self) -> &NameRegistry {
        &self.names
    }

    /// Snapshot every node's health and traffic counters, in node order.
    pub fn node_stats(&self) -> Vec<crate::node::NodeStats> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    /// Resolve a node name to an id.
    pub fn resolve(&self, name: &str) -> Option<u16> {
        self.names.resolve(name)
    }

    /// Install a routing protocol on one node.
    pub fn install_router(
        &mut self,
        node: u16,
        router: Box<dyn Router>,
    ) -> Result<(), lv_net::stack::RouterError> {
        self.nodes[node as usize].stack.register_router(router)
    }

    /// Spawn a process on a node and schedule its `on_start`.
    pub fn spawn_process(
        &mut self,
        node: u16,
        process: Box<dyn Process>,
        params: Vec<u8>,
    ) -> Result<ProcessId, ResourceError> {
        let pid = self.nodes[node as usize].register_process(process, params)?;
        self.enqueue(
            self.now + self.config.cpu_cost,
            Event::ProcessStart { node, pid },
        );
        Ok(pid)
    }

    /// Deliver a synthetic timer to a process right away — the hook the
    /// workstation driver uses to kick the command interpreter.
    pub fn poke(&mut self, node: u16, pid: ProcessId, token: u32) {
        self.enqueue(self.now, Event::Timer { node, pid, token });
    }

    /// Run the loop until virtual time `t` (inclusive).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let Some((at, q)) = self.queue.pop() else {
                break;
            };
            if let Some(log) = self.audit.as_mut() {
                if at < self.now {
                    log.record(AuditViolation::TimeRegression {
                        now: self.now,
                        event: at,
                    });
                }
            }
            self.now = at;
            self.events_dispatched += 1;
            if let Some(ev) = self.decode(q) {
                self.dispatch(ev);
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    // ------------------------------------------------------------------
    // Runtime invariant auditing (see crate::audit)
    // ------------------------------------------------------------------

    /// Enable or disable the runtime invariant auditor. Disabled by
    /// default; enabling starts with a clean log. When enabled, the
    /// event loop checks time monotonicity on every pop and sweeps the
    /// structural invariants after each dynamics event.
    pub fn set_audit(&mut self, enabled: bool) {
        self.audit = if enabled {
            Some(AuditLog::default())
        } else {
            None
        };
    }

    /// Whether the runtime auditor is active.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Violations observed since auditing was enabled (empty slice when
    /// auditing is off).
    pub fn audit_violations(&self) -> &[AuditViolation] {
        self.audit.as_ref().map_or(&[], AuditLog::violations)
    }

    /// Sweep the structural invariants right now, independent of the
    /// enable flag: stale active transmissions from dead nodes, and
    /// every node's flash/RAM ledger against ground truth. Returns the
    /// first violation found (all are also recorded when auditing is
    /// enabled).
    pub fn check_invariants(&mut self) -> Result<(), AuditViolation> {
        let mut found: Vec<AuditViolation> = Vec::new();
        for (tx_id, tx) in self.active.iter_from(0) {
            // Only transmissions still on the air matter; ended entries
            // legitimately linger until the amortized prune.
            if tx.end > self.now
                && (!self.nodes[tx.sender as usize].alive || self.medium.is_dead(tx.sender))
            {
                found.push(AuditViolation::StaleActiveTx {
                    sender: tx.sender,
                    tx_id,
                });
            }
        }
        for node in &self.nodes {
            let flash_used = node.resources.flash_used();
            let stored_total = node.resources.stored_flash_total();
            if flash_used != stored_total {
                found.push(AuditViolation::FlashImbalance {
                    node: node.id,
                    flash_used,
                    stored_total,
                });
            }
            let ram_used = node.resources.ram_used();
            let slots_total: u32 = node
                .processes
                .values()
                .map(|slot| slot.image.ram_bytes)
                .sum();
            if ram_used != slots_total {
                found.push(AuditViolation::RamImbalance {
                    node: node.id,
                    ram_used,
                    slots_total,
                });
            }
        }
        let first = found.first().cloned();
        if let Some(log) = self.audit.as_mut() {
            for v in found {
                log.record(v);
            }
        }
        match first {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }

    /// Run the loop for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::ProcessStart { node, pid } => {
                self.run_hook(node, pid, |p, ctx| p.on_start(ctx));
            }
            Event::Timer { node, pid, token } => {
                self.run_hook(node, pid, |p, ctx| p.on_timer(ctx, token));
            }
            Event::LocalDeliver { node, pid, packet } => {
                let meta = RxMeta {
                    from: node,
                    rssi: 0,
                    lqi: 110,
                };
                self.run_hook(node, pid, |p, ctx| p.on_packet(ctx, &packet, meta));
            }
            Event::MacCca { node, token } => self.on_cca(node, token),
            Event::MacAckTimeout { node, token } => {
                let idx = node as usize;
                if !self.nodes[idx].alive {
                    return;
                }
                let actions = {
                    let n = &mut self.nodes[idx];
                    let (mac, rng) = (&mut n.mac, &mut n.rng);
                    mac.on_ack_timeout(token, rng)
                };
                self.exec_mac_actions(node, actions);
            }
            Event::TxEnd { node, tx_id } => {
                let idx = node as usize;
                if !self.nodes[idx].alive {
                    return;
                }
                // Raw transmissions (immediate acks) are not owned by
                // the CSMA machine; feeding their completion into it
                // would be mistaken for the data frame's TxEnd.
                let mac_owned = self
                    .active
                    .get(tx_id)
                    .is_some_and(|tx| tx.frame.kind != FrameKind::Ack);
                if !mac_owned {
                    return;
                }
                let actions = {
                    let n = &mut self.nodes[idx];
                    let (mac, rng) = (&mut n.mac, &mut n.rng);
                    mac.on_tx_done(rng)
                };
                self.exec_mac_actions(node, actions);
            }
            Event::RxEnd { node, tx_id } => self.on_rx_end(node, tx_id),
            Event::SendAck { node, dst, seq } => {
                if !self.nodes[node as usize].alive {
                    return;
                }
                let frame = Frame::ack(node, dst, seq);
                self.begin_transmission(node, frame);
            }
            Event::TxStart { node, frame } => {
                self.begin_transmission(node, frame);
            }
            Event::Beacon { node } => self.on_beacon_tick(node),
            Event::Housekeeping { node } => {
                let idx = node as usize;
                let now = self.now;
                self.nodes[idx].stack.housekeeping(now);
                let hk = self.config.housekeeping_period;
                self.enqueue(self.now + hk, Event::Housekeeping { node });
            }
            Event::Dynamics { action } => {
                self.apply_dynamics(action);
                if self.audit.is_some() {
                    // Churn is where the structural invariants can
                    // break; sweep right after every dynamics action.
                    let _ = self.check_invariants();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Dynamics engine
    // ------------------------------------------------------------------

    /// Schedule a world mutation at virtual time `at`. The mutation is
    /// dispatched by the event loop like any other event, so it
    /// interleaves deterministically with traffic and FIFO tie-breaking
    /// orders same-instant mutations by scheduling order. Scheduling
    /// nothing leaves the run bit-identical to a static scenario.
    pub fn schedule_dynamics(&mut self, at: SimTime, action: DynamicsAction) {
        let at = at.max(self.now);
        self.enqueue(at, Event::Dynamics { action });
    }

    fn apply_dynamics(&mut self, action: DynamicsAction) {
        let now = self.now;
        match action {
            DynamicsAction::SetLinkLoss {
                from,
                to,
                extra_loss_db,
                blocked,
            } => {
                self.medium.set_override(
                    from,
                    to,
                    lv_radio::medium::LinkOverride {
                        extra_loss_db,
                        blocked,
                    },
                );
                self.counters.incr_id(CounterId::DynLinkOverride);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        from,
                        TraceLevel::Info,
                        format!(
                            "dyn.link {from}->{to} loss={extra_loss_db:.1}dB{}",
                            if blocked { " blocked" } else { "" }
                        ),
                    );
                }
            }
            DynamicsAction::ClearLinkLoss { from, to } => {
                self.medium.clear_override(from, to);
                self.counters.incr_id(CounterId::DynLinkOverride);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        from,
                        TraceLevel::Info,
                        format!("dyn.link {from}->{to} cleared"),
                    );
                }
            }
            DynamicsAction::SetChannelNoise { channel, delta_db } => {
                self.medium.set_channel_noise(channel, delta_db);
                self.counters.incr_id(CounterId::DynChannelNoise);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        Trace::NO_NODE,
                        TraceLevel::Info,
                        format!("dyn.noise ch={} +{delta_db:.1}dB", channel.number()),
                    );
                }
            }
            DynamicsAction::ClearChannelNoise { channel } => {
                self.medium.clear_channel_noise(channel);
                self.counters.incr_id(CounterId::DynChannelNoise);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        Trace::NO_NODE,
                        TraceLevel::Info,
                        format!("dyn.noise ch={} cleared", channel.number()),
                    );
                }
            }
            DynamicsAction::NodeDown { id } => {
                self.nodes[id as usize].alive = false;
                self.node_alive[id as usize] = false;
                self.medium.set_dead(id, true);
                self.abort_transmissions_of(id);
                self.counters.incr_id(CounterId::DynNodeDown);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace
                        .emit(now, id, TraceLevel::Info, "dyn.node down".to_owned());
                }
            }
            DynamicsAction::NodeUp { id } => {
                self.medium.set_dead(id, false);
                self.nodes[id as usize].reboot();
                self.node_alive[id as usize] = true;
                self.counters.incr_id(CounterId::DynNodeUp);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace
                        .emit(now, id, TraceLevel::Info, "dyn.node up (reboot)".to_owned());
                }
            }
            DynamicsAction::SetNodeChannel { id, channel } => {
                self.nodes[id as usize].channel = channel;
                self.node_channel[id as usize] = channel;
                self.counters.incr_id(CounterId::DynReconfig);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        id,
                        TraceLevel::Info,
                        format!("dyn.reconfig channel={}", channel.number()),
                    );
                }
            }
            DynamicsAction::SetNodePower { id, power } => {
                self.nodes[id as usize].power = power;
                self.node_power[id as usize] = power;
                self.counters.incr_id(CounterId::DynReconfig);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        id,
                        TraceLevel::Info,
                        format!("dyn.reconfig power={}", power.level()),
                    );
                }
            }
            DynamicsAction::MoveNode { id, position } => {
                self.medium.set_position(id, position);
                self.counters.incr_id(CounterId::DynReconfig);
                if self.trace.accepts(TraceLevel::Info) {
                    self.trace.emit(
                        now,
                        id,
                        TraceLevel::Info,
                        format!("dyn.reconfig move=({:.1},{:.1})", position.x, position.y),
                    );
                }
            }
        }
    }

    /// Abort every in-flight transmission by `node`: drop its entries
    /// from the active table (pending `RxEnd`/`TxEnd` events find no
    /// entry and fall through harmlessly) and release its radio-busy and
    /// ack reservations so a later reboot starts from a clean slate.
    /// This is the churn-path guarantee that `set_dead` mid-frame leaves
    /// no stale active-transmission state behind.
    fn abort_transmissions_of(&mut self, node: u16) {
        self.active.abort_sender(node);
        let idx = node as usize;
        self.tx_busy_until[idx] = self.now;
        self.ack_reserved_until[idx] = self.now;
    }

    fn on_beacon_tick(&mut self, node: u16) {
        let idx = node as usize;
        if self.nodes[idx].alive && !self.medium.is_dead(node) {
            let actions = {
                let medium = &self.medium;
                let n = &mut self.nodes[idx];
                let pos = medium.position(node);
                let payload = n.stack.make_beacon(pos).encode();
                let (mac, rng) = (&mut n.mac, &mut n.rng);
                mac.send(FrameKind::Beacon, BROADCAST, payload, rng).1
            };
            self.exec_mac_actions(node, actions);
        }
        // Reschedule even while dead: the node may be revived.
        let (period, jitter) = {
            let cfg = self.nodes[idx].stack.config();
            (cfg.beacon_period, cfg.beacon_jitter)
        };
        let j = if jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.nodes[idx].rng.below(jitter.as_nanos()))
        };
        let at = self.now + period + j;
        self.enqueue(at, Event::Beacon { node });
    }

    // lv-lint: hot
    fn on_cca(&mut self, node: u16, token: u64) {
        let idx = node as usize;
        if !self.node_alive[idx] {
            return;
        }
        let floor = self.active.scan_floor(self.now, self.max_airtime);
        let channel = self.node_channel[idx];
        let clear = {
            let medium = &self.medium;
            let n = &mut self.nodes[idx];
            let mut busy = false;
            for (_, tx) in self.active.rows_from(floor) {
                if tx.end <= self.now || tx.start > self.now || tx.channel != channel {
                    continue;
                }
                if tx.sender == node {
                    busy = true; // own radio mid-transmission (e.g. an ack)
                    break;
                }
                if medium.cca_senses_fast(tx.sender, node, tx.power, &mut n.rng) {
                    busy = true;
                    break;
                }
            }
            !busy
        };
        let actions = {
            let n = &mut self.nodes[idx];
            let (mac, rng) = (&mut n.mac, &mut n.rng);
            mac.on_cca(token, clear, rng)
        };
        self.exec_mac_actions(node, actions);
    }

    // lv-lint: hot
    fn on_rx_end(&mut self, node: u16, tx_id: u64) {
        let idx = node as usize;
        let Some(tx) = self.active.get(tx_id) else {
            return;
        };
        if !self.node_alive[idx] || self.node_channel[idx] != tx.channel {
            return;
        }
        // One pass over the active table does double duty: detect the
        // half-duplex conflict (a node radiating during any part of the
        // frame cannot receive it) and aggregate co-channel
        // interference. The busy case discards the partial sum, and
        // ascending-id iteration over the slab keeps the float
        // accumulation order of the original two-pass code, so outcomes
        // are identical.
        let mut busy_transmitting = false;
        let mut interference_mw = 0.0;
        let floor = self.active.scan_floor(tx.start, self.max_airtime);
        let (tx_start, tx_end, tx_sender, tx_channel) = (tx.start, tx.end, tx.sender, tx.channel);
        for (_, other) in self.active.rows_from(floor) {
            if other.sender == node {
                if other.start < tx_end && other.end > tx_start {
                    busy_transmitting = true;
                    break;
                }
                continue; // own radio, but not overlapping this frame
            }
            if other.sender == tx_sender {
                continue;
            }
            if other.channel != tx_channel || other.start >= tx_end || other.end <= tx_start {
                continue;
            }
            if let Some(mw) = self.medium.mean_rx_mw(other.sender, node, other.power) {
                interference_mw += mw;
            }
        }
        if busy_transmitting {
            self.counters.incr_id(CounterId::RxHalfduplexMiss);
            return;
        }
        let (sender, power, wire_len, channel, frame) = (
            tx.sender,
            tx.power,
            tx.wire_len,
            tx.channel,
            tx.frame.clone(),
        );
        let assessment = {
            let medium = &self.medium;
            let nn = &mut self.nodes[idx];
            // Channel-aware: picks up any bursty-interference noise
            // offset on the frame's channel (bit-identical to `assess`
            // while no offset is set).
            medium.assess_on(
                sender,
                node,
                power,
                wire_len,
                interference_mw,
                channel,
                &mut nn.rng,
            )
        };
        let Some(a) = assessment else {
            return; // below sensitivity (or link blocked)
        };
        // The radio actively demodulated this frame (even if it then
        // fails the CRC): charge receive energy for its airtime.
        let airtime = self.timing.frame_airtime(wire_len);
        self.nodes[idx].energy.charge_rx(airtime);
        if !a.delivered {
            self.counters.incr_id(CounterId::RxCorrupt);
            if self.trace.accepts(TraceLevel::Debug) {
                let at = self.now;
                self.trace.emit(
                    at,
                    node,
                    TraceLevel::Debug,
                    format!("rx.corrupt from={} len={wire_len}", sender),
                );
            }
            return;
        }
        self.counters.incr_id(CounterId::RxFrames);
        let (actions, delivered) = {
            let nn = &mut self.nodes[idx];
            let rx = Reception {
                frame,
                rssi: a.rssi,
                lqi: a.lqi,
                snr_db: a.snr_db,
            };
            let (mac, rng) = (&mut nn.mac, &mut nn.rng);
            mac.on_frame_received(rx, rng)
        };
        self.exec_mac_actions(node, actions);
        if let Some(rx) = delivered {
            self.handle_reception(node, rx);
        }
    }

    fn handle_reception(&mut self, node: u16, rx: Reception) {
        let idx = node as usize;
        let now = self.now;
        let frame = rx.frame;
        self.nodes[idx].stack.neighbors.touch(frame.src, now);
        match frame.kind {
            FrameKind::Beacon => {
                if let Some(b) = BeaconPayload::decode(&frame.payload) {
                    self.nodes[idx].stack.on_beacon(frame.src, &b, now);
                    self.counters.incr_id(CounterId::RxBeacon);
                    self.record_link_obs(LinkObs {
                        at: now,
                        tx: frame.src,
                        rx: node,
                        lqi: rx.lqi,
                        rssi: rx.rssi,
                        beacon: true,
                    });
                    if self.trace.accepts(TraceLevel::Debug) {
                        self.trace.emit(
                            now,
                            node,
                            TraceLevel::Debug,
                            format!("rx.beacon from={} seq={}", frame.src, b.seq),
                        );
                    }
                }
            }
            FrameKind::Data => {
                let Some(pkt) = NetPacket::decode(&frame.payload) else {
                    self.counters.incr_id(CounterId::RxGarbled);
                    return;
                };
                self.record_link_obs(LinkObs {
                    at: now,
                    tx: frame.src,
                    rx: node,
                    lqi: rx.lqi,
                    rssi: rx.rssi,
                    beacon: false,
                });
                let hop = HopQuality {
                    lqi: rx.lqi,
                    rssi: rx.rssi,
                };
                enum Next {
                    Deliver(ProcessId, NetPacket),
                    Sent(Vec<MacAction>),
                    Dropped,
                }
                let next = {
                    let medium = &self.medium;
                    let nn = &mut self.nodes[idx];
                    let pos = medium.position(node);
                    let count = medium.node_count();
                    let locs = move |id: u16| ((id as usize) < count).then(|| medium.position(id));
                    match nn.stack.on_receive(pkt, hop, pos, &locs) {
                        RxAction::DeliverTo { pid, packet } => Next::Deliver(pid, packet),
                        RxAction::Forward { next_hop, packet } => {
                            let payload = packet.encode();
                            let (mac, rng) = (&mut nn.mac, &mut nn.rng);
                            let (ok, actions) = mac.send(FrameKind::Data, next_hop, payload, rng);
                            if !ok {
                                self.counters.incr_id(CounterId::NetQueueDrop);
                            } else {
                                self.counters.incr_id(CounterId::NetForward);
                            }
                            if self.trace.accepts(TraceLevel::Packet) {
                                self.trace.emit(
                                    now,
                                    node,
                                    TraceLevel::Packet,
                                    format!(
                                        "net.forward next_hop={next_hop} origin={} dst={}{}",
                                        packet.header.origin,
                                        packet.header.dst,
                                        if ok { "" } else { " (queue full)" },
                                    ),
                                );
                            }
                            Next::Sent(actions)
                        }
                        RxAction::Drop { reason } => {
                            self.counters.incr_id(reason.counter_id());
                            if self.trace.accepts(TraceLevel::Debug) {
                                self.trace.emit(
                                    now,
                                    node,
                                    TraceLevel::Debug,
                                    format!("net.drop reason={reason:?}"),
                                );
                            }
                            Next::Dropped
                        }
                    }
                };
                match next {
                    Next::Deliver(pid, packet) => {
                        let meta = RxMeta {
                            from: frame.src,
                            rssi: rx.rssi,
                            lqi: rx.lqi,
                        };
                        self.counters.incr_id(CounterId::NetDeliver);
                        if self.trace.accepts(TraceLevel::Packet) {
                            self.trace.emit(
                                now,
                                node,
                                TraceLevel::Packet,
                                format!(
                                    "net.deliver pid={pid} origin={} app_port={}",
                                    packet.header.origin, packet.header.app_port.0
                                ),
                            );
                        }
                        self.run_hook(node, pid, |p, ctx| p.on_packet(ctx, &packet, meta));
                    }
                    Next::Sent(actions) => self.exec_mac_actions(node, actions),
                    Next::Dropped => {}
                }
            }
            FrameKind::Ack => {
                // The MAC consumes acks in its rx path; one surfacing
                // here means the layering slipped. Count it and drop
                // the frame rather than aborting the whole simulation.
                self.counters.incr_id(CounterId::MacAnomaly);
                if self.trace.accepts(TraceLevel::Packet) {
                    self.trace.emit(
                        now,
                        node,
                        TraceLevel::Packet,
                        format!(
                            "mac.anomaly stray ack reached network layer from {} seq={}",
                            frame.src, frame.seq
                        ),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // MAC action execution
    // ------------------------------------------------------------------

    fn exec_mac_actions(&mut self, node: u16, actions: Vec<MacAction>) {
        for action in actions {
            match action {
                MacAction::ScheduleCca { after, token } => {
                    let at = self.now + after;
                    self.enqueue(at, Event::MacCca { node, token });
                }
                MacAction::StartTx { frame } => {
                    self.begin_transmission(node, frame);
                }
                MacAction::ScheduleAckWait { after, token } => {
                    let at = self.now + after;
                    self.enqueue(at, Event::MacAckTimeout { node, token });
                }
                MacAction::SendAck { dst, seq } => {
                    // Immediate ack after the RX→TX turnaround. Reserve
                    // the radio so queued data cannot squeeze in first
                    // and delay the ack past the sender's ack-wait.
                    let at = self.now + self.timing.turnaround;
                    let idx = node as usize;
                    let reserved = at + self.timing.frame_airtime(5);
                    if reserved > self.ack_reserved_until[idx] {
                        self.ack_reserved_until[idx] = reserved;
                    }
                    self.enqueue(at, Event::SendAck { node, dst, seq });
                }
                MacAction::Delivered { frame, .. } => {
                    self.counters.incr_id(CounterId::MacDelivered);
                    if !frame.is_broadcast() {
                        let now = self.now;
                        let n = &mut self.nodes[node as usize];
                        n.stack.neighbors.touch(frame.dst, now);
                        n.stack.neighbors.link_feedback(frame.dst, true);
                    }
                }
                MacAction::Failed { frame, reason } => {
                    self.counters.incr_id(reason.counter_id());
                    if self.trace.accepts(TraceLevel::Debug) {
                        let at = self.now;
                        self.trace.emit(
                            at,
                            node,
                            TraceLevel::Debug,
                            format!(
                                "mac.failed dst={} seq={} reason={reason:?}",
                                frame.dst, frame.seq
                            ),
                        );
                    }
                    if !frame.is_broadcast() {
                        self.nodes[node as usize]
                            .stack
                            .neighbors
                            .link_feedback(frame.dst, false);
                    }
                }
                MacAction::Anomaly { context } => {
                    // ISSUE 2 bugfix: a spurious ack or stale timer used
                    // to abort the node via `unwrap()`. It now surfaces
                    // here — counted, traced, frame dropped, node alive.
                    self.counters.incr_id(CounterId::MacAnomaly);
                    if self.trace.accepts(TraceLevel::Debug) {
                        let at = self.now;
                        self.trace.emit(
                            at,
                            node,
                            TraceLevel::Debug,
                            format!("mac.anomaly: {context}"),
                        );
                    }
                }
            }
        }
    }

    // lv-lint: hot
    fn begin_transmission(&mut self, node: u16, frame: Frame) {
        let idx = node as usize;
        if !self.node_alive[idx] || self.medium.is_dead(node) {
            return;
        }
        // Half duplex, one frame at a time: if the radio is mid-frame,
        // defer this transmission until it frees up (plus a turnaround).
        // Data frames additionally yield to a pending immediate ack.
        let mut busy = self.tx_busy_until[idx];
        if frame.kind != FrameKind::Ack {
            busy = busy.max(self.ack_reserved_until[idx]);
        }
        if busy > self.now {
            let at = busy + self.timing.turnaround;
            self.enqueue(at, Event::TxStart { node, frame });
            return;
        }
        let wire_len = frame.wire_len();
        let airtime = self.timing.frame_airtime(wire_len);
        if airtime > self.max_airtime {
            self.max_airtime = airtime;
        }
        let start = self.now;
        let end = start + airtime;
        let (tx_power, tx_channel) = (self.node_power[idx], self.node_channel[idx]);
        self.tx_busy_until[idx] = end;
        self.nodes[idx].energy.charge_tx(airtime, tx_power);
        let (kind_id, kind) = match frame.kind {
            FrameKind::Data => (CounterId::TxData, "tx.data"),
            FrameKind::Ack => (CounterId::TxAck, "tx.ack"),
            FrameKind::Beacon => (CounterId::TxBeacon, "tx.beacon"),
        };
        self.counters.incr_id(kind_id);
        self.counters.add_id(CounterId::TxBytes, wire_len as u64);
        if self.trace.accepts(TraceLevel::Packet) {
            self.trace.emit(
                start,
                node,
                TraceLevel::Packet,
                format!("{kind} dst={} seq={} len={wire_len}", frame.dst, frame.seq),
            );
        }
        let tx_id = self.next_tx;
        self.next_tx += 1;
        // Schedule receptions first so that, at the same instant, every
        // RxEnd for this frame pops before its TxEnd. `reachable` yields
        // exactly the nodes `hears` accepts, ascending by id — O(degree)
        // through the medium's candidate cache instead of O(N).
        for j in self.medium.reachable(node, tx_power) {
            if j == node || !self.node_alive[j as usize] {
                continue;
            }
            self.queue.push(
                end,
                QEvent {
                    kind: QKind::RxEnd,
                    node: j,
                    b: 0,
                    c: tx_id,
                },
            );
        }
        self.queue.push(
            end,
            QEvent {
                kind: QKind::TxEnd,
                node,
                b: 0,
                c: tx_id,
            },
        );
        self.active.push(
            tx_id,
            ActiveTx {
                sender: node,
                channel: tx_channel,
                power: tx_power,
                start,
                end,
                frame: Arc::new(frame),
                wire_len,
                aborted: false,
            },
        );
        // Lazy prune, amortized: only sweep once the table doubles past
        // its last post-prune size. Entries older than the 50 ms grace
        // window are invisible to every interference / CCA / half-duplex
        // lookback, so deferring their removal is observationally inert.
        if self.active.len() >= self.prune_at {
            let horizon = self.now - SimDuration::from_millis(50);
            self.active.prune(horizon);
            // Re-arm a fixed step above the live set: the table never
            // carries more than ~ACTIVE_PRUNE_MIN stale entries, which
            // keeps the per-reception scans short while still amortizing
            // each O(len) sweep over ACTIVE_PRUNE_MIN insertions.
            self.prune_at = self.active.len() + ACTIVE_PRUNE_MIN;
        }
    }

    // ------------------------------------------------------------------
    // Process hooks and effects
    // ------------------------------------------------------------------

    fn run_hook(
        &mut self,
        node: u16,
        pid: ProcessId,
        hook: impl FnOnce(&mut dyn Process, &mut SysCtx<'_>),
    ) {
        let idx = node as usize;
        if !self.nodes[idx].alive {
            return;
        }
        let now = self.now;
        let (snapshot, log_snapshot, mut proc_box, params, power, channel, qlen, name, routers) = {
            let n = &mut self.nodes[idx];
            let Some(slot) = n.processes.get_mut(&pid) else {
                return;
            };
            let Some(pb) = slot.process.take() else {
                return; // re-entrant hook (cannot happen in this loop)
            };
            let params = slot.params.clone();
            (
                n.neighbor_snapshot(),
                n.log.entries().to_vec(),
                pb,
                params,
                n.power,
                n.channel,
                n.mac.queue_len(),
                n.name.clone(),
                n.stack.router_list(),
            )
        };
        let effects = {
            let medium = &self.medium;
            let n = &mut self.nodes[idx];
            let Node { stack, rng, .. } = n;
            let pos = medium.position(node);
            let count = medium.node_count();
            let locs = move |id: u16| ((id as usize) < count).then(|| medium.position(id));
            let resolver =
                |port: lv_net::packet::Port, dst: u16| stack.query_next_hop(port, dst, pos, &locs);
            let mut ctx = SysCtx::new(
                now,
                node,
                &name,
                pid,
                &params,
                power,
                channel,
                qlen,
                &snapshot,
                &log_snapshot,
                rng,
                &routers,
                &resolver,
            );
            hook(proc_box.as_mut(), &mut ctx);
            ctx.take_effects()
        };
        if let Some(slot) = self.nodes[idx].processes.get_mut(&pid) {
            slot.process = Some(proc_box);
        }
        self.apply_effects(node, pid, effects);
    }

    fn apply_effects(&mut self, node: u16, pid: ProcessId, effects: Vec<Effect>) {
        let idx = node as usize;
        for effect in effects {
            match effect {
                Effect::Send {
                    dst,
                    carrying_port,
                    app_port,
                    payload,
                    padding,
                } => {
                    enum Out {
                        Actions(Vec<MacAction>),
                        Local(ProcessId, NetPacket),
                        None,
                    }
                    let out = {
                        let medium = &self.medium;
                        let n = &mut self.nodes[idx];
                        let pkt =
                            n.stack
                                .make_packet(dst, carrying_port, app_port, payload, padding);
                        let pos = medium.position(node);
                        let count = medium.node_count();
                        let locs =
                            move |id: u16| ((id as usize) < count).then(|| medium.position(id));
                        match n.stack.route_local(pkt, pos, &locs) {
                            RxAction::Forward { next_hop, packet } => {
                                let bytes = packet.encode();
                                let (mac, rng) = (&mut n.mac, &mut n.rng);
                                let (ok, actions) = mac.send(FrameKind::Data, next_hop, bytes, rng);
                                if ok {
                                    self.counters.incr_id(CounterId::NetOriginate);
                                    Out::Actions(actions)
                                } else {
                                    self.counters.incr_id(CounterId::NetQueueDrop);
                                    Out::None
                                }
                            }
                            RxAction::DeliverTo { pid, packet } => Out::Local(pid, packet),
                            RxAction::Drop { reason } => {
                                self.counters.incr_id(reason.counter_id());
                                Out::None
                            }
                        }
                    };
                    match out {
                        Out::Actions(actions) => self.exec_mac_actions(node, actions),
                        Out::Local(pid, packet) => {
                            let at = self.now + self.config.cpu_cost;
                            self.enqueue(at, Event::LocalDeliver { node, pid, packet });
                        }
                        Out::None => {}
                    }
                }
                Effect::Timer { token, after } => {
                    let at = self.now + after;
                    self.enqueue(at, Event::Timer { node, pid, token });
                }
                Effect::Subscribe(port) => {
                    if self.nodes[idx].stack.subscribe(port, pid).is_err() {
                        self.counters.incr_id(CounterId::SysSubscribeConflict);
                    }
                }
                Effect::Unsubscribe(port) => {
                    self.nodes[idx].stack.unsubscribe(port);
                }
                Effect::Spawn { process, params } => {
                    match self.nodes[idx].register_process(process, params) {
                        Ok(child) => {
                            let at = self.now + self.config.cpu_cost;
                            self.enqueue(at, Event::ProcessStart { node, pid: child });
                        }
                        Err(e) => {
                            let now = self.now;
                            // Cold error branch: the detail string is
                            // built at most once per failed spawn, not
                            // per event.
                            // lv-lint: allow(hot-path-alloc-transitive)
                            self.nodes[idx].log.record(now, "spawn_fail", e.to_string());
                            self.counters.incr_id(CounterId::SysSpawnFail);
                        }
                    }
                }
                Effect::Exit => {
                    self.nodes[idx].remove_process(pid);
                }
                Effect::Blacklist { id, value } => {
                    if !self.nodes[idx].stack.neighbors.set_blacklisted(id, value) {
                        self.counters.incr_id(CounterId::SysBlacklistUnknown);
                    }
                }
                Effect::SetPower(level) => {
                    self.nodes[idx].power = level;
                    self.node_power[idx] = level;
                }
                Effect::SetChannel(channel) => {
                    self.nodes[idx].channel = channel;
                    self.node_channel[idx] = channel;
                }
                Effect::SetBeaconPeriod(period) => {
                    self.nodes[idx].stack.config_mut().beacon_period = period;
                }
                Effect::SetLogging(enabled) => {
                    self.nodes[idx].log.set_enabled(enabled);
                }
                Effect::Log { code, detail } => {
                    let now = self.now;
                    self.nodes[idx].log.record(now, code, detail);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::resources::ProcessImage;
    use lv_net::packet::Port;
    use lv_radio::propagation::PropagationConfig;
    use lv_radio::units::Position;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn line_medium(n: usize, spacing: f64, seed: u64) -> Medium {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect();
        Medium::new(positions, PropagationConfig::default(), seed)
    }

    /// A process that echoes every packet back to its origin over a
    /// chosen carrying port.
    struct Echo {
        port: Port,
        carry: Port,
        received: Rc<RefCell<Vec<Vec<u8>>>>,
    }
    impl Process for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
            ctx.subscribe(self.port);
        }
        fn on_packet(&mut self, ctx: &mut SysCtx<'_>, packet: &NetPacket, _meta: RxMeta) {
            self.received.borrow_mut().push(packet.payload.to_vec());
            ctx.send(
                packet.header.origin,
                self.carry,
                self.port,
                packet.payload.to_vec(),
                true,
            );
        }
    }

    /// A process that sends one packet at start.
    struct OneShot {
        dst: u16,
        port: Port,
        got_reply: Rc<RefCell<u32>>,
    }
    impl Process for OneShot {
        fn name(&self) -> &str {
            "oneshot"
        }
        fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
            ctx.subscribe(self.port);
            ctx.send(self.dst, self.port, self.port, vec![1, 2, 3], false);
        }
        fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, _packet: &NetPacket, _meta: RxMeta) {
            *self.got_reply.borrow_mut() += 1;
        }
    }

    #[test]
    fn one_hop_request_reply() {
        let mut net = Network::new(line_medium(2, 5.0, 7), 7);
        let received = Rc::new(RefCell::new(Vec::new()));
        let replies = Rc::new(RefCell::new(0));
        net.spawn_process(
            1,
            Box::new(Echo {
                port: Port(30),
                carry: Port(30),
                received: received.clone(),
            }),
            vec![],
        )
        .unwrap();
        net.run_for(SimDuration::from_millis(10));
        net.spawn_process(
            0,
            Box::new(OneShot {
                dst: 1,
                port: Port(30),
                got_reply: replies.clone(),
            }),
            vec![],
        )
        .unwrap();
        net.run_for(SimDuration::from_millis(200));
        assert_eq!(received.borrow().len(), 1);
        assert_eq!(received.borrow()[0], vec![1, 2, 3]);
        assert_eq!(*replies.borrow(), 1);
        assert!(net.counters.get("tx.data") >= 2);
        assert!(net.counters.get("tx.ack") >= 2);
    }

    #[test]
    fn beacons_populate_neighbor_tables() {
        let mut net = Network::new(line_medium(3, 5.0, 3), 3);
        net.run_for(SimDuration::from_secs(20));
        // Middle node hears both ends.
        let nt = &net.node(1).stack.neighbors;
        assert!(nt.get(0).is_some());
        assert!(nt.get(2).is_some());
        assert!(nt.get(0).unwrap().inbound() > 0.8);
        // Names learned from beacons.
        assert_eq!(nt.get(0).unwrap().name, "192.168.0.1");
        // Outbound learned from the reverse advertisements.
        assert!(nt.get(0).unwrap().outbound.is_some());
    }

    #[test]
    fn distant_nodes_never_meet() {
        let mut net = Network::new(line_medium(2, 400.0, 3), 3);
        net.run_for(SimDuration::from_secs(10));
        assert!(net.node(0).stack.neighbors.is_empty());
        assert!(net.node(1).stack.neighbors.is_empty());
    }

    #[test]
    fn dead_node_goes_silent() {
        let mut net = Network::new(line_medium(2, 5.0, 3), 3);
        net.run_for(SimDuration::from_secs(5));
        assert!(net.node(1).stack.neighbors.get(0).is_some());
        // Kill node 0 and let the neighbor table expire it.
        net.set_node_alive(0, false);
        net.run_for(SimDuration::from_secs(30));
        assert!(net.node(1).stack.neighbors.get(0).is_none());
    }

    #[test]
    fn multi_hop_geographic_delivery() {
        // 5 nodes in a line, 12 m apart: ends can't hear each other
        // directly at full power (path loss at 48 m ≫ at 12 m), so the
        // packet must hop. Use geographic forwarding on port 10.
        let mut net = Network::new(line_medium(5, 12.0, 11), 11);
        for i in 0..5 {
            net.install_router(
                i,
                Box::new(lv_net::routing::Geographic::new(Port::GEOGRAPHIC)),
            )
            .unwrap();
        }
        // Let beacons build the tables.
        net.run_for(SimDuration::from_secs(20));
        let received = Rc::new(RefCell::new(Vec::new()));
        net.spawn_process(
            4,
            Box::new(Echo {
                port: Port(31),
                carry: Port::GEOGRAPHIC,
                received: received.clone(),
            }),
            vec![],
        )
        .unwrap();
        let replies = Rc::new(RefCell::new(0));
        net.spawn_process(
            0,
            Box::new(OneShotRouted {
                dst: 4,
                got_reply: replies.clone(),
            }),
            vec![],
        )
        .unwrap();
        net.run_for(SimDuration::from_secs(2));
        assert_eq!(received.borrow().len(), 1, "payload must reach node 4");
        assert_eq!(*replies.borrow(), 1, "reply must return to node 0");
        assert!(net.counters.get("net.forward") >= 4, "must actually hop");
    }

    /// Sends one packet via the geographic router and counts replies.
    struct OneShotRouted {
        dst: u16,
        got_reply: Rc<RefCell<u32>>,
    }
    impl Process for OneShotRouted {
        fn name(&self) -> &str {
            "oneshot-routed"
        }
        fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
            ctx.subscribe(Port(31));
            ctx.send(self.dst, Port::GEOGRAPHIC, Port(31), vec![9; 16], true);
        }
        fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, packet: &NetPacket, _meta: RxMeta) {
            // The reply crossed the same path; padding accumulated.
            assert!(!packet.hop_qualities().is_empty());
            *self.got_reply.borrow_mut() += 1;
        }
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        let run = |seed: u64| {
            let mut net = Network::new(line_medium(4, 8.0, seed), seed);
            net.run_for(SimDuration::from_secs(30));
            format!("{:?}", net.counters.iter().collect::<Vec<_>>())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn process_exit_releases_port() {
        struct Quitter;
        impl Process for Quitter {
            fn name(&self) -> &str {
                "quitter"
            }
            fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
                ctx.subscribe(Port(40));
                ctx.exit();
            }
        }
        let mut net = Network::new(line_medium(1, 1.0, 3), 3);
        let pid = net.spawn_process(0, Box::new(Quitter), vec![]).unwrap();
        net.run_for(SimDuration::from_millis(10));
        assert!(!net.node(0).processes.contains_key(&pid));
        assert_eq!(net.node(0).stack.lookup(Port(40)), None);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProc {
            fired: Rc<RefCell<Vec<u32>>>,
        }
        impl Process for TimerProc {
            fn name(&self) -> &str {
                "timers"
            }
            fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
                ctx.set_timer(2, SimDuration::from_millis(20));
                ctx.set_timer(1, SimDuration::from_millis(10));
                ctx.set_timer(3, SimDuration::from_millis(30));
            }
            fn on_timer(&mut self, _ctx: &mut SysCtx<'_>, token: u32) {
                self.fired.borrow_mut().push(token);
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut net = Network::new(line_medium(1, 1.0, 3), 3);
        net.spawn_process(
            0,
            Box::new(TimerProc {
                fired: fired.clone(),
            }),
            vec![],
        )
        .unwrap();
        net.run_for(SimDuration::from_millis(100));
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn channel_isolation() {
        // Node 1 moves to another channel; node 0's beacons no longer
        // reach it.
        let mut net = Network::new(line_medium(2, 5.0, 3), 3);
        net.set_node_channel(1, Channel::new(20).unwrap());
        net.run_for(SimDuration::from_secs(10));
        assert!(net.node(1).stack.neighbors.get(0).is_none());
        assert!(net.node(0).stack.neighbors.get(1).is_none());
    }

    #[test]
    fn local_delivery_loops_back() {
        struct SelfSend {
            got: Rc<RefCell<u32>>,
        }
        impl Process for SelfSend {
            fn name(&self) -> &str {
                "selfsend"
            }
            fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
                ctx.subscribe(Port(41));
                let me = ctx.node_id;
                ctx.send(me, Port::GEOGRAPHIC, Port(41), vec![7], false);
            }
            fn on_packet(&mut self, _ctx: &mut SysCtx<'_>, packet: &NetPacket, _m: RxMeta) {
                assert_eq!(packet.payload, vec![7]);
                *self.got.borrow_mut() += 1;
            }
        }
        let got = Rc::new(RefCell::new(0));
        let mut net = Network::new(line_medium(1, 1.0, 3), 3);
        net.install_router(
            0,
            Box::new(lv_net::routing::Geographic::new(Port::GEOGRAPHIC)),
        )
        .unwrap();
        net.spawn_process(0, Box::new(SelfSend { got: got.clone() }), vec![])
            .unwrap();
        net.run_for(SimDuration::from_millis(10));
        assert_eq!(*got.borrow(), 1);
    }

    /// Step the net in 20 µs slices until `sender` has a frame on the
    /// air, panicking if it never transmits.
    fn run_until_airborne(net: &mut Network, sender: u16) {
        let deadline = net.now() + SimDuration::from_secs(1);
        loop {
            let now = net.now;
            if net
                .active
                .iter_from(0)
                .any(|(_, tx)| tx.sender == sender && tx.end > now)
            {
                return;
            }
            assert!(now < deadline, "node {sender} never started transmitting");
            net.run_until(now + SimDuration::from_micros(20));
        }
    }

    /// Satellite regression: killing a node while its frame is on the
    /// air must truncate its active-transmission entries, release the
    /// radio-busy and ack reservations, and deliver nothing from the
    /// aborted frame.
    #[test]
    fn node_down_mid_flight_leaves_no_stale_transmissions() {
        let mut net = Network::with_config(
            line_medium(2, 5.0, 7),
            7,
            NetworkConfig {
                beacons_enabled: false,
                ..NetworkConfig::default()
            },
        );
        let received = Rc::new(RefCell::new(Vec::new()));
        net.spawn_process(
            1,
            Box::new(Echo {
                port: Port(50),
                carry: Port(50),
                received: received.clone(),
            }),
            vec![],
        )
        .unwrap();
        let replies = Rc::new(RefCell::new(0));
        net.spawn_process(
            0,
            Box::new(OneShot {
                dst: 1,
                port: Port(50),
                got_reply: replies.clone(),
            }),
            vec![],
        )
        .unwrap();
        run_until_airborne(&mut net, 0);
        // Kill the sender mid-frame.
        net.schedule_dynamics(net.now(), DynamicsAction::NodeDown { id: 0 });
        net.run_for(SimDuration::from_micros(1));
        assert_eq!(net.counters.get("dyn.node_down"), 1);
        assert!(
            net.active.iter_from(0).all(|(_, tx)| tx.sender != 0),
            "dead sender must not keep active-transmission entries"
        );
        assert!(net.tx_busy_until[0] <= net.now());
        assert!(net.ack_reserved_until[0] <= net.now());
        // The aborted frame never arrives, so the echo never fires.
        net.run_for(SimDuration::from_secs(2));
        assert!(received.borrow().is_empty());
        assert_eq!(*replies.borrow(), 0);
    }

    /// Satellite regression: hard-blocking a link while a frame is in
    /// flight is decided at reception end (`assess_on` consults the
    /// override), resolves deterministically under replay, and leaves
    /// no transmission pinned in the active table.
    #[test]
    fn mid_flight_link_block_is_deterministic_and_drops_the_frame() {
        let run = |seed: u64| {
            let mut net = Network::with_config(
                line_medium(2, 5.0, seed),
                seed,
                NetworkConfig {
                    beacons_enabled: false,
                    ..NetworkConfig::default()
                },
            );
            let received = Rc::new(RefCell::new(Vec::new()));
            net.spawn_process(
                1,
                Box::new(Echo {
                    port: Port(51),
                    carry: Port(51),
                    received: received.clone(),
                }),
                vec![],
            )
            .unwrap();
            let replies = Rc::new(RefCell::new(0));
            net.spawn_process(
                0,
                Box::new(OneShot {
                    dst: 1,
                    port: Port(51),
                    got_reply: replies.clone(),
                }),
                vec![],
            )
            .unwrap();
            run_until_airborne(&mut net, 0);
            net.schedule_dynamics(
                net.now(),
                DynamicsAction::SetLinkLoss {
                    from: 0,
                    to: 1,
                    extra_loss_db: 0.0,
                    blocked: true,
                },
            );
            net.run_for(SimDuration::from_secs(2));
            // The frame completed on the sender side…
            assert!(net.counters.get("tx.data") >= 1);
            // …but the blocked receiver never decoded it.
            assert!(received.borrow().is_empty());
            assert_eq!(*replies.borrow(), 0);
            // Nothing is left pinned mid-flight.
            let now = net.now;
            assert!(net.active.iter_from(0).all(|(_, tx)| tx.end <= now));
            format!(
                "{:?} {:?} {}",
                net.counters,
                net.node_stats(),
                net.events_dispatched()
            )
        };
        assert_eq!(run(9), run(9));
    }

    /// Satellite regression: a death + cold-reboot churn cycle clears
    /// the rebooted node's volatile state, lets the peer expire the
    /// stale entry, and beacons rebuild both directions afterwards.
    #[test]
    fn churn_death_and_reboot_rebuilds_neighbor_state() {
        let mut net = Network::new(line_medium(2, 5.0, 5), 5);
        net.run_for(SimDuration::from_secs(10));
        assert!(net.node(0).stack.neighbors.get(1).is_some());
        assert!(net.node(1).stack.neighbors.get(0).is_some());
        let t0 = net.now();
        net.schedule_dynamics(
            t0 + SimDuration::from_secs(1),
            DynamicsAction::NodeDown { id: 0 },
        );
        net.schedule_dynamics(
            t0 + SimDuration::from_secs(30),
            DynamicsAction::NodeUp { id: 0 },
        );
        // While node 0 is dark its peer expires the stale entry…
        net.run_until(t0 + SimDuration::from_secs(30));
        net.run_for(SimDuration::from_millis(1));
        assert!(net.node(1).stack.neighbors.get(0).is_none());
        // …and the reboot comes back alive with an empty table.
        assert!(net.node(0).alive);
        assert!(net.node(0).stack.neighbors.get(1).is_none());
        // Beacons rebuild both directions.
        net.run_for(SimDuration::from_secs(15));
        assert!(net.node(0).stack.neighbors.get(1).is_some());
        assert!(net.node(1).stack.neighbors.get(0).is_some());
        assert_eq!(net.counters.get("dyn.node_down"), 1);
        assert_eq!(net.counters.get("dyn.node_up"), 1);
    }
    // ------------------------------------------------------------------
    // Runtime invariant auditor (crate::audit)
    // ------------------------------------------------------------------

    /// Regression for the PR 4 bug class: flash charged without a
    /// stored program file behind it. The auditor must trip on the
    /// exact imbalance that leak produced.
    #[test]
    fn auditor_trips_on_reinjected_flash_leak() {
        let mut net = Network::new(line_medium(2, 5.0, 11), 11);
        net.set_audit(true);
        net.spawn_process(
            0,
            Box::new(OneShot {
                dst: 1,
                port: Port(40),
                got_reply: Rc::new(RefCell::new(0)),
            }),
            vec![],
        )
        .unwrap();
        net.run_for(SimDuration::from_millis(50));
        assert!(net.check_invariants().is_ok(), "healthy run must be clean");
        // Re-create the leak: charge flash as if a spawn stored a new
        // program file, without actually storing one.
        net.node_mut(0)
            .resources
            .corrupt_flash_for_audit_test(ProcessImage::PING.flash_bytes);
        match net.check_invariants() {
            Err(AuditViolation::FlashImbalance {
                node,
                flash_used,
                stored_total,
            }) => {
                assert_eq!(node, 0);
                assert_eq!(flash_used, stored_total + ProcessImage::PING.flash_bytes);
            }
            other => panic!("expected FlashImbalance, got {other:?}"),
        }
        // The violation is also recorded on the audit log.
        assert!(!net.audit_violations().is_empty());
    }

    /// A RAM ledger that disagrees with the live process slots is the
    /// other half of the resource invariant.
    #[test]
    fn auditor_trips_on_ram_imbalance() {
        let mut net = Network::new(line_medium(1, 5.0, 11), 11);
        assert!(net.check_invariants().is_ok());
        // Charge the ledger with no process slot behind it: ram_used
        // now over-reports the live slots.
        net.node_mut(0)
            .resources
            .register(ProcessImage::PING)
            .unwrap();
        assert!(matches!(
            net.check_invariants(),
            Err(AuditViolation::RamImbalance { node: 0, .. })
        ));
    }

    /// Killing a node through the dynamics engine aborts its
    /// transmissions (the churn guarantee), so the auditor stays clean;
    /// flipping `alive` behind the engine's back leaves a stale entry
    /// the sweep must catch.
    #[test]
    fn auditor_catches_stale_transmissions_only_on_raw_kill() {
        let run = |raw_kill: bool| {
            let mut net = Network::with_config(
                line_medium(2, 5.0, 13),
                13,
                NetworkConfig {
                    beacons_enabled: false,
                    ..NetworkConfig::default()
                },
            );
            net.set_audit(true);
            net.spawn_process(
                0,
                Box::new(OneShot {
                    dst: 1,
                    port: Port(42),
                    got_reply: Rc::new(RefCell::new(0)),
                }),
                vec![],
            )
            .unwrap();
            run_until_airborne(&mut net, 0);
            if raw_kill {
                net.set_node_alive(0, false);
            } else {
                net.schedule_dynamics(net.now(), DynamicsAction::NodeDown { id: 0 });
                net.run_for(SimDuration::from_micros(1));
            }
            net.check_invariants()
        };
        assert!(run(false).is_ok(), "dynamics churn must leave no stale tx");
        assert!(
            matches!(
                run(true),
                Err(AuditViolation::StaleActiveTx { sender: 0, .. })
            ),
            "raw kill must trip the stale-transmission sweep"
        );
    }

    /// An event scheduled in the past is dispatched at its (earlier)
    /// timestamp; with auditing on, that time regression is recorded.
    #[test]
    fn auditor_records_time_regression() {
        let mut net = Network::with_config(
            line_medium(1, 5.0, 17),
            17,
            NetworkConfig {
                beacons_enabled: false,
                ..NetworkConfig::default()
            },
        );
        net.set_audit(true);
        net.run_for(SimDuration::from_secs(1));
        assert!(net.audit_violations().is_empty());
        // `schedule_dynamics` clamps past timestamps to now, so reach
        // under it: push an event dated t=0 straight onto the queue,
        // the way a buggy scheduler would.
        let slot = net.arena.dynamics.insert(DynamicsAction::SetChannelNoise {
            channel: Channel::default(),
            delta_db: 1.0,
        });
        net.queue.push(
            SimTime::ZERO,
            QEvent {
                kind: QKind::Dynamics,
                node: 0,
                b: slot,
                c: 0,
            },
        );
        net.run_for(SimDuration::from_millis(1));
        assert!(
            net.audit_violations()
                .iter()
                .any(|v| matches!(v, AuditViolation::TimeRegression { .. })),
            "got {:?}",
            net.audit_violations()
        );
    }

    /// Auditing is off by default and `set_audit(false)` drops the log.
    #[test]
    fn audit_disabled_by_default_and_resettable() {
        let mut net = Network::new(line_medium(1, 5.0, 19), 19);
        assert!(!net.audit_enabled());
        assert!(net.audit_violations().is_empty());
        net.set_audit(true);
        assert!(net.audit_enabled());
        net.node_mut(0).resources.corrupt_flash_for_audit_test(1);
        let _ = net.check_invariants();
        assert!(!net.audit_violations().is_empty());
        net.set_audit(false);
        assert!(net.audit_violations().is_empty());
    }
}

#[cfg(test)]
mod collision_tests {
    use super::*;
    use lv_radio::medium::LinkOverride;
    use lv_radio::propagation::PropagationConfig;
    use lv_radio::units::Position;

    /// Hidden-terminal setup: 0 and 2 both hear 1 but not each other.
    fn hidden_terminal_medium(seed: u64) -> Medium {
        let mut m = Medium::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(6.0, 0.0),
                Position::new(12.0, 0.0),
            ],
            PropagationConfig::default(),
            seed,
        );
        let blocked = LinkOverride {
            blocked: true,
            ..Default::default()
        };
        m.set_override(0, 2, blocked);
        m.set_override(2, 0, blocked);
        m
    }

    /// A process that streams frames at node 1: one every 2 ms for 200
    /// rounds — sustained contention, so overlap opportunities recur.
    struct Burster {
        rounds: u32,
    }
    impl crate::process::Process for Burster {
        fn name(&self) -> &str {
            "burster"
        }
        fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
            // Small start jitter so the two streams are offset, as real
            // independent applications would be.
            let jitter = SimDuration::from_nanos(ctx.rng.below(2_000_000));
            ctx.set_timer(1, SimDuration::from_millis(5) + jitter);
        }
        fn on_timer(&mut self, ctx: &mut SysCtx<'_>, _token: u32) {
            ctx.send(
                1,
                lv_net::packet::Port(80),
                lv_net::packet::Port(80),
                vec![0xEE; 40],
                false,
            );
            self.rounds += 1;
            if self.rounds < 200 {
                ctx.set_timer(1, SimDuration::from_millis(2));
            }
        }
    }

    /// Run the two-sender contention scenario; returns rx.corrupt.
    fn contention_losses(medium: Medium, seed: u64) -> u64 {
        let mut net = Network::with_config(
            medium,
            seed,
            NetworkConfig {
                beacons_enabled: false,
                ..NetworkConfig::default()
            },
        );
        net.spawn_process(0, Box::new(Burster { rounds: 0 }), vec![])
            .unwrap();
        net.spawn_process(2, Box::new(Burster { rounds: 0 }), vec![])
            .unwrap();
        net.run_for(SimDuration::from_secs(3));
        net.counters.get("rx.corrupt")
    }

    #[test]
    fn hidden_terminals_collide_at_the_middle() {
        // CSMA cannot save hidden terminals: 0 and 2 sense a clear
        // channel while the other is mid-frame, and their frames overlap
        // at node 1, where SINR collapses and receptions are lost.
        let mut total = 0;
        for seed in 0..5 {
            total += contention_losses(hidden_terminal_medium(seed), seed);
        }
        assert!(total > 10, "expected sustained SINR losses, got {total}");
        // Sanity: CCA alone could not have prevented overlap, because
        // neither sender can hear the other at all.
        let m = hidden_terminal_medium(0);
        assert!(!m.hears(0, 2, lv_radio::PowerLevel::MAX));
    }

    /// The same sustained contention without a hidden terminal (all
    /// mutually audible): carrier sensing defers most overlaps.
    #[test]
    fn mutually_audible_senders_mostly_avoid_collisions() {
        // Senders 4 m apart (well above the −77 dBm CCA threshold, so
        // each reliably senses the other), receiver in between.
        let audible_medium = |seed| {
            Medium::new(
                vec![
                    Position::new(0.0, 0.0),
                    Position::new(2.0, 2.0),
                    Position::new(4.0, 0.0),
                ],
                PropagationConfig::default(),
                seed,
            )
        };
        let mut audible = 0;
        let mut hidden = 0;
        for seed in 0..5 {
            audible += contention_losses(audible_medium(seed), seed);
            hidden += contention_losses(hidden_terminal_medium(seed), seed);
        }
        // Residual collisions remain (two senders drawing the same
        // backoff slot still overlap — real 802.15.4 behaviour), but
        // carrier sensing must remove a solid share of them.
        assert!(
            (audible as f64) <= hidden as f64 * 0.8,
            "carrier sensing should cut losses: audible={audible}, hidden={hidden}"
        );
    }

    /// Digest of everything a run can observably produce.
    fn run_digest(net: &Network) -> String {
        format!(
            "{:?} {:?} {}",
            net.counters,
            net.node_stats(),
            net.events_dispatched()
        )
    }

    fn contention_net(seed: u64) -> Network {
        let mut net = Network::with_config(
            hidden_terminal_medium(seed),
            seed,
            NetworkConfig {
                beacons_enabled: false,
                ..NetworkConfig::default()
            },
        );
        net.spawn_process(0, Box::new(Burster { rounds: 0 }), vec![])
            .unwrap();
        net.spawn_process(2, Box::new(Burster { rounds: 0 }), vec![])
            .unwrap();
        net
    }

    /// Satellite regression: pruning `active` on a threshold must be
    /// invisible. A run that prunes as aggressively as possible (the
    /// old per-transmission behaviour) and a run that never prunes at
    /// all produce identical counters, node stats, and event counts —
    /// i.e. the 50 ms interference-lookback grace window survives
    /// pruning at any cadence.
    #[test]
    fn prune_cadence_does_not_change_outcomes() {
        for seed in [3u64, 17] {
            let mut eager = contention_net(seed);
            let mut step = SimTime::ZERO;
            while step < SimTime::ZERO + SimDuration::from_secs(3) {
                // Re-arm constantly so every transmission prunes, as the
                // pre-threshold code did.
                eager.prune_at = 1;
                step += SimDuration::from_millis(10);
                eager.run_until(step);
            }

            let mut never = contention_net(seed);
            never.prune_at = usize::MAX;
            never.run_for(SimDuration::from_secs(3));
            assert!(
                never.active.len() > 200,
                "never-prune run must retain history"
            );

            assert_eq!(run_digest(&eager), run_digest(&never), "seed {seed}");
        }
    }

    /// Tentpole regression: the reachability cache is an optimization,
    /// not a model change. A full multi-hop run (beacons on, contention,
    /// overridden links) is bit-identical with the cache on and off.
    #[test]
    fn cached_and_brute_force_medium_run_identically() {
        let scatter = |seed: u64| {
            let mut rng = lv_sim::SimRng::from_seed_u64(seed);
            let positions: Vec<Position> = (0..12)
                .map(|_| Position::new(rng.unit() * 40.0, rng.unit() * 40.0))
                .collect();
            Medium::new(positions, PropagationConfig::default(), seed)
        };
        for seed in [5u64, 29] {
            let cached = scatter(seed);
            assert!(cached.cache_enabled());
            let mut brute = cached.clone();
            brute.set_cache_enabled(false);

            let digests: Vec<String> = [cached, brute]
                .into_iter()
                .map(|medium| {
                    let mut net = Network::new(medium, seed);
                    net.spawn_process(0, Box::new(Burster { rounds: 0 }), vec![])
                        .unwrap();
                    net.run_for(SimDuration::from_secs(5));
                    run_digest(&net)
                })
                .collect();
            assert_eq!(digests[0], digests[1], "seed {seed}");
        }
    }

    // ------------------------------------------------------------------
    // Arena recycling properties (PR 9): interleaved alloc/free of event
    // payloads and in-flight transmissions never aliases a live slot,
    // and reclamation always drains back to empty.
    // ------------------------------------------------------------------

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Interleaved insert/take on the event slab against a shadow
        /// model: an insert never lands on a slot the model still holds
        /// (no aliasing), a take returns exactly the value the model
        /// recorded for that slot, and freeing everything drains the
        /// slab to zero live entries.
        #[test]
        fn slab_recycling_never_aliases_live_slots(
            ops in proptest::collection::vec((proptest::arbitrary::any::<bool>(), 0u64..1_000_000), 1..200),
        ) {
            let mut slab: Slab<u64> = Slab::new();
            let mut model: Vec<Option<u64>> = Vec::new();
            let mut live: Vec<u32> = Vec::new();
            for (do_free, value) in ops {
                if do_free && !live.is_empty() {
                    // Deterministically pick a live slot to free.
                    let pick = (value as usize) % live.len();
                    let slot = live.swap_remove(pick);
                    let expected = model[slot as usize].take();
                    proptest::prop_assert_eq!(slab.take(slot), expected, "take must return the inserted value");
                    // A second take of the same slot must miss, not alias.
                    proptest::prop_assert_eq!(slab.take(slot), None, "double take must miss");
                } else {
                    let slot = slab.insert(value);
                    if (slot as usize) >= model.len() {
                        model.resize(slot as usize + 1, None);
                    }
                    proptest::prop_assert_eq!(
                        model[slot as usize], None,
                        "insert handed out a slot the model still holds"
                    );
                    model[slot as usize] = Some(value);
                    live.push(slot);
                }
                proptest::prop_assert_eq!(slab.live(), live.len(), "live count tracks the model");
            }
            // Drain: taking every live slot empties the slab.
            for slot in live.drain(..) {
                let expected = model[slot as usize].take();
                proptest::prop_assert_eq!(slab.take(slot), expected);
            }
            proptest::prop_assert_eq!(slab.live(), 0, "fully freed slab must be empty");
        }

        /// Interleaved push/abort/prune on the in-flight transmission
        /// table: ids never collide while live, the SoA scan rows stay
        /// in lockstep with the slots, and a prune past every end time
        /// drains the table to empty.
        #[test]
        fn tx_table_ids_never_alias(
            ops in proptest::collection::vec((0u8..8, 0u64..50), 1..150),
        ) {
            let mut table = TxTable::new();
            let mut next_id = 0u64;
            let mut clock = 0u64; // millis; starts are monotone like the kernel's
            let mut live_ids: Vec<u64> = Vec::new();
            for (op, arg) in ops {
                match op {
                    // Push: ids are handed out in order, never reused.
                    0..=4 => {
                        let start = SimTime::from_millis(clock);
                        let end = SimTime::from_millis(clock + 1 + arg % 5);
                        clock += arg % 3;
                        let sender = (arg % 6) as u16;
                        table.push(next_id, ActiveTx {
                            sender,
                            channel: Channel::DEFAULT,
                            power: lv_radio::PowerLevel::MAX,
                            start,
                            end,
                            frame: Arc::new(Frame::beacon(sender, 0, [0u8; 0])),
                            wire_len: 16,
                            aborted: false,
                        });
                        proptest::prop_assert!(
                            table.get(next_id).is_some(),
                            "freshly pushed id must be live"
                        );
                        live_ids.push(next_id);
                        next_id += 1;
                    }
                    // Abort one sender's entries (tombstones, not holes).
                    5..=6 => {
                        let sender = (arg % 6) as u16;
                        table.abort_sender(sender);
                        live_ids.retain(|&id| table.get(id).is_some());
                    }
                    // Prefix prune up to a moving horizon.
                    _ => {
                        let horizon = SimTime::from_millis(clock.saturating_sub(2));
                        table.prune(horizon);
                        live_ids.retain(|&id| table.get(id).is_some());
                    }
                }
                // Rows and slots stay in index lockstep, and the live
                // iterators agree id-for-id (no aliasing between the
                // AoS table and its SoA scan mirror).
                proptest::prop_assert_eq!(table.slots.len(), table.rows.len());
                let slot_ids: Vec<u64> = table.iter_from(0).map(|(id, _)| id).collect();
                let row_ids: Vec<u64> = table.rows_from(0).map(|(id, _)| id).collect();
                proptest::prop_assert_eq!(&slot_ids, &row_ids, "SoA mirror out of lockstep");
                proptest::prop_assert_eq!(&slot_ids, &live_ids, "live id set drifted");
            }
            // Prune past every end: the table must drain completely.
            table.prune(SimTime::from_millis(clock + 60));
            proptest::prop_assert_eq!(table.len(), 0, "prune past all ends must drain");
            proptest::prop_assert!(table.iter_from(0).next().is_none());
        }
    }
}
