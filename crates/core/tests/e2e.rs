//! End-to-end tests of the LiteView toolkit over the full simulated
//! stack: workstation → interpreter → radio → controller → command
//! processes and back.

use liteview::{install_suite, Command, CommandRequest, CommandResult, Workstation};
use lv_kernel::Network;
use lv_net::packet::Port;
use lv_net::routing::Geographic;
use lv_radio::propagation::PropagationConfig;
use lv_radio::units::Position;
use lv_radio::Medium;
use lv_sim::SimDuration;

/// A line of `n` nodes `spacing` meters apart, with geographic
/// forwarding on port 10 everywhere, controllers installed, and beacons
/// settled.
fn line_network(n: usize, spacing: f64, seed: u64) -> Network {
    let positions = (0..n)
        .map(|i| Position::new(i as f64 * spacing, 0.0))
        .collect();
    let medium = Medium::new(positions, PropagationConfig::default(), seed);
    let mut net = Network::new(medium, seed);
    for i in 0..n as u16 {
        net.install_router(i, Box::new(Geographic::new(Port::GEOGRAPHIC)))
            .unwrap();
    }
    install_suite(&mut net);
    net.run_for(SimDuration::from_secs(25));
    net
}

#[test]
fn pwd_matches_paper() {
    let mut net = line_network(2, 5.0, 1);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    assert_eq!(ws.pwd(&net).unwrap(), "/sn01/192.168.0.1");
}

#[test]
fn get_and_set_power() {
    let mut net = line_network(2, 5.0, 2);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    let exec = ws.exec(&mut net, CommandRequest::get_power()).unwrap();
    assert_eq!(exec.result, CommandResult::Power(31));
    // Fixed-window commands take the full 500 ms.
    assert_eq!(exec.response_delay, SimDuration::from_millis(500));
    let exec = ws.exec(&mut net, CommandRequest::set_power(10)).unwrap();
    assert_eq!(exec.result, CommandResult::Ok);
    assert_eq!(net.node(1).power.level(), 10);
    let exec = ws.exec(&mut net, CommandRequest::get_power()).unwrap();
    assert_eq!(exec.result, CommandResult::Power(10));
}

#[test]
fn set_power_out_of_range_rejected() {
    let mut net = line_network(2, 5.0, 2);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    let exec = ws.exec(&mut net, CommandRequest::set_power(77)).unwrap();
    assert_eq!(exec.result, CommandResult::Error(1));
    assert_eq!(net.node(1).power.level(), 31);
}

#[test]
fn get_and_set_channel() {
    let mut net = line_network(2, 5.0, 3);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    let exec = ws.exec(&mut net, CommandRequest::get_channel()).unwrap();
    assert_eq!(exec.result, CommandResult::Channel(17)); // paper default
    let exec = ws.exec(&mut net, CommandRequest::set_channel(20)).unwrap();
    assert_eq!(exec.result, CommandResult::Ok);
    assert_eq!(net.node(1).channel.number(), 20);
}

#[test]
fn one_hop_ping_rtt_magnitude() {
    let mut net = line_network(2, 5.0, 4);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(&mut net, CommandRequest::ping(1, 1, 32, None))
        .unwrap();
    let CommandResult::Ping(p) = &exec.result else {
        panic!("expected ping result, got {:?}", exec.result);
    };
    assert_eq!(p.sent, 1);
    assert_eq!(p.received, 1);
    assert_eq!(p.lost(), 0);
    assert_eq!(p.power, 31);
    assert_eq!(p.channel, 17);
    let r = &p.rounds[0];
    // The paper reports ~4.7 ms for a 32-byte one-hop probe. Our model
    // should land in the same few-millisecond regime.
    let rtt_ms = r.rtt_us as f64 / 1000.0;
    assert!(
        (2.0..12.0).contains(&rtt_ms),
        "one-hop RTT = {rtt_ms:.2} ms"
    );
    // Strong 5 m link: LQI near the top of the scale, both directions.
    assert!(r.lqi_fwd >= 100, "lqi_fwd = {}", r.lqi_fwd);
    assert!(r.lqi_bwd >= 100, "lqi_bwd = {}", r.lqi_bwd);
    assert_eq!(r.queue_fwd, 0);
}

#[test]
fn ping_multiple_rounds() {
    let mut net = line_network(2, 5.0, 5);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(&mut net, CommandRequest::ping(1, 3, 32, None))
        .unwrap();
    let CommandResult::Ping(p) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(p.sent, 3);
    assert_eq!(p.received, 3);
    assert_eq!(p.rounds.len(), 3);
}

#[test]
fn ping_dead_node_times_out_cleanly() {
    let mut net = line_network(3, 5.0, 6);
    net.set_node_alive(2, false);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(&mut net, CommandRequest::ping(2, 1, 32, None))
        .unwrap();
    let CommandResult::Ping(p) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(p.sent, 1);
    assert_eq!(p.received, 0);
    assert_eq!(p.lost(), 1);
}

#[test]
fn multi_hop_ping_collects_per_hop_padding() {
    // 4 nodes, 12 m spacing: 0 cannot reach 3 in one hop.
    let mut net = line_network(4, 12.0, 7);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(
            &mut net,
            CommandRequest::ping(3, 1, 16, Some(Port::GEOGRAPHIC)),
        )
        .unwrap();
    let CommandResult::Ping(p) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(p.received, 1, "multi-hop ping reply missing");
    let r = &p.rounds[0];
    // Forward path 0→…→3 crosses ≥ 2 links; every hop contributed a
    // padding entry, and so did the return path.
    assert!(r.fwd_hops.len() >= 2, "fwd hops: {:?}", r.fwd_hops);
    assert!(r.bwd_hops.len() >= 2, "bwd hops: {:?}", r.bwd_hops);
    for h in r.fwd_hops.iter().chain(&r.bwd_hops) {
        assert!(h.lqi >= 50 && h.lqi <= 110);
    }
}

#[test]
fn traceroute_reports_every_hop() {
    let mut net = line_network(4, 12.0, 8);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(
            &mut net,
            CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    let CommandResult::Traceroute(t) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(t.protocol.as_deref(), Some("geographic forwarding"));
    assert!(t.reached, "destination not reached: {t:?}");
    // A 36 m line at 12 m spacing: typically 3 hops.
    assert!(
        (2..=3).contains(&t.hops.len()),
        "unexpected hop count: {}",
        t.hops.len()
    );
    // Hop indices increase, each hop has plausible link data, and
    // arrivals are monotone (later hops report later).
    let mut prev_arrival = SimDuration::ZERO;
    for (i, hop) in t.hops.iter().enumerate() {
        assert_eq!(hop.record.hop_index as usize, i + 1);
        assert!(!hop.record.no_route && !hop.record.probe_lost);
        assert!(hop.record.lqi_fwd >= 50);
        assert!(hop.arrival >= prev_arrival, "arrivals not monotone");
        prev_arrival = hop.arrival;
    }
    // Last hop's far end is the destination.
    assert_eq!(t.hops.last().unwrap().record.far, 3);
}

#[test]
fn traceroute_without_router_errors() {
    let positions = (0..2).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect();
    let medium = Medium::new(positions, PropagationConfig::default(), 9);
    let mut net = Network::new(medium, 9);
    install_suite(&mut net); // no routers installed
    net.run_for(SimDuration::from_secs(10));
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(
            &mut net,
            Command::Traceroute {
                dst: 1,
                length: 32,
                port: Port::GEOGRAPHIC,
            },
        )
        .unwrap();
    assert_eq!(exec.result, CommandResult::Error(2));
}

#[test]
fn neighbor_list_round_trip() {
    let mut net = line_network(3, 5.0, 10);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap(); // middle node
    let exec = ws
        .exec(&mut net, CommandRequest::neighbor_list(true))
        .unwrap();
    let CommandResult::Neighbors(rows) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    // The middle node hears both ends.
    assert_eq!(rows.len(), 2, "rows: {rows:?}");
    let ids: Vec<u16> = rows.iter().map(|r| r.id).collect();
    assert!(ids.contains(&0) && ids.contains(&2));
    for r in rows {
        assert!(r.inbound_q > 200, "healthy link expected: {r:?}");
        assert!(!r.blacklisted);
        assert!(!r.name.is_empty());
    }
}

#[test]
fn blacklist_changes_routing() {
    // Line 0-1-2-3; traceroute 0→3 goes via 1 then 2. Blacklist 1 at
    // node 0 and the route must change (or break) — "temporarily
    // modifies the behavior of communication protocols".
    let mut net = line_network(4, 12.0, 11);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let before = ws
        .exec(
            &mut net,
            CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    let CommandResult::Traceroute(t) = &before.result else {
        panic!("{:?}", before.result)
    };
    let first_hop_before = t.hops[0].record.far;
    assert!(!t.hops[0].record.no_route);
    let exec = ws
        .exec(&mut net, CommandRequest::blacklist(first_hop_before, true))
        .unwrap();
    assert_eq!(exec.result, CommandResult::Ok);
    assert!(
        net.node(0)
            .stack
            .neighbors
            .get(first_hop_before)
            .unwrap()
            .blacklisted
    );
    let after = ws
        .exec(
            &mut net,
            CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    if let CommandResult::Traceroute(t) = &after.result {
        if let Some(h) = t.hops.first() {
            assert_ne!(
                h.record.far, first_hop_before,
                "blacklisted node still used"
            );
        }
    }
    // Un-blacklist restores the original route.
    ws.exec(&mut net, CommandRequest::blacklist(first_hop_before, false))
        .unwrap();
    let restored = ws
        .exec(
            &mut net,
            CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    let CommandResult::Traceroute(t) = &restored.result else {
        panic!("{:?}", restored.result)
    };
    assert_eq!(t.hops[0].record.far, first_hop_before);
}

#[test]
fn blacklist_unknown_neighbor_errors() {
    let mut net = line_network(2, 5.0, 12);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(&mut net, CommandRequest::blacklist(42, true))
        .unwrap();
    assert_eq!(exec.result, CommandResult::Error(3));
}

#[test]
fn update_beacon_reconfigures_node() {
    let mut net = line_network(2, 5.0, 13);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    let exec = ws
        .exec(
            &mut net,
            CommandRequest::update_beacon(SimDuration::from_millis(750)),
        )
        .unwrap();
    assert_eq!(exec.result, CommandResult::Ok);
    assert_eq!(
        net.node(1).stack.config().beacon_period,
        SimDuration::from_millis(750)
    );
}

#[test]
fn status_snapshot() {
    let mut net = line_network(3, 5.0, 14);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    let exec = ws.exec(&mut net, Command::Status).unwrap();
    let CommandResult::Status {
        power,
        channel,
        neighbors,
        ..
    } = exec.result
    else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(power, 31);
    assert_eq!(channel, 17);
    assert_eq!(neighbors, 2);
}

#[test]
fn transcript_has_paper_shape() {
    let mut net = line_network(2, 5.0, 15);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    ws.exec(&mut net, CommandRequest::ping(1, 1, 32, None))
        .unwrap();
    let t = ws.transcript().join("\n");
    assert!(
        t.contains("Pinging 192.168.0.2 with 1 packets with 32 bytes:"),
        "transcript:\n{t}"
    );
    assert!(t.contains("RTT = "), "transcript:\n{t}");
    assert!(t.contains("LQI = "), "transcript:\n{t}");
    assert!(t.contains("Power = 31, Channel = 17"), "transcript:\n{t}");
    assert!(t.contains("Packets = 1 Received = 1 Lost = 0"), "{t}");
}

#[test]
fn one_hop_ping_costs_two_data_packets() {
    // "For one hop protocols such as ping, the overhead is sufficiently
    // small, usually only two packets."
    let mut net = line_network(2, 5.0, 16);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    // Quiesce management traffic, then count only the probe exchange by
    // pinging from the node the workstation bridges to (command + reply
    // are separate, counted below).
    let before = net.counters.get("tx.data");
    ws.exec(&mut net, CommandRequest::ping(1, 1, 32, None))
        .unwrap();
    let after = net.counters.get("tx.data");
    // Total data packets: command request is local (bridge == source ⇒
    // no radio), probe + probe-reply on the air, summary is local too.
    assert_eq!(after - before, 2, "counted {} packets", after - before);
}

#[test]
fn determinism_across_runs() {
    let run = |seed: u64| {
        let mut net = line_network(3, 10.0, seed);
        let mut ws = Workstation::install(&mut net, 0);
        ws.cd(&net, "192.168.0.1").unwrap();
        let exec = ws
            .exec(
                &mut net,
                CommandRequest::ping(2, 2, 32, Some(Port::GEOGRAPHIC)),
            )
            .unwrap();
        format!("{:?}", exec.result)
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn event_log_round_trip() {
    let mut net = line_network(2, 5.0, 17);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    // Logging starts disabled: reading yields an empty log.
    let exec = ws.exec(&mut net, CommandRequest::read_log(16)).unwrap();
    assert_eq!(exec.result, CommandResult::Log(vec![]));
    // Enable logging, then issue a few commands worth logging.
    let exec = ws
        .exec(&mut net, CommandRequest::set_logging(true))
        .unwrap();
    assert_eq!(exec.result, CommandResult::Ok);
    ws.exec(&mut net, CommandRequest::get_power()).unwrap();
    ws.exec(&mut net, CommandRequest::blacklist(0, true))
        .unwrap();
    ws.exec(&mut net, CommandRequest::blacklist(0, false))
        .unwrap();
    // Fetch the log: the management requests themselves were logged.
    let exec = ws.exec(&mut net, CommandRequest::read_log(16)).unwrap();
    let CommandResult::Log(rows) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert!(rows.len() >= 3, "rows: {rows:?}");
    assert!(rows.iter().all(|r| r.code == "mgmt"), "rows: {rows:?}");
    // Timestamps are monotone.
    for w in rows.windows(2) {
        assert!(w[1].time_ms >= w[0].time_ms);
    }
    // Disable again: no further entries accumulate.
    ws.exec(&mut net, CommandRequest::set_logging(false))
        .unwrap();
    let before = rows.len();
    ws.exec(&mut net, CommandRequest::get_power()).unwrap();
    let exec = ws.exec(&mut net, CommandRequest::read_log(32)).unwrap();
    let CommandResult::Log(rows) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    // Two extra entries at most — the first ReadLog and the
    // SetLogging(false) requests themselves (both logged while logging
    // was still on; a request's log effect lands after the reply
    // snapshot) — and nothing for commands issued after the disable.
    assert!(rows.len() <= before + 2, "{} vs {}", rows.len(), before);
    assert!(rows.iter().any(|r| r.detail.contains("SetLogging")));
}

#[test]
fn every_channel_works() {
    // "the CC2420 radio chip … supports 16 channels": walk both nodes
    // across all of them, pinging on each.
    let mut net = line_network(2, 5.0, 18);
    let mut ws = Workstation::install(&mut net, 0);
    for ch in 11..=26u8 {
        // Retune the far node via management, then the bridge locally
        // (the bridge mote's radio is under the operator's hand).
        ws.cd(&net, "192.168.0.2").unwrap();
        let exec = ws.exec(&mut net, CommandRequest::set_channel(ch)).unwrap();
        assert_eq!(exec.result, CommandResult::Ok, "set channel {ch}");
        net.set_node_channel(0, lv_radio::Channel::new(ch).unwrap());
        ws.cd(&net, "192.168.0.1").unwrap();
        let exec = ws
            .exec(&mut net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
        let CommandResult::Ping(p) = &exec.result else {
            panic!("channel {ch}: {:?}", exec.result)
        };
        assert_eq!(p.received, 1, "ping failed on channel {ch}");
        assert_eq!(p.channel, ch);
    }
}

#[test]
fn sequential_commands_do_not_interfere() {
    // The interpreter runs one command at a time; a burst of different
    // commands must each get their own correct answer (no stale replies
    // credited to the wrong request id).
    let mut net = line_network(3, 5.0, 19);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.2").unwrap();
    for round in 0..3 {
        let exec = ws.exec(&mut net, CommandRequest::get_power()).unwrap();
        assert_eq!(exec.result, CommandResult::Power(31), "round {round}");
        let exec = ws.exec(&mut net, CommandRequest::get_channel()).unwrap();
        assert_eq!(exec.result, CommandResult::Channel(17), "round {round}");
        let exec = ws
            .exec(&mut net, CommandRequest::neighbor_list(false))
            .unwrap();
        let CommandResult::Neighbors(rows) = &exec.result else {
            panic!("round {round}: {:?}", exec.result)
        };
        assert_eq!(rows.len(), 2, "round {round}");
        let exec = ws
            .exec(&mut net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
        assert!(
            matches!(&exec.result, CommandResult::Ping(p) if p.received == 1),
            "round {round}: {:?}",
            exec.result
        );
    }
}

#[test]
fn multi_hop_ping_over_flooding() {
    // Protocol independence, the other way: the same ping command rides
    // the flooding protocol just by naming its port.
    let positions = (0..4)
        .map(|i| Position::new(i as f64 * 12.0, 0.0))
        .collect();
    let medium = Medium::new(positions, PropagationConfig::default(), 20);
    let mut net = Network::new(medium, 20);
    for i in 0..4u16 {
        net.install_router(i, Box::new(lv_net::routing::Flooding::new(Port::FLOODING)))
            .unwrap();
    }
    install_suite(&mut net);
    net.run_for(SimDuration::from_secs(20));
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(
            &mut net,
            CommandRequest::ping(3, 1, 16, Some(Port::FLOODING)),
        )
        .unwrap();
    let CommandResult::Ping(p) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(p.received, 1, "flooded ping must come home");
    // Flooding delivers; the padding recorded the hops it took.
    assert!(!p.rounds[0].fwd_hops.is_empty());
}

#[test]
fn loaded_link_reports_nonzero_queue() {
    // The ping report's Queue field must reflect real transmit-queue
    // occupancy when the responder is busy forwarding.
    use lv_kernel::{Process, SysCtx};
    struct Chatter;
    impl Process for Chatter {
        fn name(&self) -> &str {
            "chatter"
        }
        fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
            ctx.set_timer(1, SimDuration::from_millis(1));
        }
        fn on_timer(&mut self, ctx: &mut SysCtx<'_>, _t: u32) {
            // ~65% airtime duty: the TX queue is usually occupied but
            // never saturated, so the node can still answer probes.
            for _ in 0..2 {
                ctx.send(2, Port(90), Port(90), vec![0; 50], false);
            }
            ctx.set_timer(1, SimDuration::from_millis(8));
        }
    }
    let mut net = line_network(3, 5.0, 21);
    net.spawn_process(1, Box::new(Chatter), vec![]).unwrap();
    net.run_for(SimDuration::from_millis(50));
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    // Ping the busy middle node a few times; at least one report should
    // catch its queue non-empty.
    let mut saw_queue = false;
    for _ in 0..10 {
        let exec = ws
            .exec(&mut net, CommandRequest::ping(1, 1, 32, None))
            .unwrap();
        if let CommandResult::Ping(p) = &exec.result {
            if p.rounds.first().is_some_and(|r| r.queue_fwd > 0) {
                saw_queue = true;
                break;
            }
        }
    }
    assert!(saw_queue, "busy responder never reported a non-empty queue");
}

#[test]
fn group_survey_hears_every_node_in_range() {
    // A star: bridge in the middle, five nodes around it. One broadcast
    // query; every controller answers after its own random backoff,
    // inside the 500 ms window — the paper's group-operation design.
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(5.0, 0.0),
        Position::new(-5.0, 0.0),
        Position::new(0.0, 5.0),
        Position::new(0.0, -5.0),
        Position::new(4.0, 4.0),
    ];
    let medium = Medium::new(positions, PropagationConfig::default(), 22);
    let mut net = Network::new(medium, 22);
    install_suite(&mut net);
    net.run_for(SimDuration::from_secs(10));
    let mut ws = Workstation::install(&mut net, 0);
    let exec = ws.exec(&mut net, CommandRequest::survey()).unwrap();
    let CommandResult::GroupStatus(rows) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    // All five neighbors (not the bridge itself — a node cannot hear
    // its own broadcast).
    assert_eq!(rows.len(), 5, "rows: {rows:?}");
    let ids: Vec<u16> = rows.iter().map(|r| r.node).collect();
    assert_eq!(ids, vec![1, 2, 3, 4, 5], "sorted by node id");
    for r in rows {
        assert_eq!(r.power, 31);
        assert_eq!(r.channel, 17);
        assert!(r.neighbors >= 1);
    }
    // The fixed window applies to group operations too.
    assert_eq!(exec.response_delay, SimDuration::from_millis(500));
}

#[test]
fn group_survey_skips_dead_nodes() {
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(5.0, 0.0),
        Position::new(-5.0, 0.0),
    ];
    let medium = Medium::new(positions, PropagationConfig::default(), 23);
    let mut net = Network::new(medium, 23);
    install_suite(&mut net);
    net.run_for(SimDuration::from_secs(5));
    net.set_node_alive(2, false);
    let mut ws = Workstation::install(&mut net, 0);
    let exec = ws.exec(&mut net, CommandRequest::survey()).unwrap();
    let CommandResult::GroupStatus(rows) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].node, 1);
}

#[test]
fn exec_rejects_bad_targets_up_front() {
    use liteview::{ExecError, ExecTarget};
    let mut net = line_network(2, 5.0, 31);
    let mut ws = Workstation::install(&mut net, 0);

    // No `cd` yet: a cwd-targeted request must fail without touching
    // the network.
    let before = net.now();
    assert!(matches!(
        ws.exec(&mut net, CommandRequest::get_power()),
        Err(ExecError::NoCwd)
    ));
    assert_eq!(net.now(), before, "failed exec must not advance time");

    // Unknown explicit node ids are rejected (the historical `exec_on`
    // wrapper silently accepted them).
    assert!(matches!(
        ws.exec(&mut net, CommandRequest::get_power().on(99)),
        Err(ExecError::UnknownNode(99))
    ));
    assert!(matches!(
        ws.exec(&mut net, CommandRequest::new(Command::GetPower).on(99)),
        Err(ExecError::UnknownNode(99))
    ));

    // Unknown names still surface through `cd`.
    assert!(matches!(
        ws.cd(&net, "10.0.0.1"),
        Err(ExecError::NoSuchNode(_))
    ));

    // Builder: target defaults to cwd and is re-aimable.
    let req = CommandRequest::get_power();
    assert_eq!(req.target(), ExecTarget::Cwd);
    assert_eq!(req.clone().on(1).target(), ExecTarget::Node(1));
    assert_eq!(req.clone().group().target(), ExecTarget::Group);
    assert_eq!(req.on(1).at_cwd().target(), ExecTarget::Cwd);
    assert_eq!(
        CommandRequest::survey().target(),
        ExecTarget::Group,
        "survey is group-targeted by construction"
    );
}

#[test]
fn traceroute_execution_carries_flight_recorder_evidence() {
    // The tentpole acceptance case: a multi-hop traceroute's Execution
    // must arrive with a causal event timeline and per-hop counter
    // deltas, with no explicit trace setup (Workstation::install arms
    // the flight recorder by itself).
    let mut net = line_network(4, 12.0, 40);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    let exec = ws
        .exec(
            &mut net,
            CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
        )
        .unwrap();
    let CommandResult::Traceroute(t) = &exec.result else {
        panic!("{:?}", exec.result)
    };
    assert!(t.reached);

    // Timeline: every event happened inside the command window and the
    // probe's forwarding left net.forward / net.deliver breadcrumbs.
    assert!(!exec.timeline.is_empty(), "timeline empty");
    for ev in &exec.timeline {
        assert!(ev.at >= exec.issued_at, "event predates command: {ev}");
    }
    let msgs = exec
        .timeline
        .iter()
        .map(|e| e.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("net.forward"), "no forward events:\n{msgs}");
    assert!(msgs.contains("net.deliver"), "no deliver events:\n{msgs}");

    // Global counter delta: the probe cost real packets.
    assert!(
        exec.counter_delta.get("tx.data") > 0,
        "{:?}",
        exec.counter_delta
    );

    // Per-hop profile: every node on the 0→1→2→3 line moved its own
    // counters during the window, and the relays show forwarding work.
    let touched: Vec<u16> = exec.node_deltas.iter().map(|d| d.node).collect();
    for id in 0..4u16 {
        assert!(touched.contains(&id), "node {id} missing from {touched:?}");
    }
    let relays: Vec<u16> = exec
        .node_deltas
        .iter()
        .filter(|d| d.counters.get("net.forward") > 0)
        .map(|d| d.node)
        .collect();
    assert!(!relays.is_empty(), "no relay recorded net.forward");
    assert!(
        relays.iter().all(|r| (1..=2).contains(r)),
        "forwarding attributed to non-relays: {relays:?}"
    );
}

#[test]
fn observability_report_round_trips_through_json() {
    use liteview::ObservabilityReport;
    let mut net = line_network(4, 12.0, 41);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();
    ws.exec(&mut net, CommandRequest::ping(1, 1, 32, None))
        .unwrap();
    ws.exec(
        &mut net,
        CommandRequest::traceroute(3, 32, Port::GEOGRAPHIC),
    )
    .unwrap();

    let report = ws.report(&net);
    assert_eq!(report.node_count, 4);
    assert_eq!(report.nodes.len(), 4);
    assert_eq!(report.executions.len(), 2);
    assert!(report.executions[0].command.starts_with("ping"));
    assert!(report.executions[1].command.starts_with("traceroute"));
    assert!(!report.executions[1].timeline.is_empty());
    assert!(report.global.get("tx.data") > 0);
    assert!(report.nodes.iter().all(|n| n.alive));

    let json = report.to_json();
    let back = ObservabilityReport::from_json(&json).expect("report parses back");
    assert_eq!(back.node_count, report.node_count);
    assert_eq!(back.captured_at, report.captured_at);
    assert_eq!(back.global, report.global);
    assert_eq!(back.executions.len(), report.executions.len());
    assert_eq!(
        back.executions[1].node_deltas, report.executions[1].node_deltas,
        "per-hop deltas must survive the JSON round trip"
    );
}

#[test]
fn exec_accepts_bare_commands_and_aimed_requests() {
    let mut net = line_network(2, 5.0, 32);
    let mut ws = Workstation::install(&mut net, 0);
    ws.cd(&net, "192.168.0.1").unwrap();

    // A bare Command runs on the cwd node.
    let exec = ws.exec(&mut net, Command::GetPower).unwrap();
    assert_eq!(exec.target, 0);
    assert!(matches!(exec.result, CommandResult::Power(_)));

    // The same request aimed at an explicit node runs there instead,
    // without moving the cwd.
    let exec = ws
        .exec(&mut net, CommandRequest::get_power().on(1))
        .unwrap();
    assert_eq!(exec.target, 1);
    assert!(matches!(exec.result, CommandResult::Power(_)));
    assert_eq!(ws.cwd(), Some(0));
}
