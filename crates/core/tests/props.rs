//! Property tests for LiteView's wire formats and the reliable batch
//! protocol.

use liteview::protocol::{BatchReceiver, BatchSender, SendStep};
use liteview::wire::{
    BatchMsg, HopRecord, MgmtCommand, MgmtReply, MgmtRequest, MgmtResponse, PingProbe, PingReply,
    PingRound, PingSummary, TrProbe, TrProbeReply, TrReport, TrTask,
};
use lv_net::packet::PAYLOAD_AREA;
use lv_net::padding::HopQuality;
use proptest::prelude::*;

fn arb_cmd() -> impl Strategy<Value = MgmtCommand> {
    prop_oneof![
        Just(MgmtCommand::GetStatus),
        Just(MgmtCommand::GetPower),
        any::<u8>().prop_map(MgmtCommand::SetPower),
        Just(MgmtCommand::GetChannel),
        any::<u8>().prop_map(MgmtCommand::SetChannel),
        any::<bool>().prop_map(|with_quality| MgmtCommand::NeighborList { with_quality }),
        (any::<u16>(), any::<bool>()).prop_map(|(id, add)| MgmtCommand::Blacklist { id, add }),
        any::<u32>().prop_map(|period_ms| MgmtCommand::UpdateBeacon { period_ms }),
        any::<bool>().prop_map(MgmtCommand::SetLogging),
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(dst, rounds, length, port)| MgmtCommand::Ping {
                dst,
                rounds,
                length,
                port
            }
        ),
        (any::<u16>(), any::<u8>(), any::<u8>())
            .prop_map(|(dst, length, port)| { MgmtCommand::Traceroute { dst, length, port } }),
        any::<u8>().prop_map(|max| MgmtCommand::ReadLog { max }),
    ]
}

fn arb_hop_record() -> impl Strategy<Value = HopRecord> {
    (
        any::<u8>(),
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
        (any::<u8>(), any::<u8>()),
        (any::<i8>(), any::<i8>()),
        (any::<u8>(), any::<u8>()),
    )
        .prop_map(
            |(hop_index, far, reached_dst, no_route, probe_lost, rtt_us, lqi, rssi, queue)| {
                HopRecord {
                    hop_index,
                    far,
                    reached_dst,
                    no_route,
                    probe_lost,
                    rtt_us,
                    lqi_fwd: lqi.0,
                    lqi_bwd: lqi.1,
                    rssi_fwd: rssi.0,
                    rssi_bwd: rssi.1,
                    queue_fwd: queue.0,
                    queue_bwd: queue.1,
                }
            },
        )
}

fn arb_hops(max: usize) -> impl Strategy<Value = Vec<HopQuality>> {
    proptest::collection::vec(
        (any::<u8>(), any::<i8>()).prop_map(|(lqi, rssi)| HopQuality { lqi, rssi }),
        0..=max,
    )
}

proptest! {
    /// Every management request round-trips for every command shape.
    #[test]
    fn mgmt_request_round_trip(
        req_id in any::<u8>(),
        reply_node in any::<u16>(),
        reply_port in any::<u8>(),
        cmd in arb_cmd(),
    ) {
        let req = MgmtRequest { req_id, reply_node, reply_port, cmd };
        let bytes = req.encode();
        prop_assert!(bytes.len() <= PAYLOAD_AREA);
        prop_assert_eq!(MgmtRequest::decode(&bytes).expect("round trip"), req);
    }

    /// Traceroute hop responses round-trip for arbitrary records.
    #[test]
    fn hop_record_round_trip(req_id in any::<u8>(), from in any::<u16>(), record in arb_hop_record()) {
        let resp = MgmtResponse { req_id, from, reply: MgmtReply::TracerouteHop(record) };
        let bytes = resp.encode();
        prop_assert!(bytes.len() <= PAYLOAD_AREA);
        prop_assert_eq!(MgmtResponse::decode(&bytes).expect("round trip"), resp);
    }

    /// Probe and reply formats round-trip; probes honor the requested
    /// length (clamped to the payload area).
    #[test]
    fn probe_round_trips(
        session in any::<u16>(),
        seq in any::<u8>(),
        reply_port in any::<u8>(),
        length in 0usize..=120,
        hops in arb_hops(20),
        lqi in any::<u8>(),
        rssi in any::<i8>(),
        queue in any::<u8>(),
    ) {
        let probe = PingProbe { session, seq, reply_port };
        let bytes = probe.encode(length);
        prop_assert!(bytes.len() >= 5 && bytes.len() <= PAYLOAD_AREA);
        prop_assert_eq!(PingProbe::decode(&bytes).expect("probe"), probe);

        let reply = PingReply { session, seq, lqi_in: lqi, rssi_in: rssi, queue, fwd_hops: hops };
        prop_assert_eq!(PingReply::decode(&reply.encode()).expect("reply"), reply);

        let tr = TrProbe { session, seq, reply_port };
        prop_assert_eq!(TrProbe::decode(&tr.encode(length)).expect("tr probe"), tr);
        let trr = TrProbeReply { session, seq, lqi_in: lqi, rssi_in: rssi, queue };
        prop_assert_eq!(TrProbeReply::decode(&trr.encode()).expect("tr reply"), trr);
    }

    /// Task and report messages round-trip.
    #[test]
    fn task_report_round_trips(
        session in any::<u16>(),
        origin in any::<u16>(),
        origin_port in any::<u8>(),
        dst in any::<u16>(),
        carry_port in any::<u8>(),
        hop_index in any::<u8>(),
        length in any::<u8>(),
        record in arb_hop_record(),
    ) {
        let task = TrTask { session, origin, origin_port, dst, carry_port, hop_index, length };
        prop_assert_eq!(TrTask::decode(&task.encode()).expect("task"), task);
        let report = TrReport { session, record };
        prop_assert_eq!(TrReport::decode(&report.encode()).expect("report"), report);
    }

    /// `fit_to_wire` always produces a summary whose framed response
    /// fits the 64-byte payload area, for ANY pile of rounds.
    #[test]
    fn ping_summary_always_fits(
        target in any::<u16>(),
        rounds in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), arb_hops(30), arb_hops(30)),
            0..6
        ),
    ) {
        let mut summary = PingSummary {
            target,
            sent: rounds.len() as u8,
            received: rounds.len() as u8,
            power: 31,
            channel: 17,
            rounds: rounds
                .into_iter()
                .map(|(seq, rtt_us, fwd, bwd)| PingRound {
                    seq,
                    rtt_us,
                    lqi_fwd: 100,
                    lqi_bwd: 100,
                    rssi_fwd: 0,
                    rssi_bwd: 0,
                    queue_fwd: 0,
                    queue_bwd: 0,
                    fwd_hops: fwd,
                    bwd_hops: bwd,
                })
                .collect(),
        };
        summary.fit_to_wire();
        let resp = MgmtResponse {
            req_id: 1,
            from: 2,
            reply: MgmtReply::PingSummary(summary),
        };
        let bytes = resp.encode();
        prop_assert!(bytes.len() <= PAYLOAD_AREA, "encoded {} bytes", bytes.len());
        prop_assert!(MgmtResponse::decode(&bytes).is_ok());
    }

    /// Decoders never panic on arbitrary bytes.
    #[test]
    fn decoders_total(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = MgmtRequest::decode(&bytes);
        let _ = MgmtResponse::decode(&bytes);
        let _ = BatchMsg::decode(&bytes);
        let _ = PingProbe::decode(&bytes);
        let _ = PingReply::decode(&bytes);
        let _ = TrProbe::decode(&bytes);
        let _ = TrProbeReply::decode(&bytes);
        let _ = TrTask::decode(&bytes);
        let _ = TrReport::decode(&bytes);
    }

    /// AIMD invariants of the adaptive batch size, under ANY loss
    /// pattern: a clean ack grows the batch by exactly 1 (capped at
    /// MAX_BATCH), an ack reporting losses halves it (floor 1), a
    /// timeout collapses it to 1, it never leaves [1, MAX_BATCH], and
    /// after loss shrinks it a later clean ack re-probes upward.
    #[test]
    fn batch_size_follows_aimd_under_loss(
        n_chunks in 2usize..24,
        loss_pattern in proptest::collection::vec(any::<bool>(), 0..400),
    ) {
        use liteview::protocol::MAX_BATCH;
        let chunks: Vec<Vec<u8>> = (0..n_chunks).map(|i| vec![i as u8; 4]).collect();
        let mut tx = BatchSender::new(5, chunks.clone());
        let mut rx = BatchReceiver::new(5);
        let mut losses = loss_pattern.into_iter().chain(std::iter::repeat(false));
        let mut steps = tx.start();
        let mut shrank = false;
        let mut regrew_after_shrink = false;
        let mut guard = 0;
        while !tx.is_finished() {
            guard += 1;
            prop_assert!(guard < 2000, "did not terminate");
            let before = tx.batch_size();
            prop_assert!((1..=MAX_BATCH).contains(&before), "batch {before} out of range");
            let mut ack = None;
            for step in &steps {
                if let SendStep::Transmit(BatchMsg::Data { req_id, seq, total, ack_after, payload }) = step {
                    if losses.next().unwrap() {
                        continue;
                    }
                    if let Some(a) = rx.on_data(*req_id, *seq, *total, *ack_after, payload.clone()) {
                        ack = Some(a);
                    }
                }
            }
            steps = match ack {
                Some(BatchMsg::Ack { missing, .. }) if !losses.next().unwrap() => {
                    let clean = missing.is_empty();
                    let out = tx.on_ack(&missing);
                    if !tx.is_finished() {
                        if clean {
                            prop_assert_eq!(tx.batch_size(), (before + 1).min(MAX_BATCH));
                            if shrank && tx.batch_size() > before {
                                regrew_after_shrink = true;
                            }
                        } else {
                            prop_assert_eq!(tx.batch_size(), (before / 2).max(1));
                            shrank = true;
                        }
                    }
                    out
                }
                _ => {
                    let out = tx.on_timeout();
                    if !tx.is_finished() {
                        prop_assert_eq!(tx.batch_size(), 1);
                        shrank = true;
                    }
                    out
                }
            };
        }
        // Terminal step is Done or Abort, never both, never neither.
        let dones = steps.iter().filter(|s| matches!(s, SendStep::Done)).count();
        let aborts = steps.iter().filter(|s| matches!(s, SendStep::Abort)).count();
        prop_assert_eq!(dones + aborts, 1, "terminal steps: {:?}", steps);
        if dones == 1 {
            prop_assert_eq!(rx.assemble().unwrap(), chunks);
        }
        // Not every random loss pattern leaves room to observe the
        // re-probe (the transfer may end first); the deterministic
        // `batch_reprobes_upward_after_loss` case pins that behaviour.
        let _ = regrew_after_shrink;
    }

    /// After loss shrinks the batch, sustained clean acks re-probe the
    /// size back up to the MAX_BATCH ceiling (the paper's "dynamically
    /// adjusted based on link quality", both directions).
    #[test]
    fn batch_reprobes_upward_after_loss(n_chunks in 12usize..24) {
        use liteview::protocol::MAX_BATCH;
        let chunks: Vec<Vec<u8>> = (0..n_chunks).map(|i| vec![i as u8; 4]).collect();
        let mut tx = BatchSender::new(6, chunks);
        tx.start();
        // One lossy ack: batch halves from its opening size of 2.
        tx.on_ack(&[0]);
        prop_assert_eq!(tx.batch_size(), 1);
        // Clean acks from here: size must climb one step per ack until
        // it pins at the ceiling.
        let mut expected = 1usize;
        while !tx.is_finished() {
            let steps = tx.on_ack(&[]);
            expected = (expected + 1).min(MAX_BATCH);
            if tx.is_finished() {
                let done = steps.iter().any(|s| matches!(s, SendStep::Done));
                prop_assert!(done, "finished without Done: {:?}", steps);
                break;
            }
            prop_assert_eq!(tx.batch_size(), expected);
        }
        prop_assert_eq!(tx.batch_size(), MAX_BATCH);
    }

    /// The batch protocol delivers every chunk intact under ANY bounded
    /// loss pattern (losses drawn from the proptest input, applied to
    /// both data frames and acks).
    #[test]
    fn batch_transfer_complete_under_any_loss(
        n_chunks in 1usize..20,
        loss_pattern in proptest::collection::vec(any::<bool>(), 0..400),
    ) {
        let chunks: Vec<Vec<u8>> = (0..n_chunks).map(|i| vec![i as u8; 4]).collect();
        let mut tx = BatchSender::new(9, chunks.clone());
        let mut rx = BatchReceiver::new(9);
        let mut losses = loss_pattern.into_iter().chain(std::iter::repeat(false));
        let mut steps = tx.start();
        let mut guard = 0;
        while !tx.is_finished() {
            guard += 1;
            prop_assert!(guard < 2000, "did not terminate");
            let mut ack = None;
            for step in &steps {
                if let SendStep::Transmit(BatchMsg::Data { req_id, seq, total, ack_after, payload }) = step {
                    if losses.next().unwrap() {
                        continue;
                    }
                    if let Some(a) = rx.on_data(*req_id, *seq, *total, *ack_after, payload.clone()) {
                        ack = Some(a);
                    }
                }
            }
            steps = match ack {
                Some(BatchMsg::Ack { missing, .. }) if !losses.next().unwrap() => tx.on_ack(&missing),
                _ => tx.on_timeout(),
            };
        }
        // Either aborted (allowed only under sustained loss) or the
        // receiver holds every chunk, byte-identical.
        if rx.is_complete() {
            prop_assert_eq!(rx.assemble().unwrap(), chunks);
        }
    }
}

proptest! {
    /// The shell parser is total: arbitrary input never panics, and for
    /// the grammar's own verbs, round-trippable fields are preserved.
    #[test]
    fn shell_parser_total(line in ".{0,120}") {
        let _ = liteview::shell::parse_line(&line);
    }

    /// `ping` lines parse their options independent of order.
    #[test]
    fn shell_ping_option_order(
        rounds in 1u8..20,
        length in 5u8..64,
        port in 1u8..30,
        shuffle in any::<bool>(),
    ) {
        use liteview::shell::{parse_line, ShellCommand, ShellInput};
        let opts = if shuffle {
            format!("port={port} length={length} round={rounds}")
        } else {
            format!("round={rounds} length={length} port={port}")
        };
        let parsed = parse_line(&format!("ping 192.168.0.9 {opts}")).unwrap();
        let ShellInput::Command(ShellCommand::Ping {
            rounds: r,
            length: l,
            port: p,
            ..
        }) = parsed
        else {
            return Err(TestCaseError::fail("not a ping"));
        };
        prop_assert_eq!(r, rounds);
        prop_assert_eq!(l, length);
        prop_assert_eq!(p, Some(port));
    }
}
