//! The command interpreter — the workstation-side half of the toolkit.
//!
//! "LiteView consists of a command interpreter on the client side, and a
//! runtime controller on the node side. … The command interpreter
//! carries out three tasks. First, it translates each user command into
//! a sequence of radio messages. … Second, it keeps track of the context
//! of user management operations, such as the current directory …
//! Finally, the command interpreter communicates with the runtime
//! controller … following a reliable one-hop communication protocol."
//!
//! In the simulation, the interpreter runs as a process on the
//! workstation's bridge mote, sharing its state with the external
//! [`Workstation`](crate::workstation::Workstation) driver through an
//! `Rc<RefCell<…>>` (single-threaded event loop, so this is the direct
//! analogue of the serial cable between PC and base-station mote).

use crate::commands::{Command, StatusRow, WORKSTATION_PORT};
use crate::protocol::BatchReceiver;
use crate::wire::{
    BatchMsg, HopRecord, MgmtCommand, MgmtReply, MgmtRequest, MgmtResponse, PingSummary,
    WireLogEntry, WireNeighbor,
};
use lv_kernel::{Process, ProcessImage, RxMeta, SysCtx};
use lv_net::packet::{NetPacket, Port};
use lv_sim::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Timer token the workstation driver pokes to start queued commands.
pub const KICK: u32 = 0;

/// An issued command awaiting transmission.
#[derive(Debug)]
pub struct QueuedCommand {
    /// Target node.
    pub target: u16,
    /// The command.
    pub command: Command,
    /// Request id assigned by the driver.
    pub req_id: u8,
}

/// Progress of the in-flight command.
#[derive(Debug, Default)]
pub struct InFlight {
    /// Request id.
    pub req_id: u8,
    /// Whether batch chunks carry log records (vs neighbor rows).
    pub expect_log: bool,
    /// Whether this is a group survey (replies accumulate per node).
    pub group: bool,
    /// Collected group rows.
    pub group_rows: Vec<StatusRow>,
    /// When the request hit the air.
    pub issued_at: SimTime,
    /// Terminal single-packet reply, once received.
    pub reply: Option<MgmtReply>,
    /// Ping summary (ping has its own reply type to keep arrival time).
    pub ping: Option<PingSummary>,
    /// Traceroute: protocol name.
    pub protocol: Option<String>,
    /// Traceroute: hop records with arrival timestamps.
    pub hops: Vec<(HopRecord, SimTime)>,
    /// Traceroute: completion signal.
    pub tr_done: Option<(u8, bool)>,
    /// Neighbor-list reassembly.
    pub batch: Option<BatchReceiver>,
    /// Decoded neighbor rows.
    pub neighbors: Option<Vec<WireNeighbor>>,
    /// Decoded log records.
    pub log: Option<Vec<WireLogEntry>>,
    /// Completion flag (variable-latency commands).
    pub done: bool,
    /// When the command completed.
    pub completed_at: Option<SimTime>,
}

/// Interpreter state shared with the workstation driver.
#[derive(Debug, Default)]
pub struct WsState {
    /// Commands queued by the driver.
    pub queue: VecDeque<QueuedCommand>,
    /// The in-flight command's progress.
    pub current: Option<InFlight>,
}

/// Shared handle type.
pub type SharedWsState = Rc<RefCell<WsState>>;

/// The interpreter process.
pub struct Interpreter {
    state: SharedWsState,
}

impl Interpreter {
    /// Create an interpreter around shared state.
    pub fn new(state: SharedWsState) -> Self {
        Interpreter { state }
    }

    fn mark_done(fl: &mut InFlight, now: SimTime) {
        fl.done = true;
        fl.completed_at.get_or_insert(now);
    }

    fn handle_response(&mut self, ctx: &mut SysCtx<'_>, resp: MgmtResponse) {
        let mut st = self.state.borrow_mut();
        let Some(fl) = st.current.as_mut() else {
            return;
        };
        if resp.req_id != fl.req_id {
            return; // stale response from an earlier command
        }
        let now = ctx.now;
        if fl.group {
            if let MgmtReply::Status {
                power,
                channel,
                queue,
                neighbors,
            } = resp.reply
            {
                // One node answers once; duplicates (MAC-level) ignored.
                if !fl.group_rows.iter().any(|r| r.node == resp.from) {
                    fl.group_rows.push(StatusRow {
                        node: resp.from,
                        power,
                        channel,
                        queue,
                        neighbors,
                    });
                }
            }
            return;
        }
        match resp.reply {
            MgmtReply::PingSummary(s) => {
                fl.ping = Some(s);
                Self::mark_done(fl, now);
            }
            MgmtReply::TracerouteInfo { protocol } => {
                fl.protocol = Some(protocol);
            }
            MgmtReply::TracerouteHop(h) => {
                fl.hops.push((h, now));
            }
            MgmtReply::TracerouteDone { hops, reached } => {
                fl.tr_done = Some((hops, reached));
                Self::mark_done(fl, now);
            }
            MgmtReply::Error(code) => {
                // Errors are terminal for every command shape.
                fl.reply = Some(MgmtReply::Error(code));
                Self::mark_done(fl, now);
            }
            other => {
                fl.reply = Some(other);
                fl.completed_at.get_or_insert(now);
                // Fixed-window commands keep `done` false: the driver
                // deliberately waits out the full 500 ms window.
            }
        }
    }

    fn handle_batch(&mut self, ctx: &mut SysCtx<'_>, packet: &NetPacket, msg: BatchMsg) {
        let BatchMsg::Data {
            req_id,
            seq,
            total,
            ack_after,
            payload,
        } = msg
        else {
            return; // the interpreter never receives acks
        };
        let mut st = self.state.borrow_mut();
        let Some(fl) = st.current.as_mut() else {
            return;
        };
        if req_id != fl.req_id {
            return;
        }
        let expect_log = fl.expect_log;
        let rx = fl.batch.get_or_insert_with(|| BatchReceiver::new(req_id));
        let ack = rx.on_data(req_id, seq, total, ack_after, payload);
        let complete = rx.is_complete();
        if complete && fl.neighbors.is_none() && fl.log.is_none() {
            if expect_log {
                let mut rows = Vec::new();
                let mut ok = true;
                for chunk in rx.assemble().unwrap_or_default() {
                    match WireLogEntry::decode_list(&chunk) {
                        Ok(mut r) => rows.append(&mut r),
                        Err(_) => ok = false,
                    }
                }
                if ok {
                    fl.log = Some(rows);
                    Self::mark_done(fl, ctx.now);
                }
            } else {
                let mut rows = Vec::new();
                let mut ok = true;
                for chunk in rx.assemble().unwrap_or_default() {
                    match WireNeighbor::decode_list(&chunk) {
                        Ok(mut r) => rows.append(&mut r),
                        Err(_) => ok = false,
                    }
                }
                if ok {
                    fl.neighbors = Some(rows);
                    Self::mark_done(fl, ctx.now);
                }
            }
        }
        drop(st);
        if let Some(ack) = ack {
            // Acks flow back on the management port, one hop.
            ctx.send(
                packet.header.origin,
                Port::MANAGEMENT,
                Port::MANAGEMENT,
                ack.encode(),
                false,
            );
        }
    }
}

impl Process for Interpreter {
    fn name(&self) -> &str {
        "liteview-interpreter"
    }

    fn image(&self) -> ProcessImage {
        // Runs on the workstation-attached mote; similar scale to the
        // controller.
        ProcessImage {
            flash_bytes: 4200,
            ram_bytes: 400,
        }
    }

    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        ctx.subscribe(WORKSTATION_PORT);
    }

    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, token: u32) {
        if token != KICK {
            return;
        }
        let queued = {
            let mut st = self.state.borrow_mut();
            let Some(q) = st.queue.pop_front() else {
                return;
            };
            st.current = Some(InFlight {
                req_id: q.req_id,
                issued_at: ctx.now,
                expect_log: matches!(q.command, Command::ReadLog { .. }),
                group: matches!(q.command, Command::GroupStatus),
                ..Default::default()
            });
            q
        };
        let cmd = match queued.command {
            Command::Status | Command::GroupStatus => MgmtCommand::GetStatus,
            Command::GetPower => MgmtCommand::GetPower,
            Command::SetPower(p) => MgmtCommand::SetPower(p),
            Command::GetChannel => MgmtCommand::GetChannel,
            Command::SetChannel(c) => MgmtCommand::SetChannel(c),
            Command::NeighborList { with_quality } => MgmtCommand::NeighborList { with_quality },
            Command::Blacklist { neighbor, add } => MgmtCommand::Blacklist { id: neighbor, add },
            Command::UpdateBeacon { period } => MgmtCommand::UpdateBeacon {
                period_ms: period.as_millis().max(1).min(u32::MAX as u64) as u32,
            },
            Command::SetLogging(on) => MgmtCommand::SetLogging(on),
            Command::ReadLog { max } => MgmtCommand::ReadLog { max },
            Command::Ping {
                dst,
                rounds,
                length,
                port,
            } => MgmtCommand::Ping {
                dst,
                rounds,
                length,
                port: port.map_or(0, |p| p.0),
            },
            Command::Traceroute { dst, length, port } => MgmtCommand::Traceroute {
                dst,
                length,
                port: port.0,
            },
        };
        let req = MgmtRequest {
            req_id: queued.req_id,
            reply_node: ctx.node_id,
            reply_port: WORKSTATION_PORT.0,
            cmd,
        };
        // One hop to the target's runtime controller (GROUP_TARGET is
        // the link-layer broadcast: every controller in range answers,
        // each after its own random backoff).
        ctx.send(
            queued.target,
            Port::MANAGEMENT,
            Port::MANAGEMENT,
            req.encode(),
            false,
        );
        ctx.log("ws", format!("issued req {}", queued.req_id));
    }

    fn on_packet(&mut self, ctx: &mut SysCtx<'_>, packet: &NetPacket, _meta: RxMeta) {
        match packet.payload.first() {
            Some(&MgmtResponse::TAG) => {
                if let Ok(resp) = MgmtResponse::decode(&packet.payload) {
                    self.handle_response(ctx, resp);
                }
            }
            Some(0x40) => {
                if let Ok(msg) = BatchMsg::decode(&packet.payload) {
                    self.handle_batch(ctx, packet, msg);
                }
            }
            _ => {}
        }
    }
}
