//! The observability layer: the network-wide flight recorder
//! (`DESIGN.md` §9).
//!
//! The paper's thesis is that communication failures in sensor networks
//! are diagnosed *interactively* — but interactive probing is only half
//! of visibility. This module adds the other half: every layer of the
//! simulated deployment (kernel scheduler, CSMA MAC, network stack,
//! command protocols) feeds counters and trace events into a single
//! causally-ordered record, and the workstation can export the whole
//! thing as a JSON [`ObservabilityReport`] — per-node health pages, the
//! global event timeline, and one [`ExecutionRecord`] per command with
//! the events and per-hop counter movement it caused.

use crate::commands::{Command, CommandResult, Execution};
use lv_kernel::{Network, NodeStats};
use lv_sim::{Counters, SimDuration, SimTime, TraceEvent};
use serde::{Deserialize, Serialize};

/// One node's counter movement during a command window — the per-hop
/// cost breakdown attached to an [`Execution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDelta {
    /// The node whose counters moved.
    pub node: u16,
    /// What moved, and by how much (zero deltas omitted).
    pub counters: Counters,
}

/// A serializable record of one command execution: what ran, what came
/// back, and the flight-recorder slice it caused.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// The command, rendered for humans.
    pub command: String,
    /// The target node (`0xFFFF` for group operations).
    pub target: u16,
    /// Virtual time the command was issued.
    pub issued_at: SimTime,
    /// Reported response delay.
    pub response_delay: SimDuration,
    /// One-line outcome summary.
    pub outcome: String,
    /// Trace events emitted anywhere in the network during the window.
    pub timeline: Vec<TraceEvent>,
    /// Global counter movement during the window.
    pub counter_delta: Counters,
    /// Per-node counter movement during the window, node order.
    pub node_deltas: Vec<NodeDelta>,
}

impl ExecutionRecord {
    /// Flatten an [`Execution`] into its serializable record.
    pub fn from_execution(e: &Execution) -> ExecutionRecord {
        ExecutionRecord {
            command: command_summary(&e.command),
            target: e.target,
            issued_at: e.issued_at,
            response_delay: e.response_delay,
            outcome: outcome_summary(&e.result),
            timeline: e.timeline.clone(),
            counter_delta: e.counter_delta.clone(),
            node_deltas: e.node_deltas.clone(),
        }
    }
}

/// A network-wide flight-recorder snapshot: every node's health page,
/// the global counters and event timeline, and a record per executed
/// command. Round-trips through JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservabilityReport {
    /// Virtual time of the snapshot.
    pub captured_at: SimTime,
    /// Deployment size.
    pub node_count: usize,
    /// Global kernel counters (tx/rx/net/mac/sys namespaces).
    pub global: Counters,
    /// Per-node health and traffic snapshots, node order.
    pub nodes: Vec<NodeStats>,
    /// The retained event timeline (ring buffer contents).
    pub timeline: Vec<TraceEvent>,
    /// Events lost to the ring buffer's capacity.
    pub trace_dropped: u64,
    /// One record per command executed through the workstation.
    pub executions: Vec<ExecutionRecord>,
    /// Closed diagnosis episodes from the automated engine, if armed
    /// (absent in reports captured before the engine existed).
    #[serde(default)]
    pub diagnosis: Vec<crate::diagnose::DiagnosisReport>,
}

impl ObservabilityReport {
    /// Capture the deployment's current state plus the given execution
    /// history.
    pub fn capture(net: &Network, executions: &[Execution]) -> ObservabilityReport {
        ObservabilityReport {
            captured_at: net.now(),
            node_count: net.node_count(),
            global: net.counters.clone(),
            nodes: net.node_stats(),
            timeline: net.trace.events().to_vec(),
            trace_dropped: net.trace.dropped(),
            executions: executions
                .iter()
                .map(ExecutionRecord::from_execution)
                .collect(),
            diagnosis: Vec::new(),
        }
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        // Serialization of plain data types cannot fail; degrade to an
        // empty object rather than aborting a live deployment.
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Parse a report back from JSON (`None` on malformed input).
    pub fn from_json(s: &str) -> Option<ObservabilityReport> {
        serde_json::from_str(s).ok()
    }
}

/// Render a command the way the shell would spell it.
pub fn command_summary(c: &Command) -> String {
    match c {
        Command::Status => "status".into(),
        Command::GroupStatus => "survey".into(),
        Command::GetPower => "power".into(),
        Command::SetPower(level) => format!("power {level}"),
        Command::GetChannel => "channel".into(),
        Command::SetChannel(n) => format!("channel {n}"),
        Command::NeighborList { with_quality } => {
            if *with_quality {
                "list quality".into()
            } else {
                "list".into()
            }
        }
        Command::Blacklist { neighbor, add } => {
            format!(
                "blacklist {} {neighbor}",
                if *add { "add" } else { "remove" }
            )
        }
        Command::UpdateBeacon { period } => format!("update period={}ms", period.as_millis()),
        Command::SetLogging(on) => format!("log {}", if *on { "on" } else { "off" }),
        Command::ReadLog { max } => format!("readlog {max}"),
        Command::Ping {
            dst,
            rounds,
            length,
            port,
        } => match port {
            Some(p) => format!("ping {dst} round={rounds} length={length} port={}", p.0),
            None => format!("ping {dst} round={rounds} length={length}"),
        },
        Command::Traceroute { dst, length, port } => {
            format!("traceroute {dst} length={length} port={}", port.0)
        }
    }
}

/// One-line outcome description for a record.
pub fn outcome_summary(r: &CommandResult) -> String {
    match r {
        CommandResult::Ok => "ok".into(),
        CommandResult::Status { .. } => "status".into(),
        CommandResult::Power(p) => format!("power={p}"),
        CommandResult::Channel(c) => format!("channel={c}"),
        CommandResult::Neighbors(rows) => format!("{} neighbors", rows.len()),
        CommandResult::GroupStatus(rows) => format!("{} responders", rows.len()),
        CommandResult::Log(rows) => format!("{} log entries", rows.len()),
        CommandResult::Ping(o) => format!("{}/{} replies", o.received, o.sent),
        CommandResult::Traceroute(t) => format!(
            "{} hop reports{}",
            t.hops.len(),
            if t.reached {
                ", destination reached"
            } else {
                ""
            }
        ),
        CommandResult::Timeout => "timeout".into(),
        CommandResult::Error(code) => format!("error {code}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_net::packet::Port;

    #[test]
    fn command_summaries_read_like_shell_lines() {
        assert_eq!(
            command_summary(&Command::Ping {
                dst: 2,
                rounds: 1,
                length: 32,
                port: None
            }),
            "ping 2 round=1 length=32"
        );
        assert_eq!(
            command_summary(&Command::Traceroute {
                dst: 3,
                length: 32,
                port: Port(10)
            }),
            "traceroute 3 length=32 port=10"
        );
        assert_eq!(
            command_summary(&Command::Blacklist {
                neighbor: 9,
                add: true
            }),
            "blacklist add 9"
        );
    }

    #[test]
    fn empty_report_round_trips_through_json() {
        let report = ObservabilityReport {
            captured_at: SimTime::from_millis(1234),
            node_count: 0,
            global: Counters::new(),
            nodes: Vec::new(),
            timeline: Vec::new(),
            trace_dropped: 0,
            executions: Vec::new(),
            diagnosis: Vec::new(),
        };
        let json = report.to_json();
        let back = ObservabilityReport::from_json(&json).expect("parses");
        assert_eq!(back.captured_at, report.captured_at);
        assert_eq!(back.node_count, 0);
        assert!(back.nodes.is_empty());
    }
}
