//! The transport seam between diagnosis sessions and event delivery.
//!
//! The paper's workstation talks to the deployment through whatever
//! link happens to be available — a serial cable to the bridge mote in
//! the testbed, a socket to a gateway in a fielded system. This module
//! carves that seam as a trait so the *same* protocol objects
//! ([`crate::Workstation`], the port stack, the session layer in
//! [`crate::session`]) can be driven by two interchangeable backends:
//!
//! * [`SimTransport`] — a deterministic in-memory pair of bounded
//!   queues. No threads, no wall clock, no OS randomness: frames are
//!   delivered in FIFO order exactly as enqueued, so the sim backend
//!   stays bit-identical with the digest goldens.
//! * `UdpTransport` (in the `lv-serve` crate) — a real `UdpSocket`
//!   with a channel-fed receive loop, bounded queues with
//!   backpressure, and per-peer send pacing. The live side is allowed
//!   to use wall-clock time; lv-lint scopes the determinism rules so
//!   that permission never leaks back into the sim path.
//!
//! Frames are opaque byte strings. The session layer frames its JSON
//! payloads with the [`frame`] codec (u32 big-endian length prefix)
//! so stream-ish transports can split and reassemble safely.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifies the far end of a transport, as interned by the backend.
///
/// For [`SimTransport`] there is exactly one peer (id 0); a live
/// backend mints one id per remote socket address it hears from.
pub type PeerId = u64;

/// Errors a transport can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The receiving queue is full — the peer is not draining fast
    /// enough. Callers may retry later; the frame was **not** queued.
    Backpressure,
    /// The transport (or its peer endpoint) has shut down.
    Closed,
    /// The frame exceeds the backend's maximum frame size.
    TooBig {
        /// Offered frame length.
        len: usize,
        /// Backend ceiling.
        max: usize,
    },
    /// An operating-system I/O error (live backends only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Backpressure => write!(f, "peer queue full (backpressure)"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::TooBig { len, max } => {
                write!(f, "frame of {len} bytes exceeds transport max {max}")
            }
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, frame-oriented link to one or more peers.
///
/// Implementations deliver whole frames (datagram semantics): a frame
/// handed to [`Transport::send`] arrives at the peer as one
/// `(PeerId, Vec<u8>)` unit from [`Transport::recv`], or not at all.
/// Ordering is FIFO per peer for the deterministic backend; live
/// backends inherit UDP's best-effort ordering and may drop frames
/// under load (surfaced via their backpressure counters).
pub trait Transport: Send {
    /// Queue one frame for `peer`. Returns [`TransportError::Backpressure`]
    /// when the peer's queue is full (the frame is dropped, not queued).
    fn send(&mut self, peer: PeerId, frame: &[u8]) -> Result<(), TransportError>;

    /// Receive the next pending frame from any peer.
    ///
    /// * `wait = None` — poll: return `Ok(None)` immediately when idle.
    /// * `wait = Some(d)` — block up to `d` for a frame.
    fn recv(&mut self, wait: Option<Duration>)
        -> Result<Option<(PeerId, Vec<u8>)>, TransportError>;

    /// Tear the link down. Subsequent sends fail with
    /// [`TransportError::Closed`]; the peer's `recv` drains whatever
    /// was already queued and then reports `Closed`.
    fn shutdown(&mut self);

    /// The largest frame this backend can carry in one unit.
    fn max_frame(&self) -> usize {
        usize::MAX
    }
}

/// Shared state of one direction of a [`SimTransport`] pair.
struct SimQueue {
    inner: Mutex<SimQueueState>,
    ready: Condvar,
}

struct SimQueueState {
    frames: VecDeque<Vec<u8>>,
    capacity: usize,
    closed: bool,
}

impl SimQueue {
    fn new(capacity: usize) -> Arc<SimQueue> {
        Arc::new(SimQueue {
            inner: Mutex::new(SimQueueState {
                frames: VecDeque::new(),
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    /// Lock the queue state, recovering from a poisoned mutex: the
    /// state is a plain FIFO with no invariant a panicking holder can
    /// leave half-updated, so poisoning is survivable.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, SimQueueState> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut st = self.lock_inner();
        if st.closed {
            return Err(TransportError::Closed);
        }
        if st.frames.len() >= st.capacity {
            return Err(TransportError::Backpressure);
        }
        st.frames.push_back(frame.to_vec());
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, wait: Option<Duration>) -> Result<Option<Vec<u8>>, TransportError> {
        let mut st = self.lock_inner();
        if let Some(f) = st.frames.pop_front() {
            return Ok(Some(f));
        }
        if st.closed {
            return Err(TransportError::Closed);
        }
        let Some(d) = wait else { return Ok(None) };
        let (mut st, _timed_out) = self
            .ready
            .wait_timeout_while(st, d, |st| st.frames.is_empty() && !st.closed)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match st.frames.pop_front() {
            Some(f) => Ok(Some(f)),
            None if st.closed => Err(TransportError::Closed),
            None => Ok(None),
        }
    }

    fn close(&self) {
        let mut st = self.lock_inner();
        st.closed = true;
        self.ready.notify_all();
    }
}

/// The deterministic in-process transport: one half of a paired link
/// over bounded FIFO queues.
///
/// This is the sim backend of the transport seam. It involves no
/// threads of its own, no wall-clock reads and no randomness — frames
/// come back in exactly the order they were pushed, so a diagnosis
/// session driven over `SimTransport` replays bit-identically. (The
/// blocking `recv` flavor exists so the same endpoint type also works
/// when a test *does* put the two halves on separate threads.)
pub struct SimTransport {
    tx: Arc<SimQueue>,
    rx: Arc<SimQueue>,
    closed: bool,
}

/// The [`PeerId`] of the opposite endpoint of a [`SimTransport`] pair.
pub const SIM_PEER: PeerId = 0;

impl SimTransport {
    /// Create a connected pair of endpoints whose queues hold at most
    /// `capacity` frames per direction.
    pub fn pair(capacity: usize) -> (SimTransport, SimTransport) {
        let a_to_b = SimQueue::new(capacity);
        let b_to_a = SimQueue::new(capacity);
        (
            SimTransport {
                tx: Arc::clone(&a_to_b),
                rx: Arc::clone(&b_to_a),
                closed: false,
            },
            SimTransport {
                tx: b_to_a,
                rx: a_to_b,
                closed: false,
            },
        )
    }

    /// Frames currently queued toward this endpoint.
    pub fn pending(&self) -> usize {
        self.rx.lock_inner().frames.len()
    }
}

impl Transport for SimTransport {
    fn send(&mut self, _peer: PeerId, frame: &[u8]) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        self.tx.push(frame)
    }

    fn recv(
        &mut self,
        wait: Option<Duration>,
    ) -> Result<Option<(PeerId, Vec<u8>)>, TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        Ok(self.rx.pop(wait)?.map(|f| (SIM_PEER, f)))
    }

    fn shutdown(&mut self) {
        self.closed = true;
        self.tx.close();
        self.rx.close();
    }
}

impl Drop for SimTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Length-prefix framing for the session wire protocol.
///
/// Every protocol message travels as `[u32 big-endian length][payload]`.
/// Datagram transports carry one framed message per frame; the prefix
/// lets stream-ish carriers (or files of concatenated messages) be cut
/// back into messages without guessing.
pub mod frame {
    /// Hard ceiling on one framed payload (1 MiB) — a decoder guard so
    /// a corrupt length prefix cannot trigger a giant allocation.
    pub const MAX_PAYLOAD: usize = 1 << 20;

    /// Bytes of framing overhead per message.
    pub const HEADER_LEN: usize = 4;

    /// Framing-layer decode errors.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FrameError {
        /// Fewer bytes than the prefix promises (or no full prefix).
        Truncated,
        /// Length prefix exceeds [`MAX_PAYLOAD`].
        Oversized,
    }

    /// Wrap `payload` in a length prefix.
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Split one framed message off the front of `buf`, returning the
    /// payload and the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized);
        }
        if buf.len() < HEADER_LEN + len {
            return Err(FrameError::Truncated);
        }
        Ok((&buf[HEADER_LEN..HEADER_LEN + len], HEADER_LEN + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_delivers_in_fifo_order() {
        let (mut a, mut b) = SimTransport::pair(8);
        a.send(SIM_PEER, b"one").unwrap();
        a.send(SIM_PEER, b"two").unwrap();
        assert_eq!(b.recv(None).unwrap().unwrap().1, b"one");
        assert_eq!(b.recv(None).unwrap().unwrap().1, b"two");
        assert_eq!(b.recv(None).unwrap(), None);
    }

    #[test]
    fn bounded_queue_backpressures() {
        let (mut a, mut b) = SimTransport::pair(2);
        a.send(SIM_PEER, b"1").unwrap();
        a.send(SIM_PEER, b"2").unwrap();
        assert_eq!(a.send(SIM_PEER, b"3"), Err(TransportError::Backpressure));
        // Draining one slot readmits the sender.
        b.recv(None).unwrap().unwrap();
        a.send(SIM_PEER, b"3").unwrap();
    }

    #[test]
    fn shutdown_drains_then_closes() {
        let (mut a, mut b) = SimTransport::pair(4);
        a.send(SIM_PEER, b"last").unwrap();
        a.shutdown();
        assert_eq!(a.send(SIM_PEER, b"x"), Err(TransportError::Closed));
        assert_eq!(b.recv(None).unwrap().unwrap().1, b"last");
        assert_eq!(b.recv(None), Err(TransportError::Closed));
    }

    #[test]
    fn blocking_recv_crosses_threads() {
        let (mut a, mut b) = SimTransport::pair(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(SIM_PEER, b"ping").unwrap();
            });
            let got = b.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
            assert_eq!(got.1, b"ping");
        });
    }

    #[test]
    fn frame_roundtrip_and_guards() {
        let framed = frame::encode(b"hello");
        let (payload, used) = frame::decode(&framed).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(used, framed.len());

        // Truncated buffers and oversized prefixes are rejected.
        assert_eq!(
            frame::decode(&framed[..3]),
            Err(frame::FrameError::Truncated)
        );
        assert_eq!(
            frame::decode(&framed[..framed.len() - 1]),
            Err(frame::FrameError::Truncated)
        );
        let mut bad = framed.clone();
        bad[0] = 0xFF;
        assert_eq!(frame::decode(&bad), Err(frame::FrameError::Oversized));
    }

    #[test]
    fn two_messages_split_cleanly() {
        let mut buf = frame::encode(b"a");
        buf.extend_from_slice(&frame::encode(b"bb"));
        let (p1, used1) = frame::decode(&buf).unwrap();
        assert_eq!(p1, b"a");
        let (p2, used2) = frame::decode(&buf[used1..]).unwrap();
        assert_eq!(p2, b"bb");
        assert_eq!(used1 + used2, buf.len());
    }
}
