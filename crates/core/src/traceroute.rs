//! The traceroute command (Section IV.C.6, Figure 4).
//!
//! "When this command is invoked … on each hop along the path, the
//! intermediate node temporarily becomes a sender, and will initiate a
//! traceroute task. … It sends a probe to the next node … waits for the
//! reply … obtains both the RTT value and the link quality information.
//! This intermediate node then puts such information into a report
//! packet, and delivers it to the source node … For a path composed of
//! multiple hops, the source receives multiple reports from different
//! nodes, so that it gathers the path quality information of the entire
//! path."
//!
//! Because every hop reports independently, traceroute needs no padding
//! and is "fundamentally more scalable compared to the multi-hop ping
//! command" — the ablation bench quantifies exactly that trade.
//!
//! Two processes implement it:
//!
//! * [`TrSourceProcess`] — spawned on the node the user is logged into;
//!   runs the first hop's task, relays every hop report to the
//!   workstation live (so per-hop response delays — Fig. 5 — are
//!   measured where the user sits), and signals completion.
//! * [`TrHopProcess`] — spawned on each intermediate node by a
//!   [`TrTask`] handoff; probes its next hop, reports to the source,
//!   passes the task onward, and exits.

use crate::commands::session_port;
use crate::wire::{HopRecord, MgmtReply, MgmtResponse, TrProbe, TrProbeReply, TrReport, TrTask};
use lv_kernel::{Process, ProcessImage, RxMeta, SysCtx};
use lv_net::packet::{NetPacket, Port};
use lv_sim::{SimDuration, SimTime};

/// Probe-reply timeout per hop.
const PROBE_TIMEOUT: SimDuration = SimDuration::from_millis(500);
/// The source declares the command over after this much report silence.
const IDLE_TIMEOUT: SimDuration = SimDuration::from_millis(1_500);

/// Timer tokens. Idle-watchdog tokens carry a generation number so a
/// stale watchdog (superseded by a re-arm when a report arrived) is
/// recognizably old and ignored.
const TOKEN_PROBE: u32 = 1;
const TOKEN_IDLE_BASE: u32 = 1000;

/// The shared per-hop task: probe `next`, build a [`HopRecord`].
#[derive(Debug)]
struct HopTask {
    session: u16,
    dst: u16,
    carry: Port,
    hop_index: u8,
    length: u8,
    next: Option<u16>,
    sent_at: SimTime,
    done: bool,
}

impl HopTask {
    fn new(session: u16, dst: u16, carry: Port, hop_index: u8, length: u8) -> Self {
        HopTask {
            session,
            dst,
            carry,
            hop_index,
            length,
            next: None,
            sent_at: SimTime::ZERO,
            done: false,
        }
    }

    /// Resolve the next hop and send the probe. Returns `false` when
    /// there is no route (a no-route record should be reported).
    fn begin(&mut self, ctx: &mut SysCtx<'_>) -> bool {
        match ctx.next_hop(self.carry, self.dst) {
            Some(next) => {
                self.next = Some(next);
                let probe = TrProbe {
                    session: self.session,
                    seq: self.hop_index,
                    reply_port: session_port(self.session).0,
                };
                self.sent_at = ctx.now;
                // Probes are strictly one-hop: carried on the traceroute
                // port itself, answered by the neighbor's controller.
                ctx.send(
                    next,
                    Port::TRACEROUTE,
                    Port::TRACEROUTE,
                    probe.encode(self.length as usize),
                    false,
                );
                ctx.set_timer(TOKEN_PROBE, PROBE_TIMEOUT);
                true
            }
            None => false,
        }
    }

    fn no_route_record(&self) -> HopRecord {
        HopRecord {
            hop_index: self.hop_index,
            far: 0,
            reached_dst: false,
            no_route: true,
            probe_lost: false,
            rtt_us: 0,
            lqi_fwd: 0,
            lqi_bwd: 0,
            rssi_fwd: 0,
            rssi_bwd: 0,
            queue_fwd: 0,
            queue_bwd: 0,
        }
    }

    fn lost_record(&self) -> HopRecord {
        HopRecord {
            hop_index: self.hop_index,
            far: self.next.unwrap_or(0),
            reached_dst: false,
            no_route: false,
            probe_lost: true,
            rtt_us: 0,
            lqi_fwd: 0,
            lqi_bwd: 0,
            rssi_fwd: 0,
            rssi_bwd: 0,
            queue_fwd: 0,
            queue_bwd: 0,
        }
    }

    /// Build the hop record from a probe reply.
    fn record_from_reply(
        &mut self,
        ctx: &SysCtx<'_>,
        reply: &TrProbeReply,
        meta: RxMeta,
    ) -> Option<HopRecord> {
        if self.done || reply.session != self.session || reply.seq != self.hop_index {
            return None;
        }
        let next = self.next?;
        self.done = true;
        let rtt = ctx.now.saturating_since(self.sent_at);
        Some(HopRecord {
            hop_index: self.hop_index,
            far: next,
            reached_dst: next == self.dst,
            no_route: false,
            probe_lost: false,
            rtt_us: rtt.as_micros().min(u32::MAX as u64) as u32,
            lqi_fwd: reply.lqi_in,
            lqi_bwd: meta.lqi,
            rssi_fwd: reply.rssi_in,
            rssi_bwd: meta.rssi,
            queue_fwd: reply.queue,
            queue_bwd: ctx.queue_len.min(255) as u8,
        })
    }

    /// Hand the task to the next node ("initiate a new traceroute task").
    fn hand_off(&self, ctx: &mut SysCtx<'_>, origin: u16, origin_port: u8) {
        let Some(next) = self.next else { return };
        let task = TrTask {
            session: self.session,
            origin,
            origin_port,
            dst: self.dst,
            carry_port: self.carry.0,
            hop_index: self.hop_index + 1,
            length: self.length,
        };
        ctx.send(
            next,
            Port::TRACEROUTE,
            Port::TRACEROUTE,
            task.encode(),
            false,
        );
    }
}

// ---------------------------------------------------------------------
// Intermediate-hop process
// ---------------------------------------------------------------------

/// The per-hop task process spawned on intermediate nodes.
pub struct TrHopProcess {
    task: Option<HopTask>,
    origin: u16,
    origin_port: u8,
}

impl TrHopProcess {
    /// Create (configured from the parameter buffer at start).
    pub fn new() -> Self {
        TrHopProcess {
            task: None,
            origin: 0,
            origin_port: 0,
        }
    }

    fn report(&self, ctx: &mut SysCtx<'_>, record: HopRecord) {
        let Some(task) = self.task.as_ref() else {
            return;
        };
        let report = TrReport {
            session: task.session,
            record,
        };
        // Reports travel back over the carrying protocol (multi-hop).
        ctx.send(
            self.origin,
            task.carry,
            Port(self.origin_port),
            report.encode(),
            false,
        );
    }
}

impl Default for TrHopProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl Process for TrHopProcess {
    fn name(&self) -> &str {
        "traceroute-hop"
    }

    fn image(&self) -> ProcessImage {
        // The paper's measured footprint: 2820 B flash, 272 B RAM.
        ProcessImage::TRACEROUTE
    }

    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        let tokens = ctx.param_tokens();
        let parsed = (|| -> Option<(u16, u16, u8, u16, u8, u8, u8)> {
            if tokens.len() < 7 {
                return None;
            }
            Some((
                tokens[0].parse().ok()?,
                tokens[1].parse().ok()?,
                tokens[2].parse().ok()?,
                tokens[3].parse().ok()?,
                tokens[4].parse().ok()?,
                tokens[5].parse().ok()?,
                tokens[6].parse().ok()?,
            ))
        })();
        let Some((session, origin, origin_port, dst, carry, hop_index, length)) = parsed else {
            ctx.exit();
            return;
        };
        self.origin = origin;
        self.origin_port = origin_port;
        let mut task = HopTask::new(session, dst, Port(carry), hop_index, length);
        ctx.subscribe(session_port(session));
        let routed = task.begin(ctx);
        let no_route = (!routed).then(|| task.no_route_record());
        self.task = Some(task);
        if let Some(record) = no_route {
            self.report(ctx, record);
            ctx.exit();
        }
    }

    fn on_packet(&mut self, ctx: &mut SysCtx<'_>, packet: &NetPacket, meta: RxMeta) {
        let Ok(reply) = TrProbeReply::decode(&packet.payload) else {
            return;
        };
        let Some(task) = self.task.as_mut() else {
            return;
        };
        let Some(record) = task.record_from_reply(ctx, &reply, meta) else {
            return;
        };
        let reached = record.reached_dst;
        self.report(ctx, record);
        if !reached {
            if let Some(task) = self.task.as_ref() {
                task.hand_off(ctx, self.origin, self.origin_port);
            }
        }
        ctx.exit();
    }

    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, token: u32) {
        if token != TOKEN_PROBE {
            return;
        }
        let record = match self.task.as_ref() {
            Some(t) if !t.done => t.lost_record(),
            _ => return,
        };
        self.report(ctx, record);
        ctx.exit();
    }
}

// ---------------------------------------------------------------------
// Source process
// ---------------------------------------------------------------------

#[derive(Debug)]
struct SourceConfig {
    reply_node: u16,
    reply_port: u8,
    req_id: u8,
}

/// The source-side traceroute process (runs hop 1's task, collects and
/// relays all reports, signals completion).
pub struct TrSourceProcess {
    task: Option<HopTask>,
    cfg: Option<SourceConfig>,
    hops_relayed: u8,
    reached: bool,
    finished: bool,
    idle_gen: u32,
}

impl TrSourceProcess {
    /// Create (configured from the parameter buffer at start).
    pub fn new() -> Self {
        TrSourceProcess {
            task: None,
            cfg: None,
            hops_relayed: 0,
            reached: false,
            finished: false,
            idle_gen: 0,
        }
    }

    fn arm_idle(&mut self, ctx: &mut SysCtx<'_>) {
        self.idle_gen += 1;
        ctx.set_timer(TOKEN_IDLE_BASE + self.idle_gen, IDLE_TIMEOUT);
    }

    fn relay(&mut self, ctx: &mut SysCtx<'_>, record: HopRecord) {
        let Some(cfg) = self.cfg.as_ref() else { return };
        self.hops_relayed = self.hops_relayed.saturating_add(1);
        if record.reached_dst {
            self.reached = true;
        }
        let terminal = record.reached_dst || record.no_route || record.probe_lost;
        let resp = MgmtResponse {
            req_id: cfg.req_id,
            from: ctx.node_id,
            reply: MgmtReply::TracerouteHop(record),
        };
        let app = Port(cfg.reply_port);
        ctx.send(cfg.reply_node, app, app, resp.encode(), false);
        if terminal {
            self.finish(ctx);
        } else {
            self.arm_idle(ctx);
        }
    }

    fn finish(&mut self, ctx: &mut SysCtx<'_>) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(cfg) = self.cfg.as_ref() else { return };
        let resp = MgmtResponse {
            req_id: cfg.req_id,
            from: ctx.node_id,
            reply: MgmtReply::TracerouteDone {
                hops: self.hops_relayed,
                reached: self.reached,
            },
        };
        let app = Port(cfg.reply_port);
        ctx.send(cfg.reply_node, app, app, resp.encode(), false);
        ctx.log("traceroute", format!("done: {} hops", self.hops_relayed));
        ctx.exit();
    }
}

impl Default for TrSourceProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl Process for TrSourceProcess {
    fn name(&self) -> &str {
        "traceroute"
    }

    fn image(&self) -> ProcessImage {
        ProcessImage::TRACEROUTE
    }

    fn on_start(&mut self, ctx: &mut SysCtx<'_>) {
        let tokens = ctx.param_tokens();
        let parsed = (|| -> Option<(u16, u8, u8, u16, u16, u8, u8)> {
            if tokens.len() < 7 {
                return None;
            }
            Some((
                tokens[0].parse().ok()?, // dst
                tokens[1].parse().ok()?, // length
                tokens[2].parse().ok()?, // carry port
                tokens[3].parse().ok()?, // session
                tokens[4].parse().ok()?, // reply node
                tokens[5].parse().ok()?, // reply port
                tokens[6].parse().ok()?, // req id
            ))
        })();
        let Some((dst, length, carry, session, reply_node, reply_port, req_id)) = parsed else {
            ctx.exit();
            return;
        };
        self.cfg = Some(SourceConfig {
            reply_node,
            reply_port,
            req_id,
        });
        let mut task = HopTask::new(session, dst, Port(carry), 1, length);
        ctx.subscribe(session_port(session));
        let routed = task.begin(ctx);
        let no_route = (!routed).then(|| task.no_route_record());
        self.task = Some(task);
        self.arm_idle(ctx);
        if let Some(record) = no_route {
            self.relay(ctx, record);
        }
    }

    fn on_packet(&mut self, ctx: &mut SysCtx<'_>, packet: &NetPacket, meta: RxMeta) {
        match packet.payload.first() {
            // Reply to our own hop-1 probe.
            Some(0x61) => {
                let Ok(reply) = TrProbeReply::decode(&packet.payload) else {
                    return;
                };
                let Some(task) = self.task.as_mut() else {
                    return;
                };
                let Some(record) = task.record_from_reply(ctx, &reply, meta) else {
                    return;
                };
                if !record.reached_dst {
                    if let Some(task) = self.task.as_ref() {
                        let (origin, origin_port) = (ctx.node_id, session_port(task.session).0);
                        task.hand_off(ctx, origin, origin_port);
                    }
                }
                self.relay(ctx, record);
            }
            // A report from a downstream hop.
            Some(0x63) => {
                let Ok(report) = TrReport::decode(&packet.payload) else {
                    return;
                };
                if self
                    .task
                    .as_ref()
                    .is_some_and(|t| t.session == report.session)
                {
                    self.relay(ctx, report.record);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut SysCtx<'_>, token: u32) {
        match token {
            TOKEN_PROBE => {
                let record = match self.task.as_ref() {
                    Some(t) if !t.done => t.lost_record(),
                    _ => return,
                };
                self.relay(ctx, record);
            }
            t if t > TOKEN_IDLE_BASE
                // Idle watchdog: only the newest generation counts; any
                // older one was superseded by a report re-arming it.
                && t == TOKEN_IDLE_BASE + self.idle_gen && !self.finished =>
            {
                self.finish(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_route_record_flags() {
        let t = HopTask::new(5, 9, Port(10), 3, 32);
        let r = t.no_route_record();
        assert!(r.no_route);
        assert!(!r.reached_dst);
        assert_eq!(r.hop_index, 3);
    }

    #[test]
    fn lost_record_flags() {
        let mut t = HopTask::new(5, 9, Port(10), 2, 32);
        t.next = Some(7);
        let r = t.lost_record();
        assert!(r.probe_lost);
        assert_eq!(r.far, 7);
        assert_eq!(r.hop_index, 2);
    }
}
