//! The diagnosis-session wire protocol and its shared dispatcher.
//!
//! A *session* is one user logged into the hosted deployment: it owns a
//! current node (the LiteOS `cd` state) and issues parsed
//! [`ShellCommand`]s. The same protocol serves two front ends:
//!
//! * the interactive REPL in `examples/shell.rs` drives a local
//!   [`SessionHost`] directly (no sockets, virtual time only);
//! * the `lv-serve` daemon hosts one [`SessionHost`] behind a
//!   [`crate::transport::Transport`] and multiplexes many concurrent
//!   remote sessions over it.
//!
//! Both speak [`Request`]/[`Response`] — JSON messages wrapped in the
//! [`crate::transport::frame`] length-prefix framing — so the shell
//! and the daemon cannot drift apart: they are literally the same
//! types and the same `apply` function.
//!
//! Node names are resolved *server-side*, against the hosted network,
//! exactly like [`ShellCommand::resolve`] does for the local shell.

use crate::commands::{Command, Execution};
use crate::output;
use crate::shell::ShellCommand;
use crate::transport::{frame, PeerId};
use crate::workstation::{CommandRequest, ExecError, Workstation};
use lv_kernel::{shell_path, Network};
use lv_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Wire protocol revision; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// One framed client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen session id (unique per client endpoint).
    pub session: u32,
    /// Monotonically increasing per-session sequence number; the
    /// matching [`Response`] echoes it, and servers use it to dedupe
    /// retransmitted requests.
    pub seq: u32,
    /// The verb.
    pub body: RequestBody,
}

/// What a session asks the host to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Open (or reset) the session.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Log into a node by name (`cd 192.168.0.2`).
    Cd {
        /// Node name or full `/sn01/...` path tail.
        node: String,
    },
    /// Report the session's current node path.
    Pwd,
    /// Execute a diagnosis command on the session's current node
    /// (ping, traceroute, list, power, survey, …).
    Exec {
        /// The parsed command; names resolved server-side.
        command: ShellCommand,
    },
    /// Advance virtual time (sim-hosted deployments only).
    Run {
        /// Nanoseconds of virtual time to advance.
        nanos: u64,
    },
    /// Export the network-wide observability report.
    Report,
    /// Export the automated diagnosis engine's episode log (the shell's
    /// `report diagnose`). Answered with [`ResponseBody::Report`]
    /// carrying [`crate::DiagnosisLog`] JSON (an empty log when no
    /// engine is armed).
    ReportDiagnosis,
    /// Close the session.
    Bye,
}

/// One framed server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of [`Request::session`].
    pub session: u32,
    /// Echo of [`Request::seq`].
    pub seq: u32,
    /// The outcome.
    pub body: ResponseBody,
}

/// What the host answered.
//
// `Done` dwarfs the other variants, but responses are one-at-a-time
// wire messages, never stored in bulk — and the vendored serde has no
// `Box<T>` impls, so boxing the execution would break the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Session opened.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Nodes in the hosted deployment.
        nodes: u64,
        /// The workstation's bridge mote.
        bridge: u16,
        /// Current virtual time, nanoseconds.
        now_ns: u64,
    },
    /// `cd`/`pwd` result.
    Cwd {
        /// Resolved node id.
        node: u16,
        /// Shell path (e.g. `/sn01/192.168.0.2`).
        path: String,
    },
    /// A command finished executing.
    Done {
        /// The full execution record (result, timeline, deltas).
        execution: Execution,
        /// Paper-style rendered output lines.
        lines: Vec<String>,
    },
    /// Virtual time advanced.
    Ran {
        /// New virtual time, nanoseconds.
        now_ns: u64,
    },
    /// The observability report, JSON-encoded.
    Report {
        /// Output of [`crate::ObservabilityReport::to_json`].
        json: String,
    },
    /// Session closed.
    Bye,
    /// The request failed; the session (if any) is still open.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Errors turning bytes into protocol messages and back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The length-prefix framing was truncated or oversized.
    Frame(frame::FrameError),
    /// The payload was not valid protocol JSON.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "bad frame: {e:?}"),
            ProtoError::Malformed(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn encode_json<T: Serialize>(msg: &T) -> Vec<u8> {
    // Protocol types are plain data and always serialize; degrade to a
    // JSON null rather than aborting the host on the impossible branch.
    let json = serde_json::to_string(msg).unwrap_or_else(|_| String::from("null"));
    frame::encode(json.as_bytes())
}

fn decode_json<T: Deserialize>(bytes: &[u8]) -> Result<T, ProtoError> {
    let (payload, _) = frame::decode(bytes).map_err(ProtoError::Frame)?;
    let text = std::str::from_utf8(payload).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| ProtoError::Malformed(format!("{e:?}")))
}

impl Request {
    /// Serialize into one framed wire message.
    pub fn encode(&self) -> Vec<u8> {
        encode_json(self)
    }

    /// Parse one framed wire message.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        decode_json(bytes)
    }
}

impl Response {
    /// Serialize into one framed wire message.
    pub fn encode(&self) -> Vec<u8> {
        encode_json(self)
    }

    /// Parse one framed wire message.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        decode_json(bytes)
    }
}

/// Per-session server-side state.
#[derive(Debug, Clone, Default)]
pub struct SessionState {
    /// The node this session is logged into (`cd` target), if any.
    pub cwd: Option<u16>,
}

/// The server half of the session protocol: owns per-session state and
/// applies [`Request`]s to a hosted deployment.
///
/// Deliberately deterministic — no clocks, no randomness, sessions in
/// a `BTreeMap` — so the same host drives both the digest-stable sim
/// backend and the live daemon (which layers rate limits and idle
/// timeouts on top, where wall-clock time is legitimate).
#[derive(Default)]
pub struct SessionHost {
    sessions: BTreeMap<(PeerId, u32), SessionState>,
}

fn exec_error(e: &ExecError) -> String {
    match e {
        ExecError::NoSuchNode(name) => format!("no such node: {name}"),
        ExecError::NoCwd => "no current node — cd into one first".to_owned(),
        ExecError::UnknownNode(id) => format!("unknown node id: {id}"),
    }
}

impl SessionHost {
    /// An empty host.
    pub fn new() -> SessionHost {
        SessionHost::default()
    }

    /// Open sessions, in deterministic key order.
    pub fn session_keys(&self) -> Vec<(PeerId, u32)> {
        self.sessions.keys().copied().collect()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Forcibly drop a session (idle-timeout eviction). Returns whether
    /// it existed.
    pub fn evict(&mut self, peer: PeerId, session: u32) -> bool {
        self.sessions.remove(&(peer, session)).is_some()
    }

    /// Apply one request from `peer` against the hosted deployment and
    /// produce the response to send back.
    pub fn apply(
        &mut self,
        net: &mut Network,
        ws: &mut Workstation,
        peer: PeerId,
        req: &Request,
    ) -> Response {
        let key = (peer, req.session);
        let reply = |body: ResponseBody| Response {
            session: req.session,
            seq: req.seq,
            body,
        };
        match &req.body {
            RequestBody::Hello { version } => {
                if *version != PROTOCOL_VERSION {
                    return reply(ResponseBody::Error {
                        message: format!(
                            "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                        ),
                    });
                }
                self.sessions.insert(key, SessionState::default());
                reply(ResponseBody::Welcome {
                    version: PROTOCOL_VERSION,
                    nodes: net.node_count() as u64,
                    bridge: ws.bridge(),
                    now_ns: net.now().as_nanos(),
                })
            }
            RequestBody::Bye => {
                self.sessions.remove(&key);
                reply(ResponseBody::Bye)
            }
            body => {
                if !self.sessions.contains_key(&key) {
                    return reply(ResponseBody::Error {
                        message: "unknown session — send Hello first".to_owned(),
                    });
                }
                match body {
                    RequestBody::Cd { node } => match net.resolve(node) {
                        Some(id) => {
                            if let Some(state) = self.sessions.get_mut(&key) {
                                state.cwd = Some(id);
                            }
                            reply(ResponseBody::Cwd {
                                node: id,
                                path: shell_path(&net.node(id).name),
                            })
                        }
                        None => reply(ResponseBody::Error {
                            message: format!("no such node: {node}"),
                        }),
                    },
                    RequestBody::Pwd => {
                        let cwd = self.sessions.get(&key).and_then(|s| s.cwd);
                        match cwd {
                            Some(id) => reply(ResponseBody::Cwd {
                                node: id,
                                path: shell_path(&net.node(id).name),
                            }),
                            None => reply(ResponseBody::Error {
                                message: exec_error(&ExecError::NoCwd),
                            }),
                        }
                    }
                    RequestBody::Exec { command } => {
                        let resolved = match command.resolve(net) {
                            Ok(c) => c,
                            Err(e) => return reply(ResponseBody::Error { message: e.0 }),
                        };
                        // Aim at the broadcast group for surveys, else at
                        // the *session's* current node — many sessions
                        // share one workstation, so the workstation's own
                        // cwd is never used here.
                        let request = match resolved {
                            Command::GroupStatus => CommandRequest::survey(),
                            c => {
                                let cwd = self.sessions.get(&key).and_then(|s| s.cwd);
                                match cwd {
                                    Some(id) => CommandRequest::new(c).on(id),
                                    None => {
                                        return reply(ResponseBody::Error {
                                            message: exec_error(&ExecError::NoCwd),
                                        })
                                    }
                                }
                            }
                        };
                        match ws.exec(net, request) {
                            Ok(execution) => {
                                let lines = output::render(net, &execution);
                                reply(ResponseBody::Done { execution, lines })
                            }
                            Err(e) => reply(ResponseBody::Error {
                                message: exec_error(&e),
                            }),
                        }
                    }
                    RequestBody::Run { nanos } => {
                        net.run_for(SimDuration::from_nanos(*nanos));
                        reply(ResponseBody::Ran {
                            now_ns: net.now().as_nanos(),
                        })
                    }
                    RequestBody::Report => reply(ResponseBody::Report {
                        json: ws.report(net).to_json(),
                    }),
                    RequestBody::ReportDiagnosis => reply(ResponseBody::Report {
                        json: ws.diagnosis_log().to_json(),
                    }),
                    // Hello/Bye are consumed by the session layer
                    // before dispatch ever reaches here; answer with a
                    // protocol error instead of aborting the host.
                    RequestBody::Hello { .. } | RequestBody::Bye => reply(ResponseBody::Error {
                        message: String::from("hello/bye are session-layer messages"),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::install_suite;
    use lv_kernel::Network;
    use lv_radio::{Medium, Position, PropagationConfig};

    fn tiny_net() -> (Network, Workstation) {
        let medium = Medium::new(
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            PropagationConfig::default(),
            42,
        );
        let mut net = Network::new(medium, 42);
        install_suite(&mut net);
        net.run_for(SimDuration::from_secs(10));
        let ws = Workstation::install(&mut net, 0);
        (net, ws)
    }

    fn req(session: u32, seq: u32, body: RequestBody) -> Request {
        Request { session, seq, body }
    }

    #[test]
    fn request_and_response_roundtrip_the_wire() {
        let r = req(
            7,
            3,
            RequestBody::Exec {
                command: ShellCommand::Ping {
                    dst: "192.168.0.2".into(),
                    rounds: 2,
                    length: 32,
                    port: None,
                },
            },
        );
        let back = Request::decode(&r.encode()).unwrap();
        assert_eq!(back, r);

        let resp = Response {
            session: 7,
            seq: 3,
            body: ResponseBody::Error {
                message: "nope".into(),
            },
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(b"xx").is_err());
        let framed = frame::encode(b"{\"not\": \"a request\"}");
        assert!(Request::decode(&framed).is_err());
    }

    #[test]
    fn hello_cd_exec_bye_lifecycle() {
        let (mut net, mut ws) = tiny_net();
        let mut host = SessionHost::new();
        let peer: PeerId = 9;

        // Commands before Hello are rejected.
        let r = host.apply(&mut net, &mut ws, peer, &req(1, 0, RequestBody::Pwd));
        assert!(matches!(r.body, ResponseBody::Error { .. }));

        let r = host.apply(
            &mut net,
            &mut ws,
            peer,
            &req(
                1,
                1,
                RequestBody::Hello {
                    version: PROTOCOL_VERSION,
                },
            ),
        );
        let ResponseBody::Welcome { nodes, bridge, .. } = r.body else {
            panic!("expected Welcome, got {r:?}");
        };
        assert_eq!(nodes, 2);
        assert_eq!(bridge, 0);

        let r = host.apply(
            &mut net,
            &mut ws,
            peer,
            &req(
                1,
                2,
                RequestBody::Cd {
                    node: "192.168.0.1".into(),
                },
            ),
        );
        let ResponseBody::Cwd { node, ref path } = r.body else {
            panic!("expected Cwd, got {r:?}");
        };
        assert_eq!(node, 0);
        assert!(path.ends_with("192.168.0.1"), "{path}");

        let r = host.apply(
            &mut net,
            &mut ws,
            peer,
            &req(
                1,
                3,
                RequestBody::Exec {
                    command: ShellCommand::Ping {
                        dst: "192.168.0.2".into(),
                        rounds: 1,
                        length: 32,
                        port: None,
                    },
                },
            ),
        );
        let ResponseBody::Done { execution, lines } = r.body else {
            panic!("expected Done, got {r:?}");
        };
        // The command runs *on* the session's cwd (node 0); the ping
        // destination lives inside the command itself.
        assert_eq!(execution.target, 0);
        assert!(!lines.is_empty());

        let r = host.apply(&mut net, &mut ws, peer, &req(1, 4, RequestBody::Bye));
        assert!(matches!(r.body, ResponseBody::Bye));
        assert_eq!(host.session_count(), 0);
    }

    #[test]
    fn sessions_have_independent_cwds() {
        let (mut net, mut ws) = tiny_net();
        let mut host = SessionHost::new();
        for (peer, name) in [(1u64, "192.168.0.1"), (2u64, "192.168.0.2")] {
            host.apply(
                &mut net,
                &mut ws,
                peer,
                &req(
                    1,
                    0,
                    RequestBody::Hello {
                        version: PROTOCOL_VERSION,
                    },
                ),
            );
            host.apply(
                &mut net,
                &mut ws,
                peer,
                &req(1, 1, RequestBody::Cd { node: name.into() }),
            );
        }
        let r1 = host.apply(&mut net, &mut ws, 1, &req(1, 2, RequestBody::Pwd));
        let r2 = host.apply(&mut net, &mut ws, 2, &req(1, 2, RequestBody::Pwd));
        let (ResponseBody::Cwd { node: n1, .. }, ResponseBody::Cwd { node: n2, .. }) =
            (r1.body, r2.body)
        else {
            panic!("expected two Cwd responses");
        };
        assert_eq!((n1, n2), (0, 1));
    }

    #[test]
    fn version_mismatch_is_refused() {
        let (mut net, mut ws) = tiny_net();
        let mut host = SessionHost::new();
        let r = host.apply(
            &mut net,
            &mut ws,
            1,
            &req(1, 0, RequestBody::Hello { version: 999 }),
        );
        assert!(matches!(r.body, ResponseBody::Error { .. }));
        assert_eq!(host.session_count(), 0);
    }

    #[test]
    fn exec_without_cd_reports_no_cwd() {
        let (mut net, mut ws) = tiny_net();
        let mut host = SessionHost::new();
        host.apply(
            &mut net,
            &mut ws,
            1,
            &req(
                1,
                0,
                RequestBody::Hello {
                    version: PROTOCOL_VERSION,
                },
            ),
        );
        let r = host.apply(
            &mut net,
            &mut ws,
            1,
            &req(
                1,
                1,
                RequestBody::Exec {
                    command: ShellCommand::Status,
                },
            ),
        );
        let ResponseBody::Error { message } = r.body else {
            panic!("expected Error");
        };
        assert!(message.contains("cd"), "{message}");
    }

    #[test]
    fn report_diagnosis_returns_an_empty_log_when_unarmed() {
        let (mut net, mut ws) = tiny_net();
        let mut host = SessionHost::new();
        host.apply(
            &mut net,
            &mut ws,
            1,
            &req(
                1,
                0,
                RequestBody::Hello {
                    version: PROTOCOL_VERSION,
                },
            ),
        );
        let r = host.apply(
            &mut net,
            &mut ws,
            1,
            &req(1, 1, RequestBody::ReportDiagnosis),
        );
        let ResponseBody::Report { json } = r.body else {
            panic!("expected Report, got {:?}", r.body);
        };
        let log = crate::diagnose::DiagnosisLog::from_json(&json).expect("parseable log");
        assert_eq!(log.observations, 0);
        assert!(log.episodes.is_empty());
    }
}
