//! Wire formats of the LiteView management plane.
//!
//! "The command interpreter … translates each user command into a
//! sequence of radio messages. Each message header corresponds to one
//! unique type, while the command parameters are embedded into message
//! bodies." (Section IV.B.) This module is those message types:
//!
//! * [`MgmtRequest`] / [`MgmtResponse`] — workstation ↔ runtime
//!   controller exchanges on the management port.
//! * [`BatchMsg`] — the reliable batched transfer for multi-packet
//!   replies (neighbor tables), with per-batch acknowledgements.
//! * Probe formats for ping ([`PingProbe`], [`PingReply`]) and
//!   traceroute ([`TrProbe`], [`TrProbeReply`], [`TrTask`],
//!   [`TrReport`]).
//!
//! All formats are length-checked on decode and fit the stack's 64-byte
//! payload area.

use lv_net::padding::HopQuality;
use serde::{Deserialize, Serialize};

/// Errors shared by every decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short or length fields inconsistent.
    Truncated,
    /// Unknown message tag.
    BadTag,
}

type WireResult<T> = Result<T, WireError>;

fn need(buf: &[u8], n: usize) -> WireResult<()> {
    if buf.len() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn u16_at(buf: &[u8], off: usize) -> u16 {
    // Callers `need()` the length first; a short slice decodes as 0
    // rather than aborting the mote.
    match buf.get(off..off + 2) {
        Some(b) => u16::from_be_bytes([b[0], b[1]]),
        None => 0,
    }
}

// ---------------------------------------------------------------------
// Management commands
// ---------------------------------------------------------------------

/// A management operation the workstation can request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtCommand {
    /// Read power, channel and queue state in one round trip.
    GetStatus,
    /// Read the radio power level.
    GetPower,
    /// Set the radio power level (CC2420 `PA_LEVEL`).
    SetPower(u8),
    /// Read the radio channel.
    GetChannel,
    /// Set the radio channel (11–26).
    SetChannel(u8),
    /// Dump the kernel neighbor table (the `list` command), with or
    /// without link-quality columns.
    NeighborList {
        /// Include quality columns.
        with_quality: bool,
    },
    /// Add/remove a node to/from the blacklist.
    Blacklist {
        /// Neighbor id.
        id: u16,
        /// `true` = blacklist, `false` = un-blacklist.
        add: bool,
    },
    /// Reconfigure the beacon exchange frequency (the `update` command).
    UpdateBeacon {
        /// New period in milliseconds.
        period_ms: u32,
    },
    /// Enable/disable the node's event logging.
    SetLogging(bool),
    /// Launch the ping command on the node.
    Ping {
        /// Destination node.
        dst: u16,
        /// Number of probe rounds.
        rounds: u8,
        /// Probe length in bytes.
        length: u8,
        /// Carrying port for multi-hop probes; 0 = one-hop.
        port: u8,
    },
    /// Launch the traceroute command on the node.
    Traceroute {
        /// Destination node.
        dst: u16,
        /// Probe length in bytes.
        length: u8,
        /// Carrying port naming the routing protocol (required).
        port: u8,
    },
    /// Retrieve the node's on-demand event log (most recent entries,
    /// streamed through the batch protocol).
    ReadLog {
        /// Maximum entries to return.
        max: u8,
    },
}

/// A framed management request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgmtRequest {
    /// Correlates replies with requests.
    pub req_id: u8,
    /// Where replies go (the workstation's bridge node).
    pub reply_node: u16,
    /// Port replies go to (the interpreter's port).
    pub reply_port: u8,
    /// The operation.
    pub cmd: MgmtCommand,
}

impl MgmtRequest {
    /// Outer frame tag distinguishing requests from batch acks sharing
    /// the management port.
    pub const TAG: u8 = 0x20;

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![Self::TAG];
        b.push(self.req_id);
        b.extend_from_slice(&self.reply_node.to_be_bytes());
        b.push(self.reply_port);
        match &self.cmd {
            MgmtCommand::GetStatus => b.push(0x01),
            MgmtCommand::GetPower => b.push(0x02),
            MgmtCommand::SetPower(p) => {
                b.push(0x03);
                b.push(*p);
            }
            MgmtCommand::GetChannel => b.push(0x04),
            MgmtCommand::SetChannel(c) => {
                b.push(0x05);
                b.push(*c);
            }
            MgmtCommand::NeighborList { with_quality } => {
                b.push(0x06);
                b.push(u8::from(*with_quality));
            }
            MgmtCommand::Blacklist { id, add } => {
                b.push(0x07);
                b.extend_from_slice(&id.to_be_bytes());
                b.push(u8::from(*add));
            }
            MgmtCommand::UpdateBeacon { period_ms } => {
                b.push(0x08);
                b.extend_from_slice(&period_ms.to_be_bytes());
            }
            MgmtCommand::SetLogging(on) => {
                b.push(0x09);
                b.push(u8::from(*on));
            }
            MgmtCommand::Ping {
                dst,
                rounds,
                length,
                port,
            } => {
                b.push(0x0A);
                b.extend_from_slice(&dst.to_be_bytes());
                b.push(*rounds);
                b.push(*length);
                b.push(*port);
            }
            MgmtCommand::Traceroute { dst, length, port } => {
                b.push(0x0B);
                b.extend_from_slice(&dst.to_be_bytes());
                b.push(*length);
                b.push(*port);
            }
            MgmtCommand::ReadLog { max } => {
                b.push(0x0C);
                b.push(*max);
            }
        }
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<MgmtRequest> {
        need(buf, 6)?;
        if buf[0] != Self::TAG {
            return Err(WireError::BadTag);
        }
        let req_id = buf[1];
        let reply_node = u16_at(buf, 2);
        let reply_port = buf[4];
        let tag = buf[5];
        let rest = &buf[6..];
        let cmd = match tag {
            0x01 => MgmtCommand::GetStatus,
            0x02 => MgmtCommand::GetPower,
            0x03 => {
                need(rest, 1)?;
                MgmtCommand::SetPower(rest[0])
            }
            0x04 => MgmtCommand::GetChannel,
            0x05 => {
                need(rest, 1)?;
                MgmtCommand::SetChannel(rest[0])
            }
            0x06 => {
                need(rest, 1)?;
                MgmtCommand::NeighborList {
                    with_quality: rest[0] != 0,
                }
            }
            0x07 => {
                need(rest, 3)?;
                MgmtCommand::Blacklist {
                    id: u16_at(rest, 0),
                    add: rest[2] != 0,
                }
            }
            0x08 => {
                need(rest, 4)?;
                MgmtCommand::UpdateBeacon {
                    period_ms: u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]),
                }
            }
            0x09 => {
                need(rest, 1)?;
                MgmtCommand::SetLogging(rest[0] != 0)
            }
            0x0A => {
                need(rest, 5)?;
                MgmtCommand::Ping {
                    dst: u16_at(rest, 0),
                    rounds: rest[2],
                    length: rest[3],
                    port: rest[4],
                }
            }
            0x0B => {
                need(rest, 4)?;
                MgmtCommand::Traceroute {
                    dst: u16_at(rest, 0),
                    length: rest[2],
                    port: rest[3],
                }
            }
            0x0C => {
                need(rest, 1)?;
                MgmtCommand::ReadLog { max: rest[0] }
            }
            _ => return Err(WireError::BadTag),
        };
        Ok(MgmtRequest {
            req_id,
            reply_node,
            reply_port,
            cmd,
        })
    }
}

// ---------------------------------------------------------------------
// Management replies
// ---------------------------------------------------------------------

/// A neighbor-table row on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireNeighbor {
    /// Neighbor id.
    pub id: u16,
    /// Inbound quality byte (0–255).
    pub inbound_q: u8,
    /// Outbound quality byte, if known.
    pub outbound_q: Option<u8>,
    /// Blacklist bit.
    pub blacklisted: bool,
    /// Advertised tree gradient.
    pub tree_hops: u8,
    /// Neighbor name (≤ 15 bytes).
    pub name: String,
}

impl WireNeighbor {
    fn encode_into(&self, b: &mut Vec<u8>) {
        b.extend_from_slice(&self.id.to_be_bytes());
        b.push(self.inbound_q);
        b.push(self.outbound_q.unwrap_or(0));
        let mut flags = 0u8;
        if self.blacklisted {
            flags |= 1;
        }
        if self.outbound_q.is_some() {
            flags |= 2;
        }
        b.push(flags);
        b.push(self.tree_hops);
        let name = &self.name.as_bytes()[..self.name.len().min(15)];
        b.push(name.len() as u8);
        b.extend_from_slice(name);
    }

    fn decode_from(buf: &[u8]) -> WireResult<(WireNeighbor, usize)> {
        need(buf, 7)?;
        let id = u16_at(buf, 0);
        let inbound_q = buf[2];
        let out_raw = buf[3];
        let flags = buf[4];
        let tree_hops = buf[5];
        let name_len = buf[6] as usize;
        need(buf, 7 + name_len)?;
        let name =
            String::from_utf8(buf[7..7 + name_len].to_vec()).map_err(|_| WireError::Truncated)?;
        Ok((
            WireNeighbor {
                id,
                inbound_q,
                outbound_q: (flags & 2 != 0).then_some(out_raw),
                blacklisted: flags & 1 != 0,
                tree_hops,
                name,
            },
            7 + name_len,
        ))
    }

    /// Encode a run of rows.
    pub fn encode_list(rows: &[WireNeighbor]) -> Vec<u8> {
        let mut b = vec![rows.len() as u8];
        for r in rows {
            r.encode_into(&mut b);
        }
        b
    }

    /// Decode a run of rows.
    pub fn decode_list(buf: &[u8]) -> WireResult<Vec<WireNeighbor>> {
        need(buf, 1)?;
        let n = buf[0] as usize;
        let mut off = 1;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let (row, used) = Self::decode_from(&buf[off..])?;
            rows.push(row);
            off += used;
        }
        Ok(rows)
    }
}

/// One measured ping round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PingRound {
    /// Probe sequence number.
    pub seq: u8,
    /// Round-trip time in microseconds.
    pub rtt_us: u32,
    /// LQI of the forward direction (measured at the responder).
    pub lqi_fwd: u8,
    /// LQI of the backward direction (measured at the prober).
    pub lqi_bwd: u8,
    /// RSSI forward.
    pub rssi_fwd: i8,
    /// RSSI backward.
    pub rssi_bwd: i8,
    /// Responder transmit-queue occupancy at probe time.
    pub queue_fwd: u8,
    /// Prober transmit-queue occupancy at reply time.
    pub queue_bwd: u8,
    /// Per-hop forward qualities (multi-hop ping padding data).
    pub fwd_hops: Vec<HopQuality>,
    /// Per-hop backward qualities.
    pub bwd_hops: Vec<HopQuality>,
}

impl PingRound {
    fn encode_into(&self, b: &mut Vec<u8>) {
        b.push(self.seq);
        b.extend_from_slice(&self.rtt_us.to_be_bytes());
        b.push(self.lqi_fwd);
        b.push(self.lqi_bwd);
        b.push(self.rssi_fwd as u8);
        b.push(self.rssi_bwd as u8);
        b.push(self.queue_fwd);
        b.push(self.queue_bwd);
        b.push(self.fwd_hops.len() as u8);
        for h in &self.fwd_hops {
            h.append_to(b);
        }
        b.push(self.bwd_hops.len() as u8);
        for h in &self.bwd_hops {
            h.append_to(b);
        }
    }

    fn decode_from(buf: &[u8]) -> WireResult<(PingRound, usize)> {
        need(buf, 12)?;
        let seq = buf[0];
        let rtt_us = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
        let lqi_fwd = buf[5];
        let lqi_bwd = buf[6];
        let rssi_fwd = buf[7] as i8;
        let rssi_bwd = buf[8] as i8;
        let queue_fwd = buf[9];
        let queue_bwd = buf[10];
        let nf = buf[11] as usize;
        need(buf, 12 + 2 * nf + 1)?;
        let fwd_hops = HopQuality::parse_all(&buf[12..12 + 2 * nf]);
        let off = 12 + 2 * nf;
        let nb = buf[off] as usize;
        need(buf, off + 1 + 2 * nb)?;
        let bwd_hops = HopQuality::parse_all(&buf[off + 1..off + 1 + 2 * nb]);
        Ok((
            PingRound {
                seq,
                rtt_us,
                lqi_fwd,
                lqi_bwd,
                rssi_fwd,
                rssi_bwd,
                queue_fwd,
                queue_bwd,
                fwd_hops,
                bwd_hops,
            },
            off + 1 + 2 * nb,
        ))
    }
}

/// The ping command's summary back to the workstation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingSummary {
    /// Probed node.
    pub target: u16,
    /// Probes sent.
    pub sent: u8,
    /// Replies received.
    pub received: u8,
    /// The prober's power level (printed in the sample output).
    pub power: u8,
    /// The prober's channel.
    pub channel: u8,
    /// Measured rounds (lost rounds are simply absent).
    pub rounds: Vec<PingRound>,
}

impl PingSummary {
    /// Truncate the summary so its enclosing [`MgmtResponse`] fits the
    /// 64-byte payload area: rounds are kept in order, per-round hop
    /// lists shrink first (forward kept preferentially — that is the
    /// path profile the user asked for), then whole rounds are dropped.
    /// The full hop data still reached the prober over the air; only
    /// this last workstation-bound packet is bounded.
    pub fn fit_to_wire(&mut self) {
        // MgmtResponse framing (5) + summary header (7).
        const BUDGET: usize = lv_net::packet::PAYLOAD_AREA - 12;
        let mut used = 0usize;
        let mut kept = 0usize;
        for r in self.rounds.iter_mut() {
            let base = 13; // seq + rtt + lqi×2 + rssi×2 + queue×2 + 2 counts
            if used + base > BUDGET {
                break;
            }
            let hop_budget = (BUDGET - used - base) / HopQuality::WIRE_BYTES;
            if r.fwd_hops.len() > hop_budget {
                r.fwd_hops.truncate(hop_budget);
            }
            let rest = hop_budget - r.fwd_hops.len();
            if r.bwd_hops.len() > rest {
                r.bwd_hops.truncate(rest);
            }
            used += base + HopQuality::WIRE_BYTES * (r.fwd_hops.len() + r.bwd_hops.len());
            kept += 1;
        }
        self.rounds.truncate(kept);
    }
}

/// One traceroute hop record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    /// 1-based hop index along the path.
    pub hop_index: u8,
    /// The far end of this hop (the node that replied).
    pub far: u16,
    /// Whether the far end is the final destination.
    pub reached_dst: bool,
    /// The hop task found no next hop.
    pub no_route: bool,
    /// The probe or its reply was lost.
    pub probe_lost: bool,
    /// Per-hop round-trip time in microseconds.
    pub rtt_us: u32,
    /// LQI forward / backward.
    pub lqi_fwd: u8,
    /// LQI backward.
    pub lqi_bwd: u8,
    /// RSSI forward.
    pub rssi_fwd: i8,
    /// RSSI backward.
    pub rssi_bwd: i8,
    /// Queue occupancy at the far end / near end.
    pub queue_fwd: u8,
    /// Near-end queue occupancy.
    pub queue_bwd: u8,
}

impl HopRecord {
    fn flags(&self) -> u8 {
        u8::from(self.reached_dst)
            | (u8::from(self.no_route) << 1)
            | (u8::from(self.probe_lost) << 2)
    }

    fn encode_into(&self, b: &mut Vec<u8>) {
        b.push(self.hop_index);
        b.extend_from_slice(&self.far.to_be_bytes());
        b.push(self.flags());
        b.extend_from_slice(&self.rtt_us.to_be_bytes());
        b.push(self.lqi_fwd);
        b.push(self.lqi_bwd);
        b.push(self.rssi_fwd as u8);
        b.push(self.rssi_bwd as u8);
        b.push(self.queue_fwd);
        b.push(self.queue_bwd);
    }

    fn decode_from(buf: &[u8]) -> WireResult<HopRecord> {
        need(buf, 14)?;
        Ok(HopRecord {
            hop_index: buf[0],
            far: u16_at(buf, 1),
            reached_dst: buf[3] & 1 != 0,
            no_route: buf[3] & 2 != 0,
            probe_lost: buf[3] & 4 != 0,
            rtt_us: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            lqi_fwd: buf[8],
            lqi_bwd: buf[9],
            rssi_fwd: buf[10] as i8,
            rssi_bwd: buf[11] as i8,
            queue_fwd: buf[12],
            queue_bwd: buf[13],
        })
    }

    /// Byte size of one record.
    pub const WIRE_BYTES: usize = 14;
}

/// Replies flowing back to the workstation's interpreter port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtReply {
    /// Generic success.
    Ok,
    /// Power / channel / queue / neighbor-count snapshot.
    Status {
        /// Power level.
        power: u8,
        /// Channel.
        channel: u8,
        /// Transmit-queue occupancy.
        queue: u8,
        /// Neighbor-table size.
        neighbors: u8,
    },
    /// Current power level.
    Power(u8),
    /// Current channel.
    Channel(u8),
    /// Ping finished.
    PingSummary(PingSummary),
    /// Traceroute accepted; names the carrying protocol.
    TracerouteInfo {
        /// e.g. "geographic forwarding".
        protocol: String,
    },
    /// One hop's report, relayed live as it reaches the source.
    TracerouteHop(HopRecord),
    /// Traceroute finished.
    TracerouteDone {
        /// Hop reports relayed.
        hops: u8,
        /// Whether the destination was reached.
        reached: bool,
    },
    /// Command failed (code is deliberately coarse, like an errno).
    Error(u8),
}

/// A framed management response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgmtResponse {
    /// Echoed request id.
    pub req_id: u8,
    /// The replying node.
    pub from: u16,
    /// The payload.
    pub reply: MgmtReply,
}

impl MgmtResponse {
    /// Outer frame tag distinguishing responses from batch data sharing
    /// the workstation port.
    pub const TAG: u8 = 0x30;

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![Self::TAG, self.req_id];
        b.extend_from_slice(&self.from.to_be_bytes());
        match &self.reply {
            MgmtReply::Ok => b.push(0x80),
            MgmtReply::Status {
                power,
                channel,
                queue,
                neighbors,
            } => {
                b.push(0x81);
                b.extend_from_slice(&[*power, *channel, *queue, *neighbors]);
            }
            MgmtReply::Power(p) => {
                b.push(0x82);
                b.push(*p);
            }
            MgmtReply::Channel(c) => {
                b.push(0x83);
                b.push(*c);
            }
            MgmtReply::PingSummary(s) => {
                b.push(0x84);
                b.extend_from_slice(&s.target.to_be_bytes());
                b.extend_from_slice(&[s.sent, s.received, s.power, s.channel]);
                b.push(s.rounds.len() as u8);
                for r in &s.rounds {
                    r.encode_into(&mut b);
                }
            }
            MgmtReply::TracerouteInfo { protocol } => {
                b.push(0x85);
                let name = &protocol.as_bytes()[..protocol.len().min(30)];
                b.push(name.len() as u8);
                b.extend_from_slice(name);
            }
            MgmtReply::TracerouteHop(h) => {
                b.push(0x86);
                h.encode_into(&mut b);
            }
            MgmtReply::TracerouteDone { hops, reached } => {
                b.push(0x87);
                b.push(*hops);
                b.push(u8::from(*reached));
            }
            MgmtReply::Error(code) => {
                b.push(0xFF);
                b.push(*code);
            }
        }
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<MgmtResponse> {
        need(buf, 5)?;
        if buf[0] != Self::TAG {
            return Err(WireError::BadTag);
        }
        let req_id = buf[1];
        let from = u16_at(buf, 2);
        let tag = buf[4];
        let rest = &buf[5..];
        let reply = match tag {
            0x80 => MgmtReply::Ok,
            0x81 => {
                need(rest, 4)?;
                MgmtReply::Status {
                    power: rest[0],
                    channel: rest[1],
                    queue: rest[2],
                    neighbors: rest[3],
                }
            }
            0x82 => {
                need(rest, 1)?;
                MgmtReply::Power(rest[0])
            }
            0x83 => {
                need(rest, 1)?;
                MgmtReply::Channel(rest[0])
            }
            0x84 => {
                need(rest, 7)?;
                let target = u16_at(rest, 0);
                let (sent, received, power, channel) = (rest[2], rest[3], rest[4], rest[5]);
                let n = rest[6] as usize;
                let mut off = 7;
                let mut rounds = Vec::with_capacity(n);
                for _ in 0..n {
                    let (r, used) = PingRound::decode_from(&rest[off..])?;
                    rounds.push(r);
                    off += used;
                }
                MgmtReply::PingSummary(PingSummary {
                    target,
                    sent,
                    received,
                    power,
                    channel,
                    rounds,
                })
            }
            0x85 => {
                need(rest, 1)?;
                let n = rest[0] as usize;
                need(rest, 1 + n)?;
                MgmtReply::TracerouteInfo {
                    protocol: String::from_utf8(rest[1..1 + n].to_vec())
                        .map_err(|_| WireError::Truncated)?,
                }
            }
            0x86 => MgmtReply::TracerouteHop(HopRecord::decode_from(rest)?),
            0x87 => {
                need(rest, 2)?;
                MgmtReply::TracerouteDone {
                    hops: rest[0],
                    reached: rest[1] != 0,
                }
            }
            0xFF => {
                need(rest, 1)?;
                MgmtReply::Error(rest[0])
            }
            _ => return Err(WireError::BadTag),
        };
        Ok(MgmtResponse {
            req_id,
            from,
            reply,
        })
    }
}

/// One event-log record on the wire (fields truncated to mote-scale
/// budgets: the log exists for diagnosis, not archival).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireLogEntry {
    /// Event time in milliseconds since node boot.
    pub time_ms: u32,
    /// Short event code (≤ 10 bytes on the wire).
    pub code: String,
    /// Detail text (≤ 18 bytes on the wire).
    pub detail: String,
}

impl WireLogEntry {
    /// Wire caps.
    pub const MAX_CODE: usize = 10;
    /// Detail cap.
    pub const MAX_DETAIL: usize = 18;

    fn encode_into(&self, b: &mut Vec<u8>) {
        b.extend_from_slice(&self.time_ms.to_be_bytes());
        let code = &self.code.as_bytes()[..self.code.len().min(Self::MAX_CODE)];
        b.push(code.len() as u8);
        b.extend_from_slice(code);
        let detail = truncate_utf8(&self.detail, Self::MAX_DETAIL);
        b.push(detail.len() as u8);
        b.extend_from_slice(detail.as_bytes());
    }

    fn decode_from(buf: &[u8]) -> WireResult<(WireLogEntry, usize)> {
        need(buf, 5)?;
        let time_ms = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let code_len = buf[4] as usize;
        need(buf, 5 + code_len + 1)?;
        let code =
            String::from_utf8(buf[5..5 + code_len].to_vec()).map_err(|_| WireError::Truncated)?;
        let off = 5 + code_len;
        let detail_len = buf[off] as usize;
        need(buf, off + 1 + detail_len)?;
        let detail = String::from_utf8(buf[off + 1..off + 1 + detail_len].to_vec())
            .map_err(|_| WireError::Truncated)?;
        Ok((
            WireLogEntry {
                time_ms,
                code,
                detail,
            },
            off + 1 + detail_len,
        ))
    }

    /// Encode a run of records.
    pub fn encode_list(rows: &[WireLogEntry]) -> Vec<u8> {
        let mut b = vec![rows.len() as u8];
        for r in rows {
            r.encode_into(&mut b);
        }
        b
    }

    /// Decode a run of records.
    pub fn decode_list(buf: &[u8]) -> WireResult<Vec<WireLogEntry>> {
        need(buf, 1)?;
        let n = buf[0] as usize;
        let mut off = 1;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let (row, used) = Self::decode_from(&buf[off..])?;
            rows.push(row);
            off += used;
        }
        Ok(rows)
    }
}

/// Truncate a string at a char boundary within `max` bytes.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

// ---------------------------------------------------------------------
// Batched transfer (reliable multi-packet replies)
// ---------------------------------------------------------------------

/// Chunked-transfer frames for multi-packet replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchMsg {
    /// One chunk.
    Data {
        /// Request this transfer answers.
        req_id: u8,
        /// Chunk index.
        seq: u8,
        /// Total chunks in the transfer.
        total: u8,
        /// Receiver should acknowledge after this chunk (batch edge).
        ack_after: bool,
        /// Chunk payload.
        payload: Vec<u8>,
    },
    /// Per-batch acknowledgement.
    Ack {
        /// Request id.
        req_id: u8,
        /// Chunk indices (≤ the highest seen) still missing.
        missing: Vec<u8>,
    },
}

impl BatchMsg {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BatchMsg::Data {
                req_id,
                seq,
                total,
                ack_after,
                payload,
            } => {
                let mut b = vec![0x40, *req_id, *seq, *total, u8::from(*ack_after)];
                b.extend_from_slice(payload);
                b
            }
            BatchMsg::Ack { req_id, missing } => {
                let mut b = vec![0x41, *req_id, missing.len() as u8];
                b.extend_from_slice(missing);
                b
            }
        }
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<BatchMsg> {
        need(buf, 2)?;
        match buf[0] {
            0x40 => {
                need(buf, 5)?;
                Ok(BatchMsg::Data {
                    req_id: buf[1],
                    seq: buf[2],
                    total: buf[3],
                    ack_after: buf[4] != 0,
                    payload: buf[5..].to_vec(),
                })
            }
            0x41 => {
                need(buf, 3)?;
                let n = buf[2] as usize;
                need(buf, 3 + n)?;
                Ok(BatchMsg::Ack {
                    req_id: buf[1],
                    missing: buf[3..3 + n].to_vec(),
                })
            }
            _ => Err(WireError::BadTag),
        }
    }
}

// ---------------------------------------------------------------------
// Ping probes
// ---------------------------------------------------------------------

/// A ping probe (padded with zeros to the requested length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingProbe {
    /// Prober-chosen session id.
    pub session: u16,
    /// Round number.
    pub seq: u8,
    /// Port the reply should target on the prober.
    pub reply_port: u8,
}

impl PingProbe {
    /// Serialize, padding the payload with zeros to `length` bytes
    /// (minimum: the 5-byte header).
    pub fn encode(&self, length: usize) -> Vec<u8> {
        let mut b = vec![0x50];
        b.extend_from_slice(&self.session.to_be_bytes());
        b.push(self.seq);
        b.push(self.reply_port);
        while b.len() < length.min(lv_net::packet::PAYLOAD_AREA) {
            b.push(0);
        }
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<PingProbe> {
        need(buf, 5)?;
        if buf[0] != 0x50 {
            return Err(WireError::BadTag);
        }
        Ok(PingProbe {
            session: u16_at(buf, 1),
            seq: buf[3],
            reply_port: buf[4],
        })
    }
}

/// A ping reply, carrying the responder-side link measurements and the
/// forward-path padding data echoed out of the probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingReply {
    /// Echoed session.
    pub session: u16,
    /// Echoed round.
    pub seq: u8,
    /// LQI of the incoming probe at the responder.
    pub lqi_in: u8,
    /// RSSI of the incoming probe.
    pub rssi_in: i8,
    /// Responder transmit-queue occupancy.
    pub queue: u8,
    /// Per-hop forward qualities (from the probe's padding).
    pub fwd_hops: Vec<HopQuality>,
}

impl PingReply {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0x51];
        b.extend_from_slice(&self.session.to_be_bytes());
        b.push(self.seq);
        b.push(self.lqi_in);
        b.push(self.rssi_in as u8);
        b.push(self.queue);
        b.push(self.fwd_hops.len() as u8);
        for h in &self.fwd_hops {
            h.append_to(&mut b);
        }
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<PingReply> {
        need(buf, 8)?;
        if buf[0] != 0x51 {
            return Err(WireError::BadTag);
        }
        let n = buf[7] as usize;
        need(buf, 8 + 2 * n)?;
        Ok(PingReply {
            session: u16_at(buf, 1),
            seq: buf[3],
            lqi_in: buf[4],
            rssi_in: buf[5] as i8,
            queue: buf[6],
            fwd_hops: HopQuality::parse_all(&buf[8..8 + 2 * n]),
        })
    }
}

// ---------------------------------------------------------------------
// Traceroute messages
// ---------------------------------------------------------------------

/// A traceroute one-hop probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrProbe {
    /// Session id.
    pub session: u16,
    /// Hop index being probed.
    pub seq: u8,
    /// Port the reply targets on the probing node.
    pub reply_port: u8,
}

impl TrProbe {
    /// Serialize (padded to `length`).
    pub fn encode(&self, length: usize) -> Vec<u8> {
        let mut b = vec![0x60];
        b.extend_from_slice(&self.session.to_be_bytes());
        b.push(self.seq);
        b.push(self.reply_port);
        while b.len() < length.min(lv_net::packet::PAYLOAD_AREA) {
            b.push(0);
        }
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<TrProbe> {
        need(buf, 5)?;
        if buf[0] != 0x60 {
            return Err(WireError::BadTag);
        }
        Ok(TrProbe {
            session: u16_at(buf, 1),
            seq: buf[3],
            reply_port: buf[4],
        })
    }
}

/// The immediate reply to a traceroute probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrProbeReply {
    /// Echoed session.
    pub session: u16,
    /// Echoed hop index.
    pub seq: u8,
    /// LQI of the incoming probe at the far end.
    pub lqi_in: u8,
    /// RSSI of the incoming probe.
    pub rssi_in: i8,
    /// Far-end queue occupancy.
    pub queue: u8,
}

impl TrProbeReply {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        vec![
            0x61,
            (self.session >> 8) as u8,
            self.session as u8,
            self.seq,
            self.lqi_in,
            self.rssi_in as u8,
            self.queue,
        ]
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<TrProbeReply> {
        need(buf, 7)?;
        if buf[0] != 0x61 {
            return Err(WireError::BadTag);
        }
        Ok(TrProbeReply {
            session: u16_at(buf, 1),
            seq: buf[3],
            lqi_in: buf[4],
            rssi_in: buf[5] as i8,
            queue: buf[6],
        })
    }
}

/// The per-hop task handoff ("initiate a new traceroute task").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrTask {
    /// Session id.
    pub session: u16,
    /// The source node collecting reports.
    pub origin: u16,
    /// The source's session port.
    pub origin_port: u8,
    /// Final destination.
    pub dst: u16,
    /// Carrying (routing) port for reports and route queries.
    pub carry_port: u8,
    /// 1-based index of the hop this task must probe.
    pub hop_index: u8,
    /// Probe length.
    pub length: u8,
}

impl TrTask {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0x62];
        b.extend_from_slice(&self.session.to_be_bytes());
        b.extend_from_slice(&self.origin.to_be_bytes());
        b.push(self.origin_port);
        b.extend_from_slice(&self.dst.to_be_bytes());
        b.push(self.carry_port);
        b.push(self.hop_index);
        b.push(self.length);
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<TrTask> {
        need(buf, 11)?;
        if buf[0] != 0x62 {
            return Err(WireError::BadTag);
        }
        Ok(TrTask {
            session: u16_at(buf, 1),
            origin: u16_at(buf, 3),
            origin_port: buf[5],
            dst: u16_at(buf, 6),
            carry_port: buf[8],
            hop_index: buf[9],
            length: buf[10],
        })
    }
}

/// A hop report on its way back to the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrReport {
    /// Session id.
    pub session: u16,
    /// The record.
    pub record: HopRecord,
}

impl TrReport {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0x63];
        b.extend_from_slice(&self.session.to_be_bytes());
        self.record.encode_into(&mut b);
        b
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> WireResult<TrReport> {
        need(buf, 3 + HopRecord::WIRE_BYTES)?;
        if buf[0] != 0x63 {
            return Err(WireError::BadTag);
        }
        Ok(TrReport {
            session: u16_at(buf, 1),
            record: HopRecord::decode_from(&buf[3..])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hops() -> Vec<HopQuality> {
        vec![
            HopQuality { lqi: 108, rssi: -1 },
            HopQuality { lqi: 105, rssi: 8 },
        ]
    }

    #[test]
    fn mgmt_request_round_trip_all_variants() {
        let cmds = vec![
            MgmtCommand::GetStatus,
            MgmtCommand::GetPower,
            MgmtCommand::SetPower(10),
            MgmtCommand::GetChannel,
            MgmtCommand::SetChannel(17),
            MgmtCommand::NeighborList { with_quality: true },
            MgmtCommand::NeighborList {
                with_quality: false,
            },
            MgmtCommand::Blacklist { id: 300, add: true },
            MgmtCommand::UpdateBeacon { period_ms: 1500 },
            MgmtCommand::SetLogging(true),
            MgmtCommand::Ping {
                dst: 2,
                rounds: 3,
                length: 32,
                port: 0,
            },
            MgmtCommand::Traceroute {
                dst: 8,
                length: 32,
                port: 10,
            },
            MgmtCommand::ReadLog { max: 24 },
        ];
        for cmd in cmds {
            let req = MgmtRequest {
                req_id: 7,
                reply_node: 0,
                reply_port: 4,
                cmd: cmd.clone(),
            };
            let decoded = MgmtRequest::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req, "{cmd:?}");
        }
    }

    #[test]
    fn mgmt_response_round_trip_all_variants() {
        let replies = vec![
            MgmtReply::Ok,
            MgmtReply::Status {
                power: 31,
                channel: 17,
                queue: 0,
                neighbors: 5,
            },
            MgmtReply::Power(25),
            MgmtReply::Channel(11),
            MgmtReply::PingSummary(PingSummary {
                target: 2,
                sent: 2,
                received: 1,
                power: 31,
                channel: 17,
                rounds: vec![PingRound {
                    seq: 0,
                    rtt_us: 4700,
                    lqi_fwd: 108,
                    lqi_bwd: 106,
                    rssi_fwd: -1,
                    rssi_bwd: 8,
                    queue_fwd: 0,
                    queue_bwd: 0,
                    fwd_hops: hops(),
                    bwd_hops: vec![],
                }],
            }),
            MgmtReply::TracerouteInfo {
                protocol: "geographic forwarding".into(),
            },
            MgmtReply::TracerouteHop(HopRecord {
                hop_index: 2,
                far: 3,
                reached_dst: true,
                no_route: false,
                probe_lost: false,
                rtt_us: 4900,
                lqi_fwd: 106,
                lqi_bwd: 107,
                rssi_fwd: 1,
                rssi_bwd: 2,
                queue_fwd: 0,
                queue_bwd: 0,
            }),
            MgmtReply::TracerouteDone {
                hops: 8,
                reached: true,
            },
            MgmtReply::Error(3),
        ];
        for reply in replies {
            let resp = MgmtResponse {
                req_id: 9,
                from: 4,
                reply: reply.clone(),
            };
            let decoded = MgmtResponse::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp, "{reply:?}");
        }
    }

    #[test]
    fn neighbor_list_round_trip() {
        let rows = vec![
            WireNeighbor {
                id: 3,
                inbound_q: 240,
                outbound_q: Some(200),
                blacklisted: false,
                tree_hops: 2,
                name: "192.168.0.4".into(),
            },
            WireNeighbor {
                id: 9,
                inbound_q: 90,
                outbound_q: None,
                blacklisted: true,
                tree_hops: 255,
                name: "".into(),
            },
        ];
        let decoded = WireNeighbor::decode_list(&WireNeighbor::encode_list(&rows)).unwrap();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn log_entry_list_round_trip() {
        let rows = vec![
            WireLogEntry {
                time_ms: 25_000,
                code: "mgmt".into(),
                detail: "request GetPower".into(),
            },
            WireLogEntry {
                time_ms: 25_400,
                code: "ping".into(),
                detail: "done: 1/1".into(),
            },
        ];
        let decoded = WireLogEntry::decode_list(&WireLogEntry::encode_list(&rows)).unwrap();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn log_entry_truncates_to_caps() {
        let row = WireLogEntry {
            time_ms: 1,
            code: "a-code-name-way-too-long".into(),
            detail: "a very long detail string exceeding the cap".into(),
        };
        let decoded = WireLogEntry::decode_list(&WireLogEntry::encode_list(&[row])).unwrap();
        assert_eq!(decoded[0].code.len(), WireLogEntry::MAX_CODE);
        assert_eq!(decoded[0].detail.len(), WireLogEntry::MAX_DETAIL);
    }

    #[test]
    fn batch_round_trip() {
        let msgs = vec![
            BatchMsg::Data {
                req_id: 1,
                seq: 2,
                total: 5,
                ack_after: true,
                payload: vec![1, 2, 3],
            },
            BatchMsg::Ack {
                req_id: 1,
                missing: vec![0, 3],
            },
            BatchMsg::Ack {
                req_id: 1,
                missing: vec![],
            },
        ];
        for m in msgs {
            assert_eq!(BatchMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn ping_probe_padding_to_length() {
        let p = PingProbe {
            session: 0x1234,
            seq: 3,
            reply_port: 101,
        };
        let bytes = p.encode(32);
        assert_eq!(bytes.len(), 32);
        assert_eq!(PingProbe::decode(&bytes).unwrap(), p);
        // Length below the header floor keeps the header.
        assert_eq!(p.encode(2).len(), 5);
    }

    #[test]
    fn ping_reply_round_trip() {
        let r = PingReply {
            session: 7,
            seq: 0,
            lqi_in: 108,
            rssi_in: -1,
            queue: 0,
            fwd_hops: hops(),
        };
        assert_eq!(PingReply::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn traceroute_messages_round_trip() {
        let probe = TrProbe {
            session: 55,
            seq: 2,
            reply_port: 120,
        };
        assert_eq!(TrProbe::decode(&probe.encode(32)).unwrap(), probe);
        let reply = TrProbeReply {
            session: 55,
            seq: 2,
            lqi_in: 105,
            rssi_in: -3,
            queue: 1,
        };
        assert_eq!(TrProbeReply::decode(&reply.encode()).unwrap(), reply);
        let task = TrTask {
            session: 55,
            origin: 1,
            origin_port: 120,
            dst: 8,
            carry_port: 10,
            hop_index: 3,
            length: 32,
        };
        assert_eq!(TrTask::decode(&task.encode()).unwrap(), task);
        let report = TrReport {
            session: 55,
            record: HopRecord {
                hop_index: 3,
                far: 4,
                reached_dst: false,
                no_route: false,
                probe_lost: true,
                rtt_us: 0,
                lqi_fwd: 0,
                lqi_bwd: 0,
                rssi_fwd: 0,
                rssi_bwd: 0,
                queue_fwd: 0,
                queue_bwd: 0,
            },
        };
        assert_eq!(TrReport::decode(&report.encode()).unwrap(), report);
    }

    #[test]
    fn decoders_reject_garbage() {
        assert_eq!(MgmtRequest::decode(&[]), Err(WireError::Truncated));
        assert_eq!(
            MgmtRequest::decode(&[0x20, 1, 0, 0, 4, 0x7E]),
            Err(WireError::BadTag)
        );
        assert_eq!(
            MgmtRequest::decode(&[0x21, 1, 0, 0, 4, 0x01]),
            Err(WireError::BadTag)
        );
        assert_eq!(
            MgmtResponse::decode(&[0x30, 0, 0, 0, 0x20]),
            Err(WireError::BadTag)
        );
        assert_eq!(
            MgmtResponse::decode(&[0x31, 0, 0, 0, 0x80]),
            Err(WireError::BadTag)
        );
        assert_eq!(BatchMsg::decode(&[0x99, 0]), Err(WireError::BadTag));
        assert_eq!(
            PingProbe::decode(&[0x51, 0, 0, 0, 0]),
            Err(WireError::BadTag)
        );
        assert_eq!(TrTask::decode(&[0x62, 0]), Err(WireError::Truncated));
    }

    #[test]
    fn everything_fits_payload_area() {
        // The fattest messages must fit 64 bytes.
        let summary = MgmtResponse {
            req_id: 1,
            from: 2,
            reply: MgmtReply::PingSummary(PingSummary {
                target: 2,
                sent: 1,
                received: 1,
                power: 31,
                channel: 17,
                rounds: vec![PingRound {
                    seq: 0,
                    rtt_us: 4700,
                    lqi_fwd: 108,
                    lqi_bwd: 106,
                    rssi_fwd: -1,
                    rssi_bwd: 8,
                    queue_fwd: 0,
                    queue_bwd: 0,
                    fwd_hops: vec![HopQuality { lqi: 0, rssi: 0 }; 8],
                    bwd_hops: vec![HopQuality { lqi: 0, rssi: 0 }; 8],
                }],
            }),
        };
        assert!(summary.encode().len() <= lv_net::packet::PAYLOAD_AREA);
        let hop = MgmtResponse {
            req_id: 1,
            from: 2,
            reply: MgmtReply::TracerouteHop(HopRecord {
                hop_index: 8,
                far: 9,
                reached_dst: true,
                no_route: false,
                probe_lost: false,
                rtt_us: u32::MAX,
                lqi_fwd: 110,
                lqi_bwd: 110,
                rssi_fwd: 30,
                rssi_bwd: -50,
                queue_fwd: 8,
                queue_bwd: 8,
            }),
        };
        assert!(hop.encode().len() <= lv_net::packet::PAYLOAD_AREA);
    }
}
