//! The RADIUS-style online link-quality detector.
//!
//! One EWMA baseline per *directed* link, fed by the kernel's passive
//! [`LinkObs`] tap. Three alarm classes:
//!
//! * **rssi-drift** — the sample RSSI sits `rssi_drop_db` below the
//!   baseline for `confirm` consecutive samples (attenuation ramps,
//!   antenna damage, obstructions);
//! * **lqi-drift** — likewise for LQI (SNR degradation: interference
//!   and noise bursts move LQI long before RSSI);
//! * **silence** — a link with an established baseline has not been
//!   heard from for `silence_after` (node death, hard blocks).
//!
//! The baseline *freezes* while a link is drifting (any deviation past
//! half the alarm threshold): a slow ramp must not drag the EWMA down
//! with it and suppress its own alarm. The time the half-threshold was
//! first crossed is kept as the drift onset, so detection latency can
//! be reported honestly rather than from the alarm sample.

use lv_kernel::LinkObs;
use lv_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Detector tuning. Defaults are sized for the repo's radio model:
/// per-packet RSSI fading is σ ≈ 1 dB and LQI jitter σ ≈ 1.2 units, so
/// the default thresholds sit at ~6σ with two-sample confirmation.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// EWMA smoothing factor (weight of the newest sample).
    pub alpha: f64,
    /// Samples needed before a baseline is considered established.
    pub min_samples: u32,
    /// RSSI deviation below baseline (dB) that raises an alarm.
    pub rssi_drop_db: f64,
    /// LQI deviation below baseline (units) that raises an alarm.
    pub lqi_drop: f64,
    /// Consecutive over-threshold samples required to alarm.
    pub confirm: u32,
    /// Quiet time after which an established link is declared silent.
    pub silence_after: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            alpha: 0.15,
            min_samples: 8,
            rssi_drop_db: 7.5,
            lqi_drop: 18.0,
            confirm: 2,
            // Beacons default to one per 2 s; six missed periods is
            // decisive even with a lossy link.
            silence_after: SimDuration::from_secs(12),
        }
    }
}

/// What tripped the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// RSSI fell below the baseline.
    Rssi,
    /// LQI fell below the baseline.
    Lqi,
    /// The link went quiet.
    Silence,
}

impl DriftKind {
    /// Stable string label used in serialized reports.
    pub fn label(self) -> &'static str {
        match self {
            DriftKind::Rssi => "rssi-drift",
            DriftKind::Lqi => "lqi-drift",
            DriftKind::Silence => "silence",
        }
    }
}

/// One alarm raised by the detector — input to the probe ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Suspicion {
    /// Transmitting side of the suspect directed link.
    pub tx: u16,
    /// Receiving side (where the drift was measured).
    pub rx: u16,
    /// Virtual time of the alarm.
    pub at: SimTime,
    /// Alarm class.
    pub kind: DriftKind,
    /// The frozen baseline value the deviation was measured against.
    pub baseline: f64,
    /// The observed value that tripped the alarm (0 for silence).
    pub observed: f64,
    /// When the drift first crossed half the alarm threshold (for
    /// silence: the last time the link was heard).
    pub first_drift_at: SimTime,
}

/// Per-directed-link EWMA state.
#[derive(Debug, Clone)]
struct LinkBaseline {
    ewma_rssi: f64,
    ewma_lqi: f64,
    samples: u32,
    last_heard: SimTime,
    first_drift_at: Option<SimTime>,
    over_streak: u32,
    silenced: bool,
}

/// The online anomaly detector over every directed link.
#[derive(Debug)]
pub struct LinkDetector {
    cfg: DetectorConfig,
    links: BTreeMap<(u16, u16), LinkBaseline>,
}

impl LinkDetector {
    /// An empty detector with the given tuning.
    pub fn new(cfg: DetectorConfig) -> LinkDetector {
        LinkDetector {
            cfg,
            links: BTreeMap::new(),
        }
    }

    /// Directed links with a tracked baseline.
    pub fn links_tracked(&self) -> usize {
        self.links.len()
    }

    /// The current (EWMA RSSI, EWMA LQI) baseline of a directed link,
    /// if established.
    pub fn baseline(&self, tx: u16, rx: u16) -> Option<(f64, f64)> {
        let e = self.links.get(&(tx, rx))?;
        (e.samples >= self.cfg.min_samples).then_some((e.ewma_rssi, e.ewma_lqi))
    }

    /// Feed one passive observation; returns an alarm if this sample
    /// confirms a drift past threshold.
    pub fn observe(&mut self, o: &LinkObs) -> Option<Suspicion> {
        let cfg = self.cfg.clone();
        let e = self.links.entry((o.tx, o.rx)).or_insert(LinkBaseline {
            ewma_rssi: o.rssi as f64,
            ewma_lqi: o.lqi as f64,
            samples: 0,
            last_heard: o.at,
            first_drift_at: None,
            over_streak: 0,
            silenced: false,
        });
        e.last_heard = o.at;
        e.silenced = false;
        e.samples = e.samples.saturating_add(1);
        if e.samples < cfg.min_samples {
            // Warm-up: absorb unconditionally.
            e.ewma_rssi += cfg.alpha * (o.rssi as f64 - e.ewma_rssi);
            e.ewma_lqi += cfg.alpha * (o.lqi as f64 - e.ewma_lqi);
            return None;
        }
        let dev_rssi = e.ewma_rssi - o.rssi as f64;
        let dev_lqi = e.ewma_lqi - o.lqi as f64;
        let drifting = dev_rssi >= cfg.rssi_drop_db * 0.5 || dev_lqi >= cfg.lqi_drop * 0.5;
        if drifting {
            // Freeze the baseline so a gradual ramp cannot chase the
            // EWMA down and mask itself.
            if e.first_drift_at.is_none() {
                e.first_drift_at = Some(o.at);
            }
        } else {
            e.first_drift_at = None;
            e.over_streak = 0;
            e.ewma_rssi += cfg.alpha * (o.rssi as f64 - e.ewma_rssi);
            e.ewma_lqi += cfg.alpha * (o.lqi as f64 - e.ewma_lqi);
        }
        let over_rssi = dev_rssi >= cfg.rssi_drop_db;
        let over_lqi = dev_lqi >= cfg.lqi_drop;
        if over_rssi || over_lqi {
            e.over_streak += 1;
            if e.over_streak >= cfg.confirm {
                e.over_streak = 0;
                let (kind, baseline, observed) = if over_rssi {
                    (DriftKind::Rssi, e.ewma_rssi, o.rssi as f64)
                } else {
                    (DriftKind::Lqi, e.ewma_lqi, o.lqi as f64)
                };
                return Some(Suspicion {
                    tx: o.tx,
                    rx: o.rx,
                    at: o.at,
                    kind,
                    baseline,
                    observed,
                    first_drift_at: e.first_drift_at.unwrap_or(o.at),
                });
            }
        } else if drifting {
            // Between half and full threshold: drifting but not yet an
            // alarm candidate.
            e.over_streak = 0;
        }
        None
    }

    /// Raise a silence alarm for every established link that has been
    /// quiet longer than `silence_after`. Each link alarms once per
    /// quiet spell (hearing it again re-arms the alarm).
    pub fn sweep_silent(&mut self, now: SimTime) -> Vec<Suspicion> {
        let cfg = &self.cfg;
        let mut out = Vec::new();
        for (&(tx, rx), e) in self.links.iter_mut() {
            if e.samples < cfg.min_samples || e.silenced {
                continue;
            }
            if now.saturating_since(e.last_heard) <= cfg.silence_after {
                continue;
            }
            e.silenced = true;
            out.push(Suspicion {
                tx,
                rx,
                at: now,
                kind: DriftKind::Silence,
                baseline: e.ewma_rssi,
                observed: 0.0,
                first_drift_at: e.last_heard,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tx: u16, rx: u16, at_ms: u64, rssi: i8, lqi: u8) -> LinkObs {
        LinkObs {
            at: SimTime::from_millis(at_ms),
            tx,
            rx,
            lqi,
            rssi,
            beacon: true,
        }
    }

    fn warmed(det: &mut LinkDetector, rssi: i8, lqi: u8) -> u64 {
        let mut t = 0;
        for _ in 0..12 {
            assert!(det.observe(&obs(1, 2, t, rssi, lqi)).is_none());
            t += 2000;
        }
        t
    }

    #[test]
    fn stable_link_never_alarms() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        let mut t = 0;
        // ±1 dB / ±2 LQI jitter around a stable point.
        for i in 0..200u64 {
            let rssi = -60 + (i % 3) as i8 - 1;
            let lqi = 105 + (i % 5) as u8;
            assert!(det.observe(&obs(1, 2, t, rssi, lqi)).is_none(), "i={i}");
            t += 2000;
        }
        assert_eq!(det.links_tracked(), 1);
        let (rssi, _) = det.baseline(1, 2).unwrap();
        assert!((rssi - -60.0).abs() < 2.0, "baseline {rssi}");
    }

    #[test]
    fn rssi_step_alarms_after_confirmation() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        let mut t = warmed(&mut det, -60, 106);
        // A 10 dB drop: first over-threshold sample arms, second fires.
        assert!(det.observe(&obs(1, 2, t, -70, 106)).is_none());
        t += 2000;
        let s = det
            .observe(&obs(1, 2, t, -70, 106))
            .expect("second confirming sample alarms");
        assert_eq!(s.kind, DriftKind::Rssi);
        assert_eq!((s.tx, s.rx), (1, 2));
        assert!(s.baseline > -62.0 && s.baseline < -58.0);
        // Drift onset was the first degraded sample, not the alarm.
        assert_eq!(s.first_drift_at, SimTime::from_millis(t - 2000));
    }

    #[test]
    fn gradual_ramp_cannot_outrun_a_frozen_baseline() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        let mut t = warmed(&mut det, -60, 106);
        // 2 dB per sample: slow enough that an unfrozen EWMA with
        // alpha 0.15 would track it down without ever alarming.
        let mut rssi = -60f64;
        let mut alarmed = false;
        for _ in 0..30 {
            rssi -= 2.0;
            if det.observe(&obs(1, 2, t, rssi as i8, 106)).is_some() {
                alarmed = true;
                break;
            }
            t += 2000;
        }
        assert!(alarmed, "ramp escaped detection");
    }

    #[test]
    fn lqi_collapse_alarms_without_rssi_movement() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        let mut t = warmed(&mut det, -60, 108);
        // Noise burst: RSSI unchanged, LQI falls to the floor.
        assert!(det.observe(&obs(1, 2, t, -60, 55)).is_none());
        t += 2000;
        let s = det.observe(&obs(1, 2, t, -60, 55)).expect("lqi alarm");
        assert_eq!(s.kind, DriftKind::Lqi);
    }

    #[test]
    fn silence_fires_once_per_quiet_spell() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        let end = warmed(&mut det, -60, 106);
        // Not silent yet at +10 s…
        assert!(det
            .sweep_silent(SimTime::from_millis(end + 10_000))
            .is_empty());
        // …silent at +13 s, exactly once.
        let alarms = det.sweep_silent(SimTime::from_millis(end + 13_000));
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].kind, DriftKind::Silence);
        assert_eq!(
            alarms[0].first_drift_at,
            SimTime::from_millis(end - 2000),
            "onset = last frame heard"
        );
        assert!(det
            .sweep_silent(SimTime::from_millis(end + 20_000))
            .is_empty());
        // Hearing the link again re-arms the silence alarm.
        assert!(det.observe(&obs(1, 2, end + 30_000, -60, 106)).is_none());
        assert_eq!(
            det.sweep_silent(SimTime::from_millis(end + 50_000)).len(),
            1
        );
    }

    #[test]
    fn warmup_links_do_not_alarm_on_silence() {
        let mut det = LinkDetector::new(DetectorConfig::default());
        det.observe(&obs(3, 4, 0, -70, 90));
        assert!(det.sweep_silent(SimTime::from_millis(60_000)).is_empty());
    }
}
