//! Diagnosis episode records — the JSON-exportable evidence trail.
//!
//! Every suspicion the online detector confirms (or dismisses) becomes
//! one [`DiagnosisReport`]: which link drifted, what the baseline said,
//! the timeline of probes the engine ran, how long detection took, and
//! where the escalation ladder localized the fault. Reports ride the
//! same serialization path as the flight recorder — they are embedded
//! in [`crate::ObservabilityReport`] and served live over the session
//! protocol's `report diagnose` verb.

use lv_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One timestamped entry in an episode's evidence timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisEvidence {
    /// Virtual time of the observation or probe result.
    pub at: SimTime,
    /// Human-readable description (`"rssi -71.0 vs baseline -61.2"`,
    /// `"ping 4: 0/2 replies"`, …).
    pub what: String,
}

/// A suggested remediation the engine emits when localization succeeds:
/// have `node` blacklist `neighbor` so routing stops using the bad link.
///
/// The engine only *suggests* — applying the blacklist is the
/// operator's (or a policy layer's) call, exactly like the paper's
/// end-user workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlacklistSuggestion {
    /// The node that should stop using the link.
    pub node: u16,
    /// The neighbor to blacklist.
    pub neighbor: u16,
}

/// One closed diagnosis episode: suspicion, confirmation probes, and
/// verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Monotone episode number within one engine lifetime (1-based).
    pub episode: u32,
    /// Transmitting side of the suspect directed link.
    pub suspect_tx: u16,
    /// Receiving side of the suspect directed link (where the drift was
    /// measured).
    pub suspect_rx: u16,
    /// What tripped the detector: `"rssi-drift"`, `"lqi-drift"` or
    /// `"silence"`.
    pub kind: String,
    /// Virtual time the suspicion crossed the alarm threshold.
    pub opened_at: SimTime,
    /// Virtual time the episode's probe ladder finished.
    pub closed_at: SimTime,
    /// The EWMA baseline value the drift was measured against (dBm for
    /// RSSI, LQI units for LQI, dBm for silence).
    pub baseline: f64,
    /// The observed value that tripped the alarm (0 for silence).
    pub observed: f64,
    /// Milliseconds from the first half-threshold drift sample (or last
    /// frame heard, for silence) to the alarm — the time-to-detect
    /// metric scored by `figures --diagnosis`.
    pub detect_latency_ms: f64,
    /// Ping probes the ladder issued.
    pub pings: u32,
    /// Traceroute probes the ladder issued.
    pub traceroutes: u32,
    /// Localization verdict: `"localized"` (probes implicate the
    /// suspect link), `"recovered"` (probes found the path healthy) or
    /// `"unconfirmed"` (probes failed somewhere else / inconclusive).
    pub verdict: String,
    /// The link the probe ladder localized the failure to, if any.
    pub localized_link: Option<(u16, u16)>,
    /// Suggested remediation when localization succeeds.
    pub blacklist: Option<BlacklistSuggestion>,
    /// The evidence timeline, oldest first.
    pub evidence: Vec<DiagnosisEvidence>,
}

/// The engine's cumulative output: every closed episode plus detector
/// health counters, serializable on its own for the `report diagnose`
/// session verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DiagnosisLog {
    /// Link observations consumed from the kernel tap.
    pub observations: u64,
    /// Raw suspicions raised by the detector (pre-cooldown).
    pub suspicions: u64,
    /// Directed links with a tracked baseline.
    pub links_tracked: u64,
    /// Closed episodes, in open order.
    pub episodes: Vec<DiagnosisReport>,
}

impl DiagnosisLog {
    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        // Serialization of plain data types cannot fail; degrade to an
        // empty object rather than aborting a live deployment.
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Parse a log back from JSON (`None` on malformed input).
    pub fn from_json(s: &str) -> Option<DiagnosisLog> {
        serde_json::from_str(s).ok()
    }
}
